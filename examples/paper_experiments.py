#!/usr/bin/env python3
"""Reproduce the paper's §5 experiment suite, fast, in one script.

A console-friendly tour of the evaluation: single-site base case, the
chain/tree extremes, the Figure-4 locality sweep, and the selectivity
trade-off — each printed as a paper-vs-measured table.  (The pytest
benchmarks in benchmarks/ are the rigorous version; this script trades
query-script length for interactivity.)

Run:  python examples/paper_experiments.py  [queries-per-config, default 5]
"""

import sys

from repro.cluster import SimCluster
from repro.metrics.collect import Series
from repro.metrics.report import render_table
from repro.workload import (
    COMMON_TYPE,
    WorkloadSpec,
    build_graph,
    generate_into_cluster,
    pointer_key_for,
    query_script,
)

SPEC = WorkloadSpec()  # the paper's 270-object database


def measure(cluster, workload, pointer_key, search_type, n):
    series = Series(pointer_key)
    for query in query_script(pointer_key, search_type, count=n, spec=SPEC):
        series.add(cluster.run_query(query, [workload.root]).response_time)
    return series.mean


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    graph = build_graph(n=SPEC.n_objects)
    clusters = {}
    for machines in (1, 3, 9):
        cluster = SimCluster(machines)
        workload = generate_into_cluster(cluster, SPEC, graph)
        clusters[machines] = (cluster, workload)

    print(f"HyperFile §5 experiments — 270 objects, {n} queries per configuration\n")

    # E2/E3/E4: single site vs distributed extremes.
    rows = []
    paper = {("Tree", 1): 2.7, ("Tree", 3): 1.5, ("Tree", 9): 1.0,
             ("Chain", 1): 2.7, ("Chain", 3): 15.0, ("Chain", 9): 15.0}
    for pointer in ("Tree", "Chain"):
        for machines in (1, 3, 9):
            cluster, workload = clusters[machines]
            rows.append({
                "pointer": pointer,
                "machines": machines,
                "paper_s": paper[(pointer, machines)],
                "measured_s": measure(cluster, workload, pointer, "Rand10p", n),
            })
    print(render_table(rows, title="E2-E4: closure over chain/tree pointers"))
    print()

    # Figure 4: locality sweep.
    rows = []
    for p in SPEC.locality_classes:
        row = {"p_local": p}
        for machines in (1, 3, 9):
            cluster, workload = clusters[machines]
            row[f"{machines}m_s"] = measure(cluster, workload, pointer_key_for(p), "Rand10p", n)
        rows.append(row)
    print(render_table(rows, title="Figure 4: response time vs pointer locality"))
    print("(distribution wins to the right of the ~80% crossover)")
    print()

    # E5: selectivity.
    rows = []
    for search, label in (("Rand10p", "~10%"), (COMMON_TYPE, "100%")):
        for machines in (1, 3):
            cluster, workload = clusters[machines]
            rows.append({
                "selectivity": label,
                "machines": machines,
                "measured_s": measure(cluster, workload, pointer_key_for(0.95), search, n),
            })
    print(render_table(rows, title="E5: selectivity (95%-local pointers)"))
    print("(selective queries favour distribution; select-everything favours one site)")


if __name__ == "__main__":
    main()
