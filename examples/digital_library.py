#!/usr/bin/env python3
"""A distributed digital library: citations, archives, and failures.

Demonstrates the distributed-systems story of the paper on a library of
papers spread over three institutions:

* **citation closure** — "find every paper referenced directly or
  indirectly by this one that also carries a keyword", the query the
  paper's reachability-index facility targets; we answer it both with
  the distributed engine and with the index and check they agree;
* **archival migration** — old papers move to an archive site; queries
  keep working through birth-site naming and forwarding (paper §4);
* **partial results** — an institution goes down; queries posed at the
  others still answer with what is reachable (paper §1's autonomy goal);
* **publication-year ranges** — the paper's "published between May 1901
  and February 1902" style predicate, as a numeric range pattern.

Run:  python examples/digital_library.py
"""

import random

from repro.cluster import SimCluster
from repro.client.session import Session
from repro.core import keyword_tuple, number_tuple, pointer_tuple, string_tuple
from repro.storage import build_index, build_reachability, answer_closure_query

INSTITUTIONS = ["princeton", "stanford", "archive"]
TOPICS = ["databases", "hypertext", "distribution", "storage"]


def build_library(cluster: SimCluster, n_papers: int = 60, seed: int = 11):
    """Random citation DAG: paper i cites up to three older papers."""
    rng = random.Random(seed)
    oids = []
    for i in range(n_papers):
        site = INSTITUTIONS[i % 2]  # live papers start at the two universities
        store = cluster.store(site)
        tuples = [
            string_tuple("Title", f"Paper #{i}"),
            number_tuple("Year", 1960 + i % 30),
            keyword_tuple(rng.choice(TOPICS)),
        ]
        obj = store.create(tuples)
        oids.append(obj.oid)
        cites = rng.sample(range(i), k=min(i, rng.randint(2, 5))) if i else []
        refs = [pointer_tuple("Cites", oids[j]) for j in cites]
        if not refs:
            refs = [pointer_tuple("Cites", obj.oid)]  # root papers self-cite (leaf rule)
        store.replace(store.get(obj.oid).with_tuples(refs))
    return oids


def main() -> None:
    cluster = SimCluster(INSTITUTIONS)
    oids = build_library(cluster)
    session = Session(cluster, home_site="princeton")
    # Read a paper held at our own institution so the demo's failure
    # scenario (stanford down) still leaves local work to do.
    newest = oids[-2]
    session.define_set("Reading", [newest])

    # -- citation closure + keyword filter ---------------------------------
    print("== papers cited (transitively) by the paper we are reading, on hypertext ==")
    found = session.query(
        'Reading [ (Pointer, "Cites", ?X) | ^^X ]* '
        '(Keyword, "hypertext", ?) (String, "Title", ->title) -> Hits'
    )
    for title in session.retrieve("title"):
        print("  ", title)
    print(f"  -> {len(found)} papers, {session.last_response_time*1000:.0f} ms simulated")

    # -- the same query through the reachability index ------------------------
    program = cluster.compile(
        'Reading [ (Pointer, "Cites", ?X) | ^^X ]* (Keyword, "hypertext", ?) -> Hits'
    )
    stores = [cluster.store(s) for s in cluster.sites]
    reach = build_reachability(stores, "Cites")
    from repro.storage.indexes import TupleIndex

    tuple_index = TupleIndex()
    for store in stores:
        for obj in store.objects():
            tuple_index.add_object(obj)
    indexed = answer_closure_query(program, [newest], reach, tuple_index)
    assert indexed is not None and indexed.oid_keys() == {o.key() for o in found}
    print(f"  reachability index agrees ({len(indexed.oids)} papers, no traversal)")

    # -- archival migration ------------------------------------------------------
    print("== archiving the 20 oldest papers ==")
    for oid in oids[:20]:
        cluster.migrate(oid, "archive")
    found_after = session.query(
        'Reading [ (Pointer, "Cites", ?X) | ^^X ]* '
        '(Keyword, "hypertext", ?) -> HitsAfter'
    )
    assert {o.key() for o in found_after} == {o.key() for o in found}
    fwd = cluster.total_stats().forwarded_requests
    print(f"  same answers after migration ({fwd} requests followed forwarding pointers)")

    # -- year-range selection ---------------------------------------------------
    print("== cited papers published 1970..1979 ==")
    seventies = session.query(
        'Reading [ (Pointer, "Cites", ?X) | ^^X ]* (Number, "Year", 1970..1979) -> Seventies'
    )
    print(f"  {len(seventies)} papers from the 1970s in the citation closure")

    # -- partial results when a site is down ----------------------------------
    print("== the archive goes down ==")
    cluster.set_down("archive")
    partial = session.query(
        'Reading [ (Pointer, "Cites", ?X) | ^^X ]* (Keyword, "hypertext", ?) -> Partial'
    )
    dropped = cluster.total_stats().failed_sends
    print(
        f"  partial answer: {len(partial)} of {len(found)} papers "
        f"({dropped} dereferences abandoned; query still terminated cleanly)"
    )
    assert len(partial) <= len(found)


if __name__ == "__main__":
    main()
