#!/usr/bin/env python3
"""The "lost in hyperspace" demo (paper §6's driving application).

The paper closes with a hypertext front-end: conventional browsing plus
HyperFile queries, addressing "the inability of users to retrieve a
document because they cannot manually construct the right path to it."

This example builds a web of interlinked notes, then contrasts:

* a **browsing user**, who follows one link at a time (each hop is a
  round trip to the server — the hypertext model the paper extends), and
  may need dozens of interactions to stumble on the target;
* a **querying user**, who sends one filtering query and lets the
  server(s) traverse the graph.

Both are timed with the same simulated cost model, so the printed
comparison is the paper's argument in numbers.

Run:  python examples/lost_in_hyperspace.py
"""

import random
from collections import deque

from repro.cluster import SimCluster
from repro.client.session import Session
from repro.core import keyword_tuple, pointer_tuple, string_tuple
from repro.sim.costs import PAPER_COSTS


def build_web(cluster, n_notes=120, seed=5):
    """A small-world web of notes; exactly one carries the treasure."""
    rng = random.Random(seed)
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(n_notes):
        store = stores[i % len(stores)]
        obj = store.create(
            [
                string_tuple("Title", f"Note {i}"),
                keyword_tuple("treasure" if i == n_notes - 17 else "mundane"),
            ]
        )
        oids.append(obj.oid)
    for i, oid in enumerate(oids):
        neighbours = {(i + 1) % n_notes, (i * 7 + 3) % n_notes}
        neighbours |= {rng.randrange(n_notes) for _ in range(2)}
        neighbours.discard(i)
        store = stores[i % len(stores)]
        store.replace(
            store.get(oid).with_tuples(
                pointer_tuple("Link", oids[j]) for j in sorted(neighbours)
            )
        )
    return oids, n_notes - 17


def browse_for_treasure(cluster, oids, start_index):
    """Manual breadth-first browsing: one link followed per interaction.

    Each 'click' costs a round trip to whichever site holds the note
    (request + object processing + reply), mirroring a file-interface
    hypertext system.
    """
    per_hop = (
        PAPER_COSTS.msg_send_s
        + PAPER_COSTS.msg_latency_s
        + PAPER_COSTS.msg_recv_s
        + PAPER_COSTS.object_process_s
        + PAPER_COSTS.msg_latency_s  # the note travelling back
    )
    fetch = _union_fetch(cluster)
    seen = set()
    queue = deque([oids[start_index]])
    clicks = 0
    while queue:
        oid = queue.popleft()
        if oid.key() in seen:
            continue
        seen.add(oid.key())
        clicks += 1
        note = fetch(oid)
        if note.first("Keyword", "treasure") is not None:
            return clicks, clicks * per_hop
        queue.extend(note.pointers(key="Link"))
    raise RuntimeError("treasure unreachable")


def _union_fetch(cluster):
    stores = [cluster.store(s) for s in cluster.sites]

    def fetch(oid):
        for store in stores:
            if store.contains(oid):
                return store.get(oid)
        raise KeyError(oid)

    return fetch


def main() -> None:
    cluster = SimCluster(3)
    oids, treasure_index = build_web(cluster)
    session = Session(cluster)
    session.define_set("Here", [oids[0]])

    print("You are in a maze of twisty little documents, all alike.")
    clicks, browse_time = browse_for_treasure(cluster, oids, 0)
    print(f"browsing user : {clicks:4d} interactions, {browse_time:6.2f} s simulated")

    found = session.query(
        'Here [ (Pointer, "Link", ?X) | ^^X ]* '
        '(Keyword, "treasure", ?) (String, "Title", ->where) -> Found'
    )
    assert [o.key() for o in found] == [oids[treasure_index].key()]
    print(
        f"querying user :    1 interaction , {session.last_response_time:6.2f} s simulated"
        f"  -> {session.retrieve('where')[0]}"
    )
    speedup = browse_time / session.last_response_time
    print(f"one filtering query beats manual navigation {speedup:.0f}x here.")


if __name__ == "__main__":
    main()
