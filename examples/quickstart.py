#!/usr/bin/env python3
"""Quickstart: a three-site HyperFile service in ~40 lines.

Creates a few documents spread over three sites, links them with
hypertext pointers, and runs the paper's flagship query shape — "follow
Reference pointers transitively and keep the documents carrying a
keyword" — with a single request.

Run:  python examples/quickstart.py
"""

from repro.client import HyperFile
from repro.core import keyword_tuple, pointer_tuple, string_tuple


def main() -> None:
    hf = HyperFile(sites=3)

    # Three documents on three different machines.
    survey = hf.create(
        "site2",
        string_tuple("Title", "A Survey of Distributed Query Processing"),
        keyword_tuple("Distributed"),
    )
    systems = hf.create(
        "site1",
        string_tuple("Title", "Notes on Document Servers"),
        keyword_tuple("Distributed"),
        pointer_tuple("Reference", survey),
    )
    intro = hf.create(
        "site0",
        string_tuple("Title", "HyperFile: A Data Server for Documents"),
        keyword_tuple("Distributed"),
        keyword_tuple("Hypertext"),
        pointer_tuple("Reference", systems),
    )
    # Give the reference chain's last document a self-link so closure
    # traversals can still check it (see DESIGN.md finding 2).
    hf.update(survey, pointer_tuple("Reference", survey))

    # Start from the paper we are reading...
    hf.define_set("S", [intro])

    # ...and ask the server (not the user!) to chase the references.
    results = hf.query(
        'S [ (Pointer, "Reference", ?X) | ^^X ]* '
        '(Keyword, "Distributed", ?) (String, "Title", ->title) -> T'
    )

    print(f"{len(results)} documents found in {hf.last_response_time * 1000:.0f} ms "
          "(simulated response time):")
    for title in hf.retrieve("title"):
        print(f"  - {title}")

    # The result set T is a first-class set: refine it with another query.
    hypertexty = hf.query('T (Keyword, "Hypertext", ?) -> U')
    print(f"of which {len(hypertexty)} also mention Hypertext.")


if __name__ == "__main__":
    main()
