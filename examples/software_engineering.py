#!/usr/bin/env python3
"""The paper's §2 motivating application: a software-engineering repository.

Objects are program modules with title/author/description, source code
(an opaque payload the server never interprets), ``Called Routine``
pointers and ``Library`` pointers — the exact sample object from the
paper.  We reproduce its example queries:

1. follow ``Called Routine`` pointers from a working set and keep the
   modules written by Joe Programmer (the paper's first worked query);
2. the transitive-closure variant (replace ``^1`` with ``*``);
3. the embedded-language retrieval loop: print, "neatly numbered", every
   title by one author (the paper's C snippet, in Python);
4. a matching-variable reuse query: modules maintained by one of their
   own authors.

Run:  python examples/software_engineering.py
"""

from repro.client import HyperFile
from repro.core import pointer_tuple, string_tuple, text_tuple


def build_repository(hf: HyperFile):
    """A small call graph spread over three sites.

    main -> {sortlib, report} ; sortlib -> qsort ; report -> qsort
    qsort uses libmath (a Library pointer, which 'Called Routine'
    traversals must NOT follow).
    """
    libmath = hf.create(
        "site2",
        string_tuple("Title", "Math Library"),
        string_tuple("Author", "Vendor Inc"),
    )
    qsort = hf.create(
        "site2",
        string_tuple("Title", "Quicksort Kernel"),
        string_tuple("Author", "Joe Programmer"),
        string_tuple("Maintained by", "Joe Programmer"),
        text_tuple("C Code", "void qsort_(int *a, int n) { /* ... */ }"),
        pointer_tuple("Library", libmath),
    )
    hf.update(qsort, pointer_tuple("Called Routine", qsort))  # leaf self-link
    sortlib = hf.create(
        "site1",
        string_tuple("Title", "Main Program for Sort routine"),
        string_tuple("Author", "Joe Programmer"),
        string_tuple("Maintained by", "Sam Maintainer"),
        text_tuple("Description", "Entry points for sorting."),
        pointer_tuple("Called Routine", qsort),
    )
    report = hf.create(
        "site1",
        string_tuple("Title", "Report Generator"),
        string_tuple("Author", "Ann Author"),
        pointer_tuple("Called Routine", qsort),
    )
    main = hf.create(
        "site0",
        string_tuple("Title", "Application Main"),
        string_tuple("Author", "Ann Author"),
        string_tuple("Maintained by", "Ann Author"),
        pointer_tuple("Called Routine", sortlib),
        pointer_tuple("Called Routine", report),
    )
    return {"main": main, "sortlib": sortlib, "report": report, "qsort": qsort, "libmath": libmath}


def main() -> None:
    hf = HyperFile(sites=3)
    modules = build_repository(hf)
    hf.define_set("S", [modules["main"]])

    # -- Query 1: one level of Called Routine, filtered by author --------
    print("== one call level, author = Joe Programmer ==")
    hf.query(
        'S (Pointer, "Called Routine", ?X) ^^X '
        '(String, "Author", "Joe Programmer") (String, "Title", ->t1) -> T'
    )
    for title in hf.retrieve("t1"):
        print("  found:", title)

    # -- Query 2: the transitive closure of the call graph ----------------
    print("== transitive closure, author = Joe Programmer ==")
    hf.query(
        'S [ (Pointer, "Called Routine", ?X) | ^^X ]* '
        '(String, "Author", "Joe Programmer") (String, "Title", ->t2) -> U'
    )
    for title in hf.retrieve("t2"):
        print("  found:", title)
    print("  (the Math Library is reachable only via a Library pointer,")
    print("   which this traversal correctly ignores)")

    # -- Query 3: the paper's embedded-retrieval loop ----------------------
    print("== all titles by Joe Programmer, neatly numbered ==")
    hf.define_set("All", list(modules.values()))
    hf.query('All (String, "Author", "Joe Programmer") (String, "Title", ->title) -> V')
    for n, title in enumerate(hf.retrieve("title"), start=1):
        print(f"  Title {n}: {title}")

    # -- Query 4: matching-variable reuse ------------------------------------
    print("== modules maintained by one of their own authors ==")
    results = hf.query('All (String, "Author", ?A) (String, "Maintained by", $A) '
                       '(String, "Title", ->self_maintained) -> W')
    for title in hf.retrieve("self_maintained"):
        print("  self-maintained:", title)
    assert len(results) == 2  # qsort and main

    print(f"last response time: {hf.last_response_time * 1000:.0f} ms (simulated)")


if __name__ == "__main__":
    main()
