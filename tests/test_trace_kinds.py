"""Audit of the tracing vocabulary (satellite: no unregistered kinds).

Two directions:

* statically, every ``kind`` string passed to a ``.emit(...)`` call
  anywhere in ``src/repro`` must be registered in ``tracing.KINDS`` (an
  unregistered kind would be silently filtered by a default tracer);
* dynamically, every registered kind must actually be produced by some
  runnable scenario — a vocabulary entry nothing can emit is dead.
"""

import ast
import pathlib

import pytest

import repro
from repro.cluster import SimCluster
from repro.faults import FaultPlan
from repro.membership import MembershipConfig
from repro.net.batching import BatchConfig
from repro.replication import ReplicationConfig
from repro.qos import QoSConfig
from repro.tracing import KINDS, FlightRecorderConfig, QueryTracer

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def emit_call_sites():
    """Every ``<obj>.emit("<kind>", ...)`` call site under src/repro.

    Returns {kind: [\"file:line\", ...]}; a second list collects calls
    whose kind argument is not a string literal (there must be none —
    dynamic kinds would dodge this audit).
    """
    kinds = {}
    dynamic = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
            ):
                continue
            where = f"{path.relative_to(SRC_ROOT)}:{node.lineno}"
            if (
                len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                kinds.setdefault(node.args[1].value, []).append(where)
            else:
                dynamic.append(where)
    return kinds, dynamic


class TestStaticAudit:
    def test_every_emitted_kind_is_registered(self):
        kinds, _ = emit_call_sites()
        assert kinds, "audit found no emit() call sites — scan is broken"
        unregistered = {k: v for k, v in kinds.items() if k not in KINDS}
        assert not unregistered, f"emit() with unregistered kinds: {unregistered}"

    def test_no_dynamic_kind_arguments(self):
        _, dynamic = emit_call_sites()
        assert not dynamic, f"emit() with non-literal kind (unauditable): {dynamic}"

    def test_every_registered_kind_has_an_emitter(self):
        kinds, _ = emit_call_sites()
        missing = [k for k in KINDS if k not in kinds]
        assert not missing, f"KINDS entries nothing emits: {missing}"


def build_chain(cluster, length=18):
    from repro.core import keyword_tuple, pointer_tuple

    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


def build_fanout(cluster, children=18):
    from repro.core import keyword_tuple, pointer_tuple

    stores = [cluster.store(s) for s in cluster.sites]
    kids = []
    for i in range(children):
        store = stores[i % len(stores)]
        kid = store.create([keyword_tuple("K")])
        store.replace(kid.with_tuple(pointer_tuple("Ref", kid.oid)))
        kids.append(kid.oid)
    root = stores[0].create(
        [keyword_tuple("K")] + [pointer_tuple("Ref", kid) for kid in kids]
    ).oid
    return root


def traced(cluster_kwargs, run):
    from repro.config import ClusterConfig

    cluster = SimCluster(3, config=ClusterConfig(**cluster_kwargs))
    tracer = QueryTracer()
    cluster.attach_tracer(tracer)
    run(cluster)
    kinds = {e.kind for e in tracer.events}
    if cluster.flight_recorder is not None:
        # The dump marker is emitted into the ring itself (the artifact
        # is the pre-dump state), so collect the recorder's kinds too.
        kinds |= {e.kind for e in cluster.flight_recorder.events}
    return kinds


@pytest.fixture(scope="module")
def exercised_kinds():
    """Union of kinds from three scenarios chosen to cover the vocabulary."""
    observed = set()
    # 1. Clean batched fan-out: the full happy-path lifecycle + batching.
    def fanout(cluster):
        root = build_fanout(cluster)
        cluster.run_query(CLOSURE, [root])
    observed |= traced({"batching": BatchConfig(max_batch=4)}, fanout)
    # 2. Chaos behind the reliable channel: retransmits and dups.
    def chaos(cluster):
        oids = build_chain(cluster, 24)
        cluster.run_query(CLOSURE, [oids[0]])
    observed |= traced(
        {
            "fault_plan": FaultPlan(
                seed=7, drop=0.15, duplicate=0.1, reorder=0.2, delay_jitter_s=0.005
            ),
            "reliable": True,
        },
        chaos,
    )
    # 3. Total packet loss bounded by a deadline: the timeout path.
    def deadline(cluster):
        oids = build_chain(cluster)
        cluster.run_query(CLOSURE, [oids[0]], deadline_s=0.5)
    observed |= traced({"fault_plan": FaultPlan(seed=1, drop=1.0)}, deadline)
    # 4. Overload shedding: a zero shed watermark drops every arriving
    # batch-class remote item (credit-exact partial result).
    def shed(cluster):
        oids = build_chain(cluster)
        cluster.run_query(CLOSURE, [oids[0]], priority="batch")
    observed |= traced({"qos": QoSConfig(shed_watermark=0)}, shed)
    # 5. The telemetry plane: streaming stats while a query is in flight,
    # and a flight-recorder dump when the deadline expires under loss.
    def telemetry(cluster):
        oids = build_chain(cluster)
        cluster.run_query(CLOSURE, [oids[0]], deadline_s=0.5)
    observed |= traced(
        {
            "fault_plan": FaultPlan(seed=1, drop=1.0),
            "stats_stream_s": 0.05,
            "flight_recorder": FlightRecorderConfig(capacity=256),
        },
        telemetry,
    )
    # 6. Dynamic membership: the gossip detector's heartbeats plus the
    # view-change and rebalance events a join and a leave produce.
    def membership(cluster):
        from repro.core import keyword_tuple

        for site in cluster.sites:
            cluster.store(site).create([keyword_tuple("K")])
        cluster.replicate_all()
        oids = build_chain(cluster)
        cluster.run_query(CLOSURE, [oids[0]])
        cluster.join_site("site3")
        cluster.leave_site("site1")
        cluster.run_query(CLOSURE, [oids[0]])
    observed |= traced(
        {
            "replication": ReplicationConfig(k=2),
            "membership": MembershipConfig(heartbeat_s=0.05),
        },
        membership,
    )
    return observed


class TestDynamicCoverage:
    def test_every_kind_exercised(self, exercised_kinds):
        missing = set(KINDS) - exercised_kinds
        assert not missing, f"kinds no scenario produced: {sorted(missing)}"

    def test_no_foreign_kinds_observed(self, exercised_kinds):
        assert exercised_kinds <= set(KINDS)
