"""Unit tests for the E filter-evaluation function (paper §3.1 pseudocode)."""

import pytest

from repro.core.objects import HFObject
from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple, string_tuple, tuple_of
from repro.engine.efunction import evaluate
from repro.engine.items import ActiveItem, WorkItem

OID = Oid("s1", 0)
B = Oid("s1", 1)
C = Oid("s2", 2)


def program_for(text):
    return compile_query(parse_query(text))


def active_at(next_index, start=None, iters=()):
    return ActiveItem(oid=OID, start=start if start is not None else next_index, next=next_index, iters=tuple(iters))


def no_emit(target, value):  # pragma: no cover - failure path
    raise AssertionError("unexpected emission")


class TestSelection:
    PROG = program_for('S (Keyword, "Distributed", ?) -> T')

    def test_pass_increments_next(self):
        obj = HFObject(OID, [keyword_tuple("Distributed")])
        active = active_at(1)
        spawned, result = evaluate(self.PROG, active, obj, no_emit)
        assert spawned == [] and result is active
        assert active.next == 2

    def test_fail_returns_null(self):
        obj = HFObject(OID, [keyword_tuple("Other")])
        spawned, result = evaluate(self.PROG, active_at(1), obj, no_emit)
        assert spawned == [] and result is None

    def test_bindings_accumulate_across_matching_tuples(self):
        prog = program_for('S (Pointer, "Ref", ?X) -> T')
        obj = HFObject(OID, [pointer_tuple("Ref", B), pointer_tuple("Ref", C)])
        active = active_at(1)
        evaluate(prog, active, obj, no_emit)
        assert active.bindings("X") == {B, C}

    def test_failed_tuple_leaves_no_bindings(self):
        prog = program_for('S (Pointer, "Ref", ?X) -> T')
        obj = HFObject(OID, [pointer_tuple("Other", B)])
        active = active_at(1)
        _, result = evaluate(prog, active, obj, no_emit)
        assert result is None and active.bindings("X") == set()

    def test_in_filter_binding_visibility(self):
        # The pseudocode modifies O.mvars tuple-by-tuple, so a later tuple
        # in the same filter can match a variable bound by an earlier one.
        prog = program_for("S (Person, ?N, $N) -> T")
        obj = HFObject(
            OID,
            [
                tuple_of("Person", "alice", "bob"),   # binds N={'alice'}... data 'bob' not in {} yet -> no match
                tuple_of("Person", "carol", "alice"),  # key binds 'carol'; data 'alice' ∈ bindings
            ],
        )
        active = active_at(1)
        _, result = evaluate(prog, active, obj, no_emit)
        # Second tuple matched because 'alice' was bound by... nothing yet:
        # binding only happens when the whole tuple matches, and the first
        # tuple fails on its data field.  So nothing matches.
        assert result is None

    def test_matching_variable_reuse_across_filters(self):
        prog = program_for('S (String, "Author", ?A) (String, "Maintainer", $A) -> T')
        obj = HFObject(
            OID,
            [string_tuple("Author", "joe"), string_tuple("Maintainer", "joe")],
        )
        active = active_at(1)
        _, result = evaluate(prog, active, obj, no_emit)
        assert result is active and active.next == 2
        _, result = evaluate(prog, active, obj, no_emit)
        assert result is active and active.next == 3


class TestDereference:
    def test_keep_source_returns_object_and_spawns(self):
        prog = program_for('S (Pointer, "Ref", ?X) ^^X -> T')
        obj = HFObject(OID, [pointer_tuple("Ref", B), pointer_tuple("Ref", C)])
        active = active_at(1)
        evaluate(prog, active, obj, no_emit)  # F1 binds X
        spawned, result = evaluate(prog, active, obj, no_emit)  # F2 deref
        assert result is active and active.next == 3
        assert {w.oid for w in spawned} == {B, C}
        # New objects start at the filter after the deref: O.next+1 = 3.
        assert all(w.start == 3 for w in spawned)

    def test_drop_source(self):
        prog = program_for('S (Pointer, "Ref", ?X) ^X -> T')
        obj = HFObject(OID, [pointer_tuple("Ref", B)])
        active = active_at(1)
        evaluate(prog, active, obj, no_emit)
        spawned, result = evaluate(prog, active, obj, no_emit)
        assert result is None and len(spawned) == 1

    def test_unbound_variable_spawns_nothing(self):
        prog = program_for('S (Keyword, "K", ?) ^^X -> T')
        obj = HFObject(OID, [keyword_tuple("K")])
        active = active_at(1)
        evaluate(prog, active, obj, no_emit)
        spawned, result = evaluate(prog, active, obj, no_emit)
        assert spawned == [] and result is active

    def test_non_pointer_bindings_are_skipped(self):
        # "if x is an object id then ..." — string bindings are ignored.
        prog = program_for('S (String, "Author", ?X) ^^X -> T')
        obj = HFObject(OID, [string_tuple("Author", "joe")])
        active = active_at(1)
        evaluate(prog, active, obj, no_emit)
        spawned, _ = evaluate(prog, active, obj, no_emit)
        assert spawned == []

    def test_deref_inside_loop_bumps_iteration(self):
        prog = program_for('S [ (Pointer, "Ref", ?X) ^^X ]^3 -> T')
        obj = HFObject(OID, [pointer_tuple("Ref", B)])
        active = active_at(1)  # inside loop whose marker is at 3
        evaluate(prog, active, obj, no_emit)
        spawned, _ = evaluate(prog, active, obj, no_emit)
        assert dict(spawned[0].iters) == {3: 2}

    def test_deterministic_spawn_order(self):
        prog = program_for('S (Pointer, "Ref", ?X) ^^X -> T')
        obj = HFObject(OID, [pointer_tuple("Ref", C), pointer_tuple("Ref", B)])
        active = active_at(1)
        evaluate(prog, active, obj, no_emit)
        spawned, _ = evaluate(prog, active, obj, no_emit)
        assert [w.oid for w in spawned] == [B, C]  # sorted by identity


class TestLoopMarker:
    PROG = program_for('S [ (Pointer, "Ref", ?X) ^^X ]^3 (Keyword, "D", ?) -> T')
    OBJ = HFObject(OID, [])

    def test_object_that_traversed_body_passes(self):
        active = active_at(3, start=1)
        _, result = evaluate(self.PROG, active, self.OBJ, no_emit)
        assert result is active and active.next == 4

    def test_new_object_loops_back(self):
        active = active_at(3, start=3, iters=((3, 2),))
        _, result = evaluate(self.PROG, active, self.OBJ, no_emit)
        assert result is active
        assert active.next == 1
        assert active.start == 1  # "so that O will pass next time"

    def test_chain_exhausted_object_exits(self):
        active = active_at(3, start=3, iters=((3, 3),))
        _, result = evaluate(self.PROG, active, self.OBJ, no_emit)
        assert active.next == 4

    def test_closure_never_exhausts(self):
        prog = program_for('S [ (Pointer, "Ref", ?X) ^^X ]* (Keyword, "D", ?) -> T')
        active = active_at(3, start=3, iters=((3, 1000),))
        evaluate(prog, active, self.OBJ, no_emit)
        assert active.next == 1  # '*' may be thought of as infinity


class TestRetrieve:
    PROG = program_for('S (String, "Title", ->title) -> T')

    def test_emits_every_matching_value(self):
        obj = HFObject(OID, [string_tuple("Title", "One"), string_tuple("Title", "Two")])
        got = []
        active = active_at(1)
        _, result = evaluate(self.PROG, active, obj, lambda t, v: got.append((t, v)))
        assert result is active
        assert sorted(got) == [("title", "One"), ("title", "Two")]

    def test_object_without_tuple_fails(self):
        obj = HFObject(OID, [keyword_tuple("X")])
        got = []
        _, result = evaluate(self.PROG, active_at(1), obj, lambda t, v: got.append(v))
        assert result is None and got == []
