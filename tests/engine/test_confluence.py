"""Regression tests for the order-dependence anomaly in the paper's
position-only mark table (found by property testing; see
repro/engine/marktable.py).

The minimal counterexample: seed 7 points at objects 0 and 2; 2 -> 4 -> 0.
Under ``[ (Pointer,Edge,?X) ^X ]^4 (Keyword,alpha,?)``, object 0 is
reachable both at chain length 2 (too short to exit the iterator — it
loops back and dies at the selection, having no edges) and at chain
length 4 (exits the iterator and passes the keyword check).  With the
paper's position-only marks, whichever admission is processed first wins:

* breadth-first (FIFO) processes the length-2 admission first and marks
  position 3, suppressing the length-4 admission — result: {}.
* depth-first (LIFO) reaches the length-4 admission first — result: {0}.

The default iteration-aware marks key admissions by (position, chain
state), so both are processed and every order yields {0}.
"""

import pytest

from repro.core.builder import QueryBuilder
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.engine.local import run_local
from repro.engine.marktable import MarkTable
from repro.storage.memstore import MemStore


def build_counterexample():
    """The falsifying graph: 7 -> {0, 2}, 2 -> 4, 4 -> 0."""
    store = MemStore("solo")
    oids = [store.create([keyword_tuple("alpha")]).oid for _ in range(8)]
    edges = {7: [0, 2], 2: [4], 4: [0]}
    for src, targets in edges.items():
        store.replace(
            store.get(oids[src]).with_tuples(
                pointer_tuple("Edge", oids[t]) for t in targets
            )
        )
    query = (
        QueryBuilder("S")
        .begin_loop()
        .select("Pointer", "Edge", "?X")
        .deref("X")
        .end_loop(count=4)
        .select("Keyword", "alpha", "?")
        .into("T")
    )
    return store, oids, compile_query(query)


class TestPaperModeAnomaly:
    def test_position_marks_are_order_dependent(self):
        store, oids, program = build_counterexample()
        results = {
            d: run_local(program, [oids[7]], store.get, discipline=d,
                         mark_granularity="position").oid_keys()
            for d in ("fifo", "lifo")
        }
        # The anomaly: the two orders disagree.
        assert results["fifo"] != results["lifo"]
        assert results["fifo"] == set()
        assert results["lifo"] == {oids[0].key()}

    def test_iteration_marks_are_confluent(self):
        store, oids, program = build_counterexample()
        results = {
            d: run_local(program, [oids[7]], store.get, discipline=d).oid_keys()
            for d in ("fifo", "lifo", "priority")
        }
        assert results["fifo"] == results["lifo"] == results["priority"] == {oids[0].key()}

    def test_granularities_agree_on_closure_queries(self):
        # Everything the paper evaluates uses '*' iterators, where the two
        # tables are indistinguishable.
        store, oids, _ = build_counterexample()
        query = (
            QueryBuilder("S")
            .begin_loop()
            .select("Pointer", "Edge", "?X")
            .deref_keep("X")
            .end_loop()
            .select("Keyword", "alpha", "?")
            .into("T")
        )
        program = compile_query(query)
        paper = run_local(program, [oids[7]], store.get, mark_granularity="position")
        ours = run_local(program, [oids[7]], store.get, mark_granularity="iteration")
        assert paper.oid_keys() == ours.oid_keys()
        assert paper.stats.objects_processed == ours.stats.objects_processed


class TestMarkTableGranularity:
    def test_rejects_unknown_granularity(self):
        with pytest.raises(ValueError):
            MarkTable(granularity="vibes")

    def test_iteration_marks_distinguish_chain_states(self):
        from repro.core.oid import Oid

        table = MarkTable(granularity="iteration")
        oid = Oid("s1", 0)
        table.mark(oid, 3, ((3, 2),))
        assert not table.should_process(oid, 3, ((3, 2),))
        assert table.should_process(oid, 3, ((3, 4),))

    def test_position_marks_conflate_chain_states(self):
        from repro.core.oid import Oid

        table = MarkTable(granularity="position")
        oid = Oid("s1", 0)
        table.mark(oid, 3, ((3, 2),))
        assert not table.should_process(oid, 3, ((3, 4),))

    def test_closure_items_carry_no_chain_state(self):
        # bump_iters drops closure-loop counts entirely, so iteration
        # granularity degenerates to position granularity there.
        from repro.engine.items import bump_iters

        assert bump_iters((), (3,), caps={3: None}) == ()
        assert bump_iters(((3, 1),), (3,), caps={3: None}) == ()

    def test_bounded_counts_saturate_at_k(self):
        from repro.engine.items import bump_iters, iter_count

        iters = ()
        for _ in range(10):
            iters = bump_iters(iters, (3,), caps={3: 4})
        assert iter_count(iters, 3) == 4
