"""Tests for the local processing algorithm (paper Figure 3)."""

import pytest

from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple, string_tuple
from repro.engine.items import WorkItem
from repro.engine.local import QueryExecution, run_local
from repro.errors import QueryLimitExceeded
from repro.storage.memstore import MemStore


def prog(text):
    return compile_query(parse_query(text))


class TestPaperWalkthrough:
    """The worked example of §3.1: chain A→B→C→D, depth-3 iterator."""

    def run_walkthrough(self, chain_store, depth3_program):
        ids = chain_store.chain
        return run_local(depth3_program, [ids["a"]], chain_store.get), ids

    def test_result_is_a_and_b(self, chain_store, depth3_program):
        result, ids = self.run_walkthrough(chain_store, depth3_program)
        assert result.oid_keys() == {ids["a"].key(), ids["b"].key()}

    def test_d_is_never_examined(self, chain_store, depth3_program):
        # "the query terminates before examining D (which is 4 levels deep)"
        result, ids = self.run_walkthrough(chain_store, depth3_program)
        assert result.stats.objects_processed == 3  # A, B, C only

    def test_c_is_examined_but_lacks_keyword(self, chain_store, depth3_program):
        result, ids = self.run_walkthrough(chain_store, depth3_program)
        assert ids["c"].key() not in result.oid_keys()


class TestClosureAndCycles:
    def test_closure_reaches_whole_chain(self, chain_store, closure_program):
        ids = chain_store.chain
        result = run_local(closure_program, [ids["a"]], chain_store.get)
        # D carries the keyword and a self-pointer, so it passes too.
        assert result.oid_keys() == {ids["a"].key(), ids["b"].key(), ids["d"].key()}

    def test_cycle_terminates(self):
        store = MemStore("s1")
        a = store.create([keyword_tuple("K")])
        b = store.create([pointer_tuple("Ref", a.oid), keyword_tuple("K")])
        store.replace(store.get(a.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        result = run_local(prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [a.oid], store.get)
        assert len(result.oids) == 2

    def test_self_loop_terminates(self):
        store = MemStore("s1")
        a = store.create([keyword_tuple("K")])
        store.replace(store.get(a.oid).with_tuple(pointer_tuple("Ref", a.oid)))
        result = run_local(prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [a.oid], store.get)
        assert len(result.oids) == 1

    def test_diamond_graph_deduplicates(self):
        # a -> b, a -> c, b -> d, c -> d: d reached twice, processed once.
        store = MemStore("s1")
        d = store.create([keyword_tuple("K"), ])
        store.replace(store.get(d.oid).with_tuple(pointer_tuple("Ref", d.oid)))
        b = store.create([pointer_tuple("Ref", d.oid), keyword_tuple("K")])
        c = store.create([pointer_tuple("Ref", d.oid), keyword_tuple("K")])
        a = store.create([pointer_tuple("Ref", b.oid), pointer_tuple("Ref", c.oid), keyword_tuple("K")])
        result = run_local(prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [a.oid], store.get)
        assert len(result.oids) == 4
        assert result.stats.objects_processed == 4
        # Two suppressed admissions: d's second reaching (via c) and the
        # self-spawn from d's own self-pointer.
        assert result.stats.objects_skipped_marked == 2


class TestMarkTableSubtlety:
    def test_failed_object_reprocessed_at_later_position(self):
        # O fails F1, but is reached by a dereference and must still be
        # processed from F3 (the paper's mark-table subtlety).
        store = MemStore("s1")
        o = store.create([keyword_tuple("Late")])  # fails F1 (no Early)
        p = store.create([keyword_tuple("Early"), pointer_tuple("Ref", o.oid)])
        program = prog('S (Keyword,"Early",?) (Pointer,"Ref",?X) ^^X (Keyword,"Late",?) -> T')
        result = run_local(program, [o.oid, p.oid], store.get)
        assert o.oid.key() in result.oid_keys()
        assert p.oid.key() not in result.oid_keys()  # p lacks "Late"


class TestInitialSets:
    def test_multiple_seeds(self, chain_store, closure_program):
        ids = chain_store.chain
        result = run_local(closure_program, [ids["a"], ids["c"]], chain_store.get)
        assert ids["d"].key() in result.oid_keys()

    def test_empty_initial_set(self, closure_program, store):
        result = run_local(closure_program, [], store.get)
        assert len(result.oids) == 0

    def test_duplicate_seeds_processed_once(self, chain_store, closure_program):
        ids = chain_store.chain
        result = run_local(closure_program, [ids["a"], ids["a"]], chain_store.get)
        # One suppression for the duplicate seed, one for d's self-spawn.
        assert result.stats.objects_skipped_marked == 2
        assert result.stats.objects_processed == 4


class TestDanglingPointers:
    def test_missing_object_counted_not_fatal(self):
        store = MemStore("s1")
        ghost = Oid("s1", 999)
        a = store.create([pointer_tuple("Ref", ghost), keyword_tuple("K")])
        result = run_local(prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [a.oid], store.get)
        assert len(result.oids) == 1
        assert result.stats.objects_missing == 1

    def test_repeated_dangling_reference_fetched_once(self):
        store = MemStore("s1")
        ghost = Oid("s1", 999)
        a = store.create([pointer_tuple("Ref", ghost), keyword_tuple("K")])
        b = store.create([pointer_tuple("Ref", ghost), pointer_tuple("Ref", a.oid), keyword_tuple("K")])
        result = run_local(prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [b.oid], store.get)
        assert result.stats.objects_missing == 1
        assert result.stats.objects_skipped_marked >= 1


class TestLimitsAndGuards:
    def test_max_objects_guard(self, chain_store, closure_program):
        ids = chain_store.chain
        with pytest.raises(QueryLimitExceeded):
            run_local(closure_program, [ids["a"]], chain_store.get, max_objects=2)

    def test_run_refuses_remote_items(self, chain_store, closure_program):
        ids = chain_store.chain
        execution = QueryExecution(
            closure_program,
            chain_store.get,
            site="s1",
            locate=lambda oid: "elsewhere",  # everything looks remote
        )
        execution.seed([ids["a"]])
        with pytest.raises(RuntimeError, match="remote"):
            execution.run()


class TestRetrievalIntegration:
    def test_titles_bound_in_result(self):
        store = MemStore("s1")
        t1 = store.create([string_tuple("Author", "Chris Clifton"), string_tuple("Title", "HyperFile")])
        t2 = store.create([string_tuple("Author", "Someone Else"), string_tuple("Title", "Other")])
        program = prog('S (String,"Author","Chris Clifton") (String,"Title",->title) -> T')
        result = run_local(program, [t1.oid, t2.oid], store.get)
        assert result.retrieved == {"title": ["HyperFile"]}
        assert result.oid_keys() == {t1.oid.key()}


class TestDisciplineIndependence:
    @pytest.mark.parametrize("discipline", ["fifo", "lifo", "priority"])
    def test_same_results_any_order(self, chain_store, closure_program, discipline):
        ids = chain_store.chain
        result = run_local(closure_program, [ids["a"]], chain_store.get, discipline=discipline)
        assert result.oid_keys() == {ids["a"].key(), ids["b"].key(), ids["d"].key()}
