"""Tests for the shared-memory multiprocessor engine (paper §6)."""

import pytest

from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.engine.local import run_local
from repro.engine.shared_memory import SharedMemoryEngine
from repro.workload import closure_query
from tests.conftest import oid_indices


def prog(text):
    return compile_query(parse_query(text))


@pytest.fixture
def workload_setup(single_site_workload):
    store, workload = single_site_workload
    program = compile_query(closure_query("Tree", "Rand10p", 5))
    reference = run_local(program, [workload.root], store.get)
    return store, workload, program, reference


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8, 16])
    def test_same_results_any_worker_count(self, workload_setup, workers):
        store, workload, program, reference = workload_setup
        report = SharedMemoryEngine(program, store.get, workers=workers).run([workload.root])
        assert report.result.oid_keys() == reference.oid_keys()

    def test_late_marking_same_results(self, workload_setup):
        # Paper: no strict locking needed; duplicates possible, results
        # identical ("due to the set-based nature of the result").
        store, workload, program, reference = workload_setup
        report = SharedMemoryEngine(
            program, store.get, workers=8, mark_timing="late"
        ).run([workload.root])
        assert report.result.oid_keys() == reference.oid_keys()

    def test_retrievals_collected(self, chain_store):
        program = prog('S (Keyword,"Distributed",?) (Pointer,"Reference",->ref) -> T')
        ids = chain_store.chain
        report = SharedMemoryEngine(program, chain_store.get, workers=2).run(
            [ids["a"], ids["b"], ids["c"], ids["d"]]
        )
        assert len(report.result.retrieved["ref"]) == 3  # a, b, d match


class TestParallelism:
    def test_speedup_grows_with_workers(self, workload_setup):
        store, workload, program, _ = workload_setup
        mk1 = SharedMemoryEngine(program, store.get, workers=1).run([workload.root]).makespan_s
        mk4 = SharedMemoryEngine(program, store.get, workers=4).run([workload.root]).makespan_s
        assert mk4 < mk1 * 0.5  # tree fan-out parallelises well

    def test_total_work_invariant_under_early_marking(self, workload_setup):
        store, workload, program, _ = workload_setup
        w1 = SharedMemoryEngine(program, store.get, workers=1).run([workload.root])
        w8 = SharedMemoryEngine(program, store.get, workers=8).run([workload.root])
        assert abs(w1.total_work_s - w8.total_work_s) < 1e-9

    def test_speedup_property(self, workload_setup):
        store, workload, program, _ = workload_setup
        report = SharedMemoryEngine(program, store.get, workers=4).run([workload.root])
        assert 1.0 <= report.speedup_vs_serial <= 4.0 + 1e-9

    def test_serial_chain_gets_no_speedup(self, workload_setup):
        store, workload, program, _ = workload_setup
        chain_prog = compile_query(closure_query("Chain", "Rand10p", 5))
        mk1 = SharedMemoryEngine(chain_prog, store.get, workers=1).run([workload.root]).makespan_s
        mk8 = SharedMemoryEngine(chain_prog, store.get, workers=8).run([workload.root]).makespan_s
        # A linked list admits no parallelism: one object unlocks the next.
        assert mk8 >= mk1 * 0.95


class TestValidation:
    def test_rejects_zero_workers(self, workload_setup):
        store, workload, program, _ = workload_setup
        with pytest.raises(ValueError):
            SharedMemoryEngine(program, store.get, workers=0)

    def test_rejects_unknown_mark_timing(self, workload_setup):
        store, workload, program, _ = workload_setup
        with pytest.raises(ValueError):
            SharedMemoryEngine(program, store.get, mark_timing="whenever")

    def test_per_worker_accounting_sums(self, workload_setup):
        store, workload, program, reference = workload_setup
        report = SharedMemoryEngine(program, store.get, workers=4).run([workload.root])
        assert sum(report.per_worker_objects) == reference.stats.objects_processed
