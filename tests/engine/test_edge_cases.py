"""Engine edge cases: operator interactions the basic tests don't reach."""

import pytest

from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple, string_tuple, tuple_of
from repro.engine.local import run_local
from repro.storage.memstore import MemStore


def prog(text):
    return compile_query(parse_query(text))


class TestRetrieveInteractions:
    def test_retrieve_inside_iterator_emits_per_visit(self):
        # Each object passing the body emits its title once; the closure
        # visits everything exactly once, so titles arrive exactly once.
        store = MemStore("s1")
        b = store.create([string_tuple("Title", "B")])
        store.replace(store.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        a = store.create([string_tuple("Title", "A"), pointer_tuple("Ref", b.oid)])
        result = run_local(
            prog('S [ (String,"Title",->t) (Pointer,"Ref",?X) ^^X ]* -> T'),
            [a.oid],
            store.get,
        )
        assert sorted(result.retrieved["t"]) == ["A", "B"]

    def test_two_targets_kept_separate(self):
        store = MemStore("s1")
        obj = store.create([string_tuple("Title", "T"), string_tuple("Author", "A")])
        result = run_local(
            prog('S (String,"Title",->title) (String,"Author",->author) -> T'),
            [obj.oid],
            store.get,
        )
        assert result.retrieved == {"title": ["T"], "author": ["A"]}

    def test_same_target_accumulates(self):
        store = MemStore("s1")
        obj = store.create([string_tuple("Title", "One"), string_tuple("Subtitle", "Two")])
        result = run_local(
            prog('S (String,"Title",->text) (String,"Subtitle",->text) -> T'),
            [obj.oid],
            store.get,
        )
        assert sorted(result.retrieved["text"]) == ["One", "Two"]

    def test_retrieve_key_can_bind_variable(self):
        store = MemStore("s1")
        lib = store.create([keyword_tuple("lib")])
        obj = store.create([tuple_of("Module", "core", lib.oid)])
        result = run_local(
            prog('S (Module, ?name, ->ptr) -> T'),
            [obj.oid],
            store.get,
        )
        assert result.retrieved["ptr"] == [lib.oid]


class TestPatternPlacement:
    def test_bind_on_type_field(self):
        store = MemStore("s1")
        obj = store.create([tuple_of("Object_Code", "vax", b"\x01")])
        result = run_local(prog("S (?T, vax, ?) -> Out"), [obj.oid], store.get)
        assert len(result.oids) == 1

    def test_wildcard_type_matches_any_tuple(self):
        store = MemStore("s1")
        a = store.create([keyword_tuple("anything")])
        empty = store.create([])
        result = run_local(prog("S (?, ?, ?) -> Out"), [a.oid, empty.oid], store.get)
        # The empty object has no tuple to match: even (?,?,?) fails it.
        assert result.oid_keys() == {a.oid.key()}

    def test_variable_use_on_type_field(self):
        store = MemStore("s1")
        obj = store.create(
            [string_tuple("Kind", "Keyword"), keyword_tuple("self-describing")]
        )
        result = run_local(
            prog('S (String, "Kind", ?K) ($K, "self-describing", ?) -> Out'),
            [obj.oid],
            store.get,
        )
        assert len(result.oids) == 1

    def test_deref_of_mixed_bindings_follows_only_pointers(self):
        store = MemStore("s1")
        target = store.create([keyword_tuple("K")])
        obj = store.create(
            [
                tuple_of("Mixed", "a", "just a string"),
                tuple_of("Mixed", "b", target.oid),
                tuple_of("Mixed", "c", 42),
            ]
        )
        result = run_local(
            prog('S (Mixed, ?, ?X) ^X (Keyword,"K",?) -> Out'), [obj.oid], store.get
        )
        assert result.oid_keys() == {target.oid.key()}


class TestResultSemantics:
    def test_result_order_is_first_pass_order(self):
        store = MemStore("s1")
        oids = [store.create([keyword_tuple("K")]).oid for _ in range(5)]
        result = run_local(prog('S (Keyword,"K",?) -> Out'), [oids[2], oids[0], oids[4]], store.get)
        assert result.oids.as_list() == [oids[2], oids[0], oids[4]]

    def test_object_passing_twice_counted_once(self):
        # Reached at two different start positions, passes both times.
        store = MemStore("s1")
        shared = store.create([keyword_tuple("Early"), keyword_tuple("Late")])
        seed = store.create([keyword_tuple("Early"), pointer_tuple("Ref", shared.oid)])
        program = prog('S (Keyword,"Early",?) (Pointer,"Ref",?X) ^^X (Keyword,"Late",?) -> T')
        # seed lacks Late... wait: seed passes F1, F2 binds, F3 spawns shared and
        # continues, F4 fails for seed; shared admitted at F1 (as initial) AND at F4.
        result = run_local(program, [shared.oid, seed.oid], store.get)
        assert shared.oid.key() in result.oid_keys()
        assert len([o for o in result.oids if o.key() == shared.oid.key()]) == 1

    def test_filterless_query_copies_the_set(self):
        # "S -> T" has zero filters: every seed passes vacuously.  The
        # session layer uses this as a set rename/copy.
        store = MemStore("s1")
        oids = [store.create([]).oid for _ in range(3)]
        result = run_local(prog("S -> T"), oids, store.get)
        assert result.oids.as_list() == oids


class TestDanglingAndHints:
    def test_pointer_with_stale_hint_still_resolves_locally(self):
        store = MemStore("s1")
        target = store.create([keyword_tuple("K")])
        stale = target.oid.with_hint("elsewhere")
        seed = store.create([pointer_tuple("Ref", stale)])
        result = run_local(prog('S (Pointer,"Ref",?X) ^X (Keyword,"K",?) -> T'), [seed.oid], store.get)
        assert result.oid_keys() == {target.oid.key()}

    def test_self_pointer_via_different_hint_suppressed(self):
        store = MemStore("s1")
        a = store.create([keyword_tuple("K")])
        store.replace(
            store.get(a.oid).with_tuple(pointer_tuple("Ref", a.oid.with_hint("other")))
        )
        result = run_local(
            prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [a.oid], store.get
        )
        assert len(result.oids) == 1
        assert result.stats.objects_processed == 1
