"""Tests for working-set disciplines (paper §3.1 footnote 4)."""

import pytest

from repro.core.oid import Oid
from repro.engine.items import WorkItem
from repro.engine.workset import (
    DISCIPLINES,
    FifoWorkSet,
    LifoWorkSet,
    PriorityWorkSet,
    make_workset,
)


def items(*starts_and_depths):
    out = []
    for i, (start, depth) in enumerate(starts_and_depths):
        out.append(WorkItem(Oid("s1", i), start, ((99, depth),)))
    return out


class TestFifo:
    def test_queue_order(self):
        ws = FifoWorkSet()
        a, b, c = items((1, 1), (1, 1), (1, 1))
        ws.extend([a, b, c])
        assert [ws.pop(), ws.pop(), ws.pop()] == [a, b, c]

    def test_breadth_first_shape(self):
        # FIFO processes generation k entirely before generation k+1.
        ws = FifoWorkSet()
        gen1 = items((1, 1), (1, 1))
        gen2 = items((1, 2), (1, 2))
        ws.extend(gen1)
        ws.extend(gen2)
        popped = [ws.pop() for _ in range(4)]
        assert popped[:2] == gen1


class TestLifo:
    def test_stack_order(self):
        ws = LifoWorkSet()
        a, b, c = items((1, 1), (1, 1), (1, 1))
        ws.extend([a, b, c])
        assert [ws.pop(), ws.pop(), ws.pop()] == [c, b, a]


class TestPriority:
    def test_default_prefers_shallow_chains(self):
        ws = PriorityWorkSet()
        deep, shallow = items((1, 5), (1, 2))
        ws.add(deep)
        ws.add(shallow)
        assert ws.pop() == shallow

    def test_ties_break_by_insertion_order(self):
        ws = PriorityWorkSet()
        a, b = items((1, 3), (1, 3))
        ws.add(a)
        ws.add(b)
        assert ws.pop() == a

    def test_custom_key(self):
        ws = PriorityWorkSet(key=lambda item: -item.start)
        lo, hi = WorkItem(Oid("s1", 0), 1), WorkItem(Oid("s1", 1), 9)
        ws.add(lo)
        ws.add(hi)
        assert ws.pop() == hi

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityWorkSet().pop()


class TestCommon:
    @pytest.mark.parametrize("name", sorted(DISCIPLINES))
    def test_len_and_bool(self, name):
        ws = make_workset(name)
        assert not ws and len(ws) == 0
        ws.add(WorkItem(Oid("s1", 0)))
        assert ws and len(ws) == 1
        ws.pop()
        assert not ws

    def test_unknown_discipline(self):
        with pytest.raises(ValueError, match="unknown work-set discipline"):
            make_workset("zigzag")
