"""Direct tests for result containers and execution statistics."""

import pytest

from repro.core.oid import Oid
from repro.engine.results import ExecutionStats, QueryResult, ResultSet

A = Oid("s1", 0)
B = Oid("s1", 1)
A_HINTED = Oid("s1", 0, presumed_site="s9")


class TestResultSet:
    def test_add_reports_novelty(self):
        rs = ResultSet()
        assert rs.add(A) is True
        assert rs.add(A) is False
        assert len(rs) == 1

    def test_hint_insensitive_dedup(self):
        rs = ResultSet()
        rs.add(A)
        assert rs.add(A_HINTED) is False
        assert A_HINTED in rs

    def test_insertion_order_preserved(self):
        rs = ResultSet()
        rs.extend([B, A])
        assert rs.as_list() == [B, A]
        assert [o for o in rs] == [B, A]

    def test_extend_counts_new_only(self):
        rs = ResultSet()
        rs.add(A)
        assert rs.extend([A, B, B]) == 1

    def test_key_set_projection(self):
        rs = ResultSet()
        rs.extend([A, B])
        assert rs.as_key_set() == {("s1", 0), ("s1", 1)}


class TestExecutionStats:
    def test_merge_accumulates_every_counter(self):
        a = ExecutionStats(objects_processed=3, remote_derefs=2, emissions=1)
        b = ExecutionStats(objects_processed=4, results_added=5, objects_missing=1)
        a.merge(b)
        assert a.objects_processed == 7
        assert a.remote_derefs == 2
        assert a.results_added == 5
        assert a.objects_missing == 1
        assert a.emissions == 1


class TestQueryResult:
    def test_record_emission_groups_by_target(self):
        result = QueryResult()
        result.record_emission("title", "A")
        result.record_emission("title", "B")
        result.record_emission("year", 1991)
        assert result.retrieved == {"title": ["A", "B"], "year": [1991]}
        assert result.stats.emissions == 3

    def test_oid_keys_shortcut(self):
        result = QueryResult()
        result.oids.add(A)
        assert result.oid_keys() == {("s1", 0)}

    def test_repr_is_informative(self):
        result = QueryResult()
        result.oids.add(A)
        result.record_emission("t", "v")
        text = repr(result)
        assert "1 objects" in text and "t" in text
