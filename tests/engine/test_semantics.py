"""Deeper semantic tests: unrolling equivalence, nested iterators,
operator interactions (paper §2–§3)."""

import pytest

from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.engine.local import run_local
from repro.storage.memstore import MemStore


def prog(text):
    return compile_query(parse_query(text))


def make_path(store, length, keyword="K", pointer="Ref"):
    """A simple path o0 -> o1 -> ... -> o(length-1), all carrying keyword.

    The last node gets a self-pointer so it can pass iterator bodies.
    """
    oids = [store.create([keyword_tuple(keyword)]).oid for _ in range(length)]
    for i in range(length - 1):
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple(pointer, oids[i + 1])))
    store.replace(store.get(oids[-1]).with_tuple(pointer_tuple(pointer, oids[-1])))
    return oids


class TestUnrollingEquivalence:
    """The paper describes ``[parts]^k`` as "repeat k times, as if the loop
    was unrolled" — but its own walkthrough and E-function pseudocode bound
    the pointer-chain *length* at k objects (the ^3 example explicitly
    never examines D, at depth 4).  The algorithm is normative: ``^k``
    over a chain behaves like the body unrolled k-1 times (and ``^1``
    coincides with ``^2``, since the body always executes at least once
    on the way to the marker)."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_bounded_iterator_equals_body_unrolled_k_minus_1(self, k):
        store = MemStore("s1")
        oids = make_path(store, 8)
        body = '(Pointer,"Ref",?X) ^^X'
        looped = prog(f'S [ {body} ]^{k} (Keyword,"K",?) -> T')
        unrolled = prog("S " + " ".join([body] * (k - 1)) + ' (Keyword,"K",?) -> T')
        r_loop = run_local(looped, [oids[0]], store.get)
        r_flat = run_local(unrolled, [oids[0]], store.get)
        assert r_loop.oid_keys() == r_flat.oid_keys()

    def test_k1_coincides_with_k2(self):
        store = MemStore("s1")
        oids = make_path(store, 8)
        body = '(Pointer,"Ref",?X) ^^X'
        r1 = run_local(prog(f'S [ {body} ]^1 (Keyword,"K",?) -> T'), [oids[0]], store.get)
        r2 = run_local(prog(f'S [ {body} ]^2 (Keyword,"K",?) -> T'), [oids[0]], store.get)
        assert r1.oid_keys() == r2.oid_keys()

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_chain_length_bounded_at_k(self, k):
        # The walkthrough's rule: objects at chain length <= k are
        # examined; anything deeper is never spawned.
        store = MemStore("s1")
        oids = make_path(store, 10)
        result = run_local(
            prog(f'S [ (Pointer,"Ref",?X) ^^X ]^{k} (Keyword,"K",?) -> T'),
            [oids[0]],
            store.get,
        )
        expected = {oids[i].key() for i in range(k)}
        assert result.oid_keys() == expected


class TestClosureVsBounded:
    def test_closure_covers_everything(self):
        store = MemStore("s1")
        oids = make_path(store, 12)
        result = run_local(
            prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [oids[0]], store.get
        )
        assert result.oid_keys() == {o.key() for o in oids}

    def test_large_k_equals_closure_on_acyclic_graph(self):
        store = MemStore("s1")
        oids = make_path(store, 6)
        closure = run_local(
            prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [oids[0]], store.get
        )
        bounded = run_local(
            prog('S [ (Pointer,"Ref",?X) ^^X ]^50 (Keyword,"K",?) -> T'), [oids[0]], store.get
        )
        assert closure.oid_keys() == bounded.oid_keys()


class TestDerefVariants:
    def test_drop_source_excludes_seeds(self):
        store = MemStore("s1")
        oids = make_path(store, 3)
        result = run_local(
            prog('S (Pointer,"Ref",?X) ^X (Keyword,"K",?) -> T'), [oids[0]], store.get
        )
        # Only o1 (the referenced object) can reach the keyword filter.
        assert result.oid_keys() == {oids[1].key()}

    def test_keep_source_includes_seeds(self):
        store = MemStore("s1")
        oids = make_path(store, 3)
        result = run_local(
            prog('S (Pointer,"Ref",?X) ^^X (Keyword,"K",?) -> T'), [oids[0]], store.get
        )
        assert result.oid_keys() == {oids[0].key(), oids[1].key()}


class TestLeafDropSubtlety:
    """Objects that fail a filter inside an iterator body are dropped —
    the strict consequence of the paper's E function (documented in
    repro.workload.graphs)."""

    def test_leaf_without_pointer_is_dropped(self):
        store = MemStore("s1")
        leaf = store.create([keyword_tuple("K")])  # no outgoing pointer
        root = store.create([pointer_tuple("Ref", leaf.oid), keyword_tuple("K")])
        result = run_local(
            prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [root.oid], store.get
        )
        assert result.oid_keys() == {root.oid.key()}

    def test_self_pointer_rescues_leaf(self):
        store = MemStore("s1")
        leaf = store.create([keyword_tuple("K")])
        store.replace(store.get(leaf.oid).with_tuple(pointer_tuple("Ref", leaf.oid)))
        root = store.create([pointer_tuple("Ref", leaf.oid), keyword_tuple("K")])
        result = run_local(
            prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [root.oid], store.get
        )
        assert result.oid_keys() == {root.oid.key(), leaf.oid.key()}

    def test_depth_k_object_checked_without_body_pass(self):
        # An object at exactly depth k exits the iterator immediately
        # (iter# >= k) and is checked by trailing filters even with no
        # outgoing pointers — the asymmetry in the paper's walkthrough.
        store = MemStore("s1")
        leaf = store.create([keyword_tuple("K")])  # depth 2, no pointers
        root = store.create([pointer_tuple("Ref", leaf.oid), keyword_tuple("K")])
        result = run_local(
            prog('S [ (Pointer,"Ref",?X) ^^X ]^2 (Keyword,"K",?) -> T'), [root.oid], store.get
        )
        assert leaf.oid.key() in result.oid_keys()


class TestNestedIterators:
    def test_two_level_traversal_terminates_and_covers_grid(self):
        # A 2x3 grid: m[i][j] has a Sub pointer to m[i][j+1] (last: self)
        # and a Part pointer to m[i+1][0] (last row: self).  The nested
        # closure-over-bounded query terminates and — because the outer
        # closure re-enters the inner loop, extending inner chains pass by
        # pass — examines the whole grid.
        store = MemStore("s1")
        grid = [[store.create([keyword_tuple("K")]).oid for _ in range(3)] for _ in range(2)]
        for i in range(2):
            for j in range(3):
                sub_target = grid[i][j + 1] if j + 1 < 3 else grid[i][j]
                part_target = grid[i + 1][0] if i + 1 < 2 else grid[i][j]
                store.replace(
                    store.get(grid[i][j])
                    .with_tuple(pointer_tuple("Sub", sub_target))
                    .with_tuple(pointer_tuple("Part", part_target))
                )
        program = prog(
            'S [ [ (Pointer,"Sub",?Y) ^^Y ]^2 (Pointer,"Part",?X) ^^X ]* (Keyword,"K",?) -> T'
        )
        result = run_local(program, [grid[0][0]], store.get)
        assert result.oid_keys() == {oid.key() for row in grid for oid in row}

    def test_inner_counter_resets_per_outer_pass(self):
        # Inner ^1 bound must be enforced per inner-loop chain, not
        # globally: each part's first sub is reached (depth 1) but its
        # second sub (depth 2) is not.
        store = MemStore("s1")
        deep = store.create([keyword_tuple("K")])
        mid = store.create([pointer_tuple("Sub", deep.oid), keyword_tuple("K")])
        part2 = store.create([pointer_tuple("Sub", mid.oid), keyword_tuple("K")])
        store.replace(store.get(part2.oid).with_tuple(pointer_tuple("Part", part2.oid)))
        part1 = store.create([pointer_tuple("Sub", mid.oid), pointer_tuple("Part", part2.oid), keyword_tuple("K")])
        program = prog(
            'S [ [ (Pointer,"Sub",?Y) ^^Y ]^1 (Pointer,"Part",?X) ^^X ]^2 (Keyword,"K",?) -> T'
        )
        result = run_local(program, [part1.oid], store.get)
        assert deep.oid.key() not in result.oid_keys()


class TestIdempotence:
    def test_reprocessing_same_position_changes_nothing(self, chain_store, closure_program):
        ids = chain_store.chain
        once = run_local(closure_program, [ids["a"]], chain_store.get)
        twice = run_local(closure_program, [ids["a"], ids["a"], ids["b"]], chain_store.get)
        # Extra admissions of already-reachable objects add nothing.
        assert once.oid_keys() == twice.oid_keys()
