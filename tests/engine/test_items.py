"""Tests for work items and iteration-number bookkeeping (paper §3.1)."""

import pytest

from repro.core.oid import Oid
from repro.engine.items import EMPTY_ITERS, ActiveItem, WorkItem, bump_iters, iter_count

OID = Oid("s1", 0)


class TestWorkItem:
    def test_defaults_match_initial_set(self):
        item = WorkItem(oid=OID)
        assert item.start == 1 and item.iters == EMPTY_ITERS

    def test_rejects_invalid_start(self):
        with pytest.raises(ValueError):
            WorkItem(oid=OID, start=0)

    def test_hashable_for_set_membership(self):
        assert len({WorkItem(OID, 1), WorkItem(OID, 1)}) == 1
        assert len({WorkItem(OID, 1), WorkItem(OID, 3)}) == 2

    def test_activate_initialises_next_and_mvars(self):
        # Paper: "O.next is initially equal to O.start" and "O.mvars
        # always starts as {}".
        active = WorkItem(oid=OID, start=3).activate()
        assert active.next == 3 and active.start == 3 and active.mvars == {}

    def test_round_trip_through_active(self):
        item = WorkItem(oid=OID, start=3, iters=((3, 2),))
        assert item.activate().to_work_item() == item


class TestActiveItem:
    def test_bind_accumulates_sets(self):
        active = ActiveItem(oid=OID, start=1, next=1)
        active.bind("X", "a")
        active.bind("X", "b")
        active.bind("X", "a")  # union semantics
        assert active.bindings("X") == {"a", "b"}

    def test_unbound_variable_is_empty(self):
        assert ActiveItem(oid=OID, start=1, next=1).bindings("X") == set()


class TestIterCounts:
    def test_default_chain_length_is_one(self):
        # Initial-set objects have iter# = 1 (paper's initialisation).
        assert iter_count(EMPTY_ITERS, loop_index=3) == 1

    def test_bump_increments_innermost_only(self):
        # Nested loops at markers 6 (outer) and 3 (inner); a deref inside
        # the inner loop bumps only the inner counter.
        iters = ((6, 2), (3, 5))
        bumped = bump_iters(iters, enclosing=(6, 3))
        assert dict(bumped) == {6: 2, 3: 6}

    def test_bump_starts_fresh_counters_at_two(self):
        # O.iter# = 1 for the parent, so a dereferenced child is at 2.
        bumped = bump_iters(EMPTY_ITERS, enclosing=(3,))
        assert dict(bumped) == {3: 2}

    def test_bump_outside_any_loop_clears_counts(self):
        assert bump_iters(((3, 7),), enclosing=()) == EMPTY_ITERS

    def test_bump_drops_unrelated_loop_counts(self):
        # A deref inside loop 9 only; counts for loop 3 are irrelevant at
        # the new object's start position and are dropped.
        bumped = bump_iters(((3, 4),), enclosing=(9,))
        assert dict(bumped) == {9: 2}

    def test_chain_length_growth_along_a_path(self):
        iters = EMPTY_ITERS
        for expected in (2, 3, 4):
            iters = bump_iters(iters, enclosing=(3,))
            assert iter_count(iters, 3) == expected
