"""Tests for the position-aware mark table (paper §3.1)."""

from repro.core.oid import Oid
from repro.engine.marktable import MarkTable

O = Oid("s1", 0)
P = Oid("s1", 1)


class TestAdmission:
    def test_fresh_object_is_processed(self):
        assert MarkTable().should_process(O, 1)

    def test_marked_position_suppresses(self):
        mt = MarkTable()
        mt.mark(O, 1)
        assert not mt.should_process(O, 1)

    def test_paper_subtlety_different_position_still_processed(self):
        # "even though O was seen earlier (at F1), it still needs to be
        # processed starting at F3."
        mt = MarkTable()
        mt.mark(O, 1)
        assert mt.should_process(O, 3)
        mt.mark(O, 3)
        assert not mt.should_process(O, 3)
        assert mt.positions(O) == {1, 3}

    def test_hint_insensitive(self):
        mt = MarkTable()
        mt.mark(Oid("s1", 0, presumed_site="s2"), 1)
        assert not mt.should_process(Oid("s1", 0, presumed_site="s9"), 1)

    def test_objects_are_independent(self):
        mt = MarkTable()
        mt.mark(O, 1)
        assert mt.should_process(P, 1)


class TestCounters:
    def test_seen_and_sizes(self):
        mt = MarkTable()
        assert not mt.seen(O)
        mt.mark(O, 1)
        mt.mark(O, 2)
        mt.mark(P, 1)
        assert mt.seen(O) and len(mt) == 2
        assert mt.objects_seen == 2
        assert mt.total_marks == 3

    def test_mark_operations_count_re_marks(self):
        mt = MarkTable()
        mt.mark(O, 1)
        mt.mark(O, 1)  # same pair again (loop-back re-mark)
        assert mt.total_marks == 1
        assert mt.mark_operations == 2

    def test_clear(self):
        mt = MarkTable()
        mt.mark(O, 1)
        mt.clear()
        assert mt.should_process(O, 1)
        assert mt.objects_seen == 0
