"""Tests for the exception hierarchy."""

import pytest

from repro import errors
from repro.core.oid import Oid


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.ObjectNotFound,
            errors.DuplicateObject,
            errors.QuerySyntaxError,
            errors.QueryValidationError,
            errors.UnknownSite,
            errors.SiteUnavailable,
            errors.TerminationProtocolError,
            errors.TransportClosed,
            errors.QueryLimitExceeded,
        ],
    )
    def test_all_derive_from_base(self, exc_class):
        assert issubclass(exc_class, errors.HyperFileError)

    def test_object_not_found_is_a_key_error(self):
        # Callers using dict-style access idioms can catch KeyError.
        assert issubclass(errors.ObjectNotFound, KeyError)

    def test_syntax_and_validation_are_value_errors(self):
        assert issubclass(errors.QuerySyntaxError, ValueError)
        assert issubclass(errors.QueryValidationError, ValueError)


class TestMessages:
    def test_object_not_found_carries_context(self):
        exc = errors.ObjectNotFound(Oid("s1", 7), site="s1")
        assert exc.oid == Oid("s1", 7) and exc.site == "s1"
        assert "s1:7" in str(exc) and "at site" in str(exc)

    def test_object_not_found_without_site(self):
        assert "at site" not in str(errors.ObjectNotFound(Oid("s1", 7)))

    def test_syntax_error_snippet(self):
        exc = errors.QuerySyntaxError("bad token", position=5, text="S (Keyword")
        assert exc.position == 5
        assert "position 5" in str(exc)

    def test_syntax_error_without_position(self):
        assert "position" not in str(errors.QuerySyntaxError("oops"))

    def test_limit_exceeded_names_the_limit(self):
        exc = errors.QueryLimitExceeded("max_objects", 100)
        assert exc.limit_name == "max_objects" and exc.limit == 100
        assert "max_objects=100" in str(exc)

    def test_unknown_site_and_unavailable(self):
        assert "siteX" in str(errors.UnknownSite("siteX"))
        assert "siteY" in str(errors.SiteUnavailable("siteY"))
