"""The membership-exploration centerpiece: 1000+ interleavings with
joins, graceful leaves, and permanent crashes landing mid-query.

The contract under test (ISSUE 10 acceptance):

* replaying ``N_RUNS`` (default 1000) distinct seeded interleavings of a
  replicated membership-enabled cluster with one membership scenario per
  seed (join / leave / permanent crash / join+leave, all keeping at
  least one live replica of everything) *plus* a transient
  crash-with-recovery of a non-originator site, every schedule completes
  with the exact result set of the static replica-free oracle and a
  weighted-termination credit deficit of exactly zero;
* after every run quiesces, every surviving directory entry has
  ``min(k, active)`` live up-to-date holders (``k_restored``) and no
  entry lost all its copies (``lost_objects == 0``);
* systematic DFS over choice prefixes holds the same invariants with a
  membership event pinned into every branch.
"""

from repro.sim.explore import (
    CrashPermanentPoint,
    JoinPoint,
    LeavePoint,
    distinct_signatures,
    explore_dfs,
    explore_random,
    run_schedule,
    summarize,
)

from .workloads import (
    CLOSURE,
    N_RUNS,
    ORIGINATOR,
    make_membership_setup,
    membership_events,
    oracle_keys,
    safe_crash,
)


def assert_clean(run, expected):
    assert run.status == "completed", (run.seed, run.membership)
    assert run.oid_keys == expected, (run.seed, run.membership)
    assert not run.partial, run.seed
    assert run.deficit == 0, (run.seed, run.deficit)
    assert run.k_restored, (run.seed, run.membership)
    assert run.lost_objects == 0, (run.seed, run.membership)


class TestMembershipSweep:
    def test_thousand_interleavings_with_membership_changes_match_oracle(self):
        """The acceptance sweep: N_RUNS seeded random walks, each with a
        membership scenario firing mid-query on top of a transient
        crash-with-recovery.  Every schedule must end oracle-equivalent
        with a zero deficit, every signature distinct, and the
        replication target restored at quiesce."""
        runs = explore_random(
            make_membership_setup(k=2),
            CLOSURE,
            seeds=range(N_RUNS),
            crashes_for_seed=safe_crash,
            membership_for_seed=membership_events,
            originator=ORIGINATOR,
        )
        assert len(runs) == N_RUNS
        assert distinct_signatures(runs) == N_RUNS, summarize(runs)
        expected = oracle_keys()
        for run in runs:
            assert_clean(run, expected)

    def test_every_event_kind_covered_and_rebalances_ran(self):
        """The sweep is only meaningful if all three event kinds fired
        and rebalancing actually moved data: check the per-kind buckets
        on a slice of the sweep."""
        runs = explore_random(
            make_membership_setup(k=2),
            CLOSURE,
            seeds=range(min(N_RUNS, 100)),
            crashes_for_seed=safe_crash,
            membership_for_seed=membership_events,
            originator=ORIGINATOR,
        )
        kinds = {type(p).__name__ for run in runs for p in run.membership}
        assert kinds == {"JoinPoint", "LeavePoint", "CrashPermanentPoint"}
        expected = oracle_keys()
        for run in runs:
            assert_clean(run, expected)

    def test_permanent_crash_defers_to_a_credit_safe_decision(self):
        """A CrashPermanentPoint pinned absurdly early still never loses
        credit: the explorer defers it to the first safe window."""
        expected = oracle_keys()
        for seed in range(30):
            run = run_schedule(
                make_membership_setup(k=2),
                CLOSURE,
                seed=seed,
                membership=(CrashPermanentPoint(f"site{1 + seed % 2}", at_decision=0),),
                originator=ORIGINATOR,
            )
            assert_clean(run, expected)

    def test_static_membership_cluster_is_schedule_independent(self):
        """membership= configured but no events injected: the membership
        plane must be pure overheadless bookkeeping under reordering."""
        expected = oracle_keys()
        runs = explore_random(
            make_membership_setup(k=2),
            CLOSURE,
            seeds=range(100),
            originator=ORIGINATOR,
        )
        for run in runs:
            assert_clean(run, expected)


class TestMembershipDFS:
    def test_dfs_branches_hold_the_invariants_with_a_leave(self):
        runs = explore_dfs(
            make_membership_setup(k=2),
            CLOSURE,
            max_runs=60,
            branch_cap=3,
            # An early leave drains concurrency before the walk branches,
            # so fire it mid-flight where multi-way decisions still exist.
            depth_limit=18,
            membership=(LeavePoint("site1", at_decision=12),),
            originator=ORIGINATOR,
        )
        assert len(runs) > 1, "DFS found no branch points"
        assert distinct_signatures(runs) == len(runs)
        expected = oracle_keys()
        for run in runs:
            assert_clean(run, expected)

    def test_dfs_branches_hold_the_invariants_with_a_join(self):
        runs = explore_dfs(
            make_membership_setup(k=2),
            CLOSURE,
            max_runs=40,
            branch_cap=2,
            depth_limit=10,
            membership=(JoinPoint("site3", at_decision=6),),
            originator=ORIGINATOR,
        )
        assert distinct_signatures(runs) == len(runs)
        expected = oracle_keys()
        for run in runs:
            assert_clean(run, expected)
