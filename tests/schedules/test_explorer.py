"""Unit tests for the schedule-exploration machinery itself: the kernel
policy hook, the replay driver, crash points, and safety predicates."""

import pytest

from repro.cluster import SimCluster
from repro.replication import ReplicationConfig
from repro.config import ClusterConfig
from repro.sim import Simulator
from repro.sim.explore import (
    CrashPoint,
    crash_is_safe,
    distinct_signatures,
    explore_random,
    run_schedule,
    summarize,
)

from .workloads import CLOSURE, ORIGINATOR, load_chain, make_setup, safe_crash


class TestKernelPolicyHook:
    def test_policy_sees_live_entries_in_deterministic_order(self):
        sim = Simulator()
        seen = []

        def policy(live):
            seen.append([e.time for e in live])
            return 0

        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.set_policy(policy)
        while sim.step():
            pass
        assert fired == ["early", "late"]
        assert seen[0] == [1.0, 2.0]

    def test_policy_can_reorder_and_clock_never_runs_backwards(self):
        sim = Simulator()
        fired = []
        times = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.set_policy(lambda live: len(live) - 1)  # always the latest
        while sim.step():
            times.append(sim.now)
        assert fired == ["c", "b", "a"]
        assert times == sorted(times)  # max(now, t): monotone
        assert times[-1] == 3.0

    def test_out_of_range_choice_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.set_policy(lambda live: 7)
        with pytest.raises(IndexError):
            sim.step()

    def test_clearing_the_policy_restores_default_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.set_policy(lambda live: len(live) - 1)
        sim.step()
        sim.set_policy(None)
        sim.step()
        assert fired == ["late", "early"]

    def test_cancelled_events_are_invisible_to_the_policy(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        handle.cancel()
        widths = []
        sim.set_policy(lambda live: widths.append(len(live)) or 0)
        while sim.step():
            pass
        assert fired == ["kept"]
        assert widths == [1]


class TestReplayDeterminism:
    def test_same_seed_replays_the_same_interleaving(self):
        a = run_schedule(make_setup(k=2), CLOSURE, seed=11, originator=ORIGINATOR)
        b = run_schedule(make_setup(k=2), CLOSURE, seed=11, originator=ORIGINATOR)
        assert a.signature == b.signature
        assert a.oid_keys == b.oid_keys
        assert a.decisions == b.decisions

    def test_crash_points_are_part_of_the_signature(self):
        plain = run_schedule(make_setup(k=2), CLOSURE, seed=11, originator=ORIGINATOR)
        crashed = run_schedule(
            make_setup(k=2), CLOSURE, seed=11,
            crashes=(CrashPoint("site1", at_decision=3, recover_at_decision=22),),
            originator=ORIGINATOR,
        )
        assert plain.signature != crashed.signature

    def test_distinct_seeds_explore_distinct_interleavings(self):
        runs = explore_random(
            make_setup(k=2), CLOSURE, seeds=range(30), originator=ORIGINATOR
        )
        assert distinct_signatures(runs) == len(runs)

    def test_prefix_replay_is_deterministic(self):
        a = run_schedule(
            make_setup(k=2), CLOSURE, prefix=(0, 1, 0, 1), originator=ORIGINATOR
        )
        b = run_schedule(
            make_setup(k=2), CLOSURE, prefix=(0, 1, 0, 1), originator=ORIGINATOR
        )
        assert a.signature == b.signature

    def test_summarize_reports_the_sweep(self):
        runs = explore_random(
            make_setup(k=2), CLOSURE, seeds=range(5),
            crashes_for_seed=safe_crash, originator=ORIGINATOR,
        )
        summary = summarize(runs)
        assert summary["runs"] == 5
        assert summary["distinct"] == 5
        assert summary["completed"] == 5
        assert summary["zero_deficit"] == 5


class TestCrashPoints:
    def test_negative_decision_rejected(self):
        with pytest.raises(ValueError):
            CrashPoint("site1", at_decision=-1)

    def test_recovery_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashPoint("site1", at_decision=5, recover_at_decision=5)

    def test_no_recovery_is_allowed(self):
        assert CrashPoint("site1", at_decision=5).recover_at_decision is None


class TestCrashSafety:
    def _replicated(self):
        cluster = SimCluster(3, config=ClusterConfig(replication=ReplicationConfig(k=2)))
        load_chain(cluster)
        cluster.replicate_all()
        return cluster

    def test_single_crash_is_safe_with_k2(self):
        cluster = self._replicated()
        assert crash_is_safe(cluster, ["site1"], "site0")
        assert crash_is_safe(cluster, ["site2"], "site0")
        cluster.close()

    def test_crashing_the_originator_is_never_safe(self):
        cluster = self._replicated()
        assert not crash_is_safe(cluster, ["site0"], "site0")
        cluster.close()

    def test_killing_both_holders_is_unsafe(self):
        cluster = self._replicated()
        assert not crash_is_safe(cluster, ["site1", "site2"], "site0")
        cluster.close()

    def test_replica_free_remote_crash_is_unsafe(self):
        cluster = SimCluster(3)
        load_chain(cluster)
        assert not crash_is_safe(cluster, ["site1"], "site0")
        cluster.close()
