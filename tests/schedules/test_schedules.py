"""The schedule-exploration centerpiece: thousands of interleavings,
every one held to result equivalence and exact credit conservation.

The contract under test (ISSUE 5 acceptance):

* replaying ``N_RUNS`` (default 1000) distinct seeded interleavings of a
  replicated cluster *with crash injection*, every schedule completes
  with the exact result set of the healthy replica-free build and a
  weighted-termination credit deficit of exactly zero;
* the replica-free build (k=1), reordered but unfaulted, is equally
  schedule-independent — reordering alone can never change results;
* systematic DFS over choice prefixes holds to the same invariants on
  every explored branch.
"""

from repro.sim.explore import (
    distinct_signatures,
    explore_dfs,
    explore_random,
    run_schedule,
    summarize,
)
from repro.sim.explore import CrashPoint

from .workloads import (
    CLOSURE,
    N_RUNS,
    ORIGINATOR,
    make_setup,
    oracle_keys,
    safe_crash,
)


class TestCrashInjectedEquivalence:
    def test_thousand_interleavings_with_crashes_match_oracle(self):
        """The acceptance sweep: N_RUNS seeded random walks, each with a
        mid-flight crash (+ recovery) of a non-originator replica holder.
        Every single schedule must produce the oracle result set with a
        zero credit deficit, and every signature must be distinct."""
        runs = explore_random(
            make_setup(k=2),
            CLOSURE,
            seeds=range(N_RUNS),
            crashes_for_seed=safe_crash,
            originator=ORIGINATOR,
        )
        assert len(runs) == N_RUNS
        assert distinct_signatures(runs) == N_RUNS, summarize(runs)
        expected = oracle_keys()
        for run in runs:
            assert run.status == "completed", (run.seed, summarize(runs))
            assert run.oid_keys == expected, run.seed
            assert not run.partial, run.seed
            assert run.deficit == 0, (run.seed, run.deficit)

    def test_failover_paths_actually_exercised(self):
        """The sweep is only meaningful if crashes land while work is in
        flight: across the seeds, bounced/down-routed sends must have
        re-routed to surviving replicas at least once."""
        runs = explore_random(
            make_setup(k=2),
            CLOSURE,
            seeds=range(min(N_RUNS, 200)),
            crashes_for_seed=safe_crash,
            originator=ORIGINATOR,
        )
        failovers = sum(run.stats.replica_failovers for run in runs)
        assert failovers > 0

    def test_crash_without_recovery_never_corrupts_results_with_k2(self):
        """A *permanent* non-originator crash: sends headed for the dead
        site fail over to the surviving replica, so any schedule that
        completes completes exactly.  Work the site already had in hand
        when it died (admitted into its context, or sitting un-stepped in
        its inbox) is frozen with its credit — the crash model freezes,
        never loses, queued work — so those schedules hang deliberately,
        and whatever deficit the ledger shows is exactly the credit the
        span audit can point at frozen in traced-but-unconsumed sends.
        Either way, nothing silent: no partial answer, no leaked credit."""
        from repro.profiling import credit_audit
        from repro.tracing import QueryTracer

        expected = oracle_keys()
        completed = 0
        for seed in range(40):
            site = f"site{1 + seed % 2}"
            run = run_schedule(
                make_setup(k=2),
                CLOSURE,
                seed=seed,
                crashes=(CrashPoint(site, at_decision=2 + seed % 7),),
                originator=ORIGINATOR,
                tracer_factory=QueryTracer,
            )
            if run.status == "completed":
                completed += 1
                assert run.deficit == 0, seed
                assert run.oid_keys == expected, seed
                assert not run.partial, seed
            else:
                audit = credit_audit(run.trace, run.qid)
                assert run.deficit == audit.lost, (seed, audit.render())
        assert completed > 0, "failover never carried a schedule through"


class TestReorderingAloneIsHarmless:
    def test_replica_free_build_is_schedule_independent(self):
        """k=1, no faults: reordering events can never change the result
        set or leak credit (the pre-PR algorithm under the explorer)."""
        expected = oracle_keys()
        runs = explore_random(
            make_setup(k=1), CLOSURE, seeds=range(100), originator=ORIGINATOR
        )
        for run in runs:
            assert run.status == "completed"
            assert run.oid_keys == expected
            assert run.deficit == 0

    def test_replicated_healthy_build_is_schedule_independent(self):
        expected = oracle_keys()
        runs = explore_random(
            make_setup(k=2), CLOSURE, seeds=range(100), originator=ORIGINATOR
        )
        for run in runs:
            assert run.status == "completed"
            assert run.oid_keys == expected
            assert run.deficit == 0


class TestSystematicDFS:
    def test_dfs_branches_hold_the_invariants(self):
        runs = explore_dfs(
            make_setup(k=2),
            CLOSURE,
            max_runs=80,
            branch_cap=3,
            depth_limit=12,
            crashes=(CrashPoint("site1", at_decision=4, recover_at_decision=25),),
            originator=ORIGINATOR,
        )
        assert len(runs) > 1, "DFS found no branch points"
        assert distinct_signatures(runs) == len(runs)
        expected = oracle_keys()
        for run in runs:
            assert run.status == "completed"
            assert run.oid_keys == expected
            assert run.deficit == 0

    def test_dfs_without_crashes_also_holds(self):
        runs = explore_dfs(
            make_setup(k=2),
            CLOSURE,
            max_runs=40,
            branch_cap=2,
            depth_limit=10,
            originator=ORIGINATOR,
        )
        expected = oracle_keys()
        assert distinct_signatures(runs) == len(runs)
        for run in runs:
            assert run.status == "completed"
            assert run.oid_keys == expected
            assert run.deficit == 0
