"""Deterministic workloads shared by the schedule-exploration tests.

Everything the explorer replays must be reproducible from scratch on
every run: the same objects, the same pointers, the same placement.
These builders encode one small cross-site closure workload (8 objects
chained over 3 sites, alternating keyword matches so suppression has
something to suppress) in replicated and replica-free variants, plus the
replica-free oracle every schedule's result set is compared against.

``REPRO_SCHEDULE_RUNS`` scales the big sweeps (default 1000 — the
acceptance floor; CI's schedule-smoke job pins a smaller slice).
"""

import functools
import os

from repro.cluster import SimCluster
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.config import ClusterConfig
from repro.membership import MembershipConfig
from repro.replication import ReplicationConfig
from repro.sim.explore import (
    CrashPermanentPoint,
    CrashPoint,
    JoinPoint,
    LeavePoint,
    run_schedule,
)

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'
SITES = 3
# Long enough that the 1000-seed sweeps' random walks stay pairwise
# distinct: rendezvous-hashed backup placement spreads the chain's
# copies differently from the old ring successor, and shorter chains
# leave too few multi-way scheduling decisions per run.
LENGTH = 14
ORIGINATOR = "site0"

#: Runs in the big random-walk sweep (acceptance floor: 1000).
N_RUNS = int(os.environ.get("REPRO_SCHEDULE_RUNS", "1000"))


def load_chain(cluster, length=LENGTH):
    """A pointer chain striped across the sites, every other object a hit."""
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        key = keyword_tuple("K") if i % 2 == 0 else keyword_tuple("miss")
        oids.append(stores[i % len(stores)].create([key]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    return oids


def make_setup(k=2, **cluster_kwargs):
    """A :data:`~repro.sim.explore.Setup` building the chain workload at
    replication factor ``k`` (``k=1`` is the replica-free build)."""

    def setup():
        cluster = SimCluster(
            SITES, config=ClusterConfig(replication=ReplicationConfig(k=k), **cluster_kwargs)
        )
        oids = load_chain(cluster)
        cluster.replicate_all()
        return cluster, oids[:1]

    return setup


@functools.lru_cache(maxsize=None)
def oracle_keys():
    """Result keys of the healthy replica-free cluster, default order."""
    run = run_schedule(make_setup(k=1), CLOSURE, originator=ORIGINATOR)
    assert run.status == "completed" and run.deficit == 0 and not run.partial
    assert run.oid_keys, "oracle produced an empty result set"
    return run.oid_keys


def make_membership_setup(k=2, **membership_kwargs):
    """The chain workload on a membership-enabled cluster.

    Administrative membership (no heartbeat timers) keeps the explorer
    deterministic: view changes land on exact decision counts.
    """

    def setup():
        cluster = SimCluster(
            SITES,
            config=ClusterConfig(
                replication=ReplicationConfig(k=k),
                membership=MembershipConfig(**membership_kwargs),
            ),
        )
        oids = load_chain(cluster)
        cluster.replicate_all()
        return cluster, oids[:1]

    return setup


def membership_events(seed):
    """One membership scenario per seed, cycling the event kinds.

    Every scenario keeps at least one live replica of every object (k=2
    over 3 sites; the originator never leaves or crashes), so result
    equivalence and zero deficit must hold on every schedule.
    """
    victim = f"site{1 + seed % (SITES - 1)}"
    at = 2 + seed % 11
    kind = seed % 4
    if kind == 0:
        # A new site joins mid-query; rebalancing spreads copies onto it.
        return (JoinPoint(f"site{SITES}", at_decision=at),)
    if kind == 1:
        # A non-originator site leaves gracefully mid-query.
        return (LeavePoint(victim, at_decision=at),)
    if kind == 2:
        # A non-originator site crashes permanently (fires at the first
        # credit-safe decision at or after `at`).
        return (CrashPermanentPoint(victim, at_decision=at),)
    # Join and leave in the same run: the ring grows and shrinks.
    return (
        JoinPoint(f"site{SITES}", at_decision=at),
        LeavePoint(victim, at_decision=at + 5 + seed % 7),
    )


def safe_crash(seed):
    """One crash-with-recovery per seed, never the originator.

    With k=2 over 3 sites any single non-originator crash keeps a live
    holder of every object, so result equivalence must hold on every
    schedule that injects these.
    """
    site = f"site{1 + seed % (SITES - 1)}"
    return (
        CrashPoint(
            site,
            at_decision=2 + seed % 7,
            recover_at_decision=20 + seed % 9,
        ),
    )
