"""Satellite: credit accounting under failover, audited span by span.

The weighted detector conserves a total credit of 1; re-routed sends
split fresh credit and bounced sends recover theirs.  The contract over
*every* explored schedule: the run either completes with
``credit_deficit == 0``, or it ends in a deliberate termination loss
whose deficit :func:`repro.profiling.credit_audit` fully explains —
no schedule may leak credit silently.
"""

from repro.profiling import credit_audit
from repro.sim.explore import CrashPoint, explore_random, run_schedule
from repro.tracing import QueryTracer

from .workloads import CLOSURE, ORIGINATOR, make_setup, safe_crash


class TestCreditUnderFailover:
    def test_every_completed_schedule_delivers_all_credit(self):
        """Completed crash schedules: deficit exactly zero AND the trace
        shows every credit-carrying send consumed by a receive."""
        runs = explore_random(
            make_setup(k=2),
            CLOSURE,
            seeds=range(60),
            crashes_for_seed=safe_crash,
            originator=ORIGINATOR,
            tracer_factory=QueryTracer,
        )
        for run in runs:
            assert run.status == "completed", run.seed
            assert run.deficit == 0, run.seed
            audit = credit_audit(run.trace, run.qid)
            assert audit.lost == 0, (run.seed, audit.render())

    def test_every_run_ends_zero_deficit_or_deliberate_loss(self):
        """The blanket invariant over a mixed sweep (safe and unsafe
        crashes alike): zero deficit on completion, and any termination
        loss carries a deficit the audit accounts for exactly."""
        for seed in range(40):
            # Alternate between the replicated build under a safe crash
            # and the replica-free build under an unsafe one.
            k = 2 if seed % 2 == 0 else 1
            crashes = (
                safe_crash(seed)
                if k == 2
                else (CrashPoint(f"site{1 + seed % 2}", at_decision=2 + seed % 5),)
            )
            run = run_schedule(
                make_setup(k=k),
                CLOSURE,
                seed=seed,
                crashes=crashes,
                originator=ORIGINATOR,
                tracer_factory=QueryTracer,
            )
            audit = credit_audit(run.trace, run.qid)
            if run.status == "completed":
                assert run.deficit == 0, run.seed
                assert audit.lost == 0, run.seed
            else:
                # Deliberate loss: the deficit is exactly the credit the
                # audit can point at — traced sends that never landed.
                # (Credit frozen at a down site is *held*, not lost, so
                # it never shows up in the deficit at all.)
                assert run.status == "termination_lost"
                assert run.deficit == audit.lost, (run.seed, audit.render())

    def test_unsafe_crash_on_replica_free_build_is_a_deliberate_loss(self):
        """k=1 with a remote site crashed mid-flight cannot terminate:
        the run must end as an explained termination loss, never as a
        silent completion or an unexplained hang."""
        losses = 0
        for seed in range(20):
            run = run_schedule(
                make_setup(k=1),
                CLOSURE,
                seed=seed,
                crashes=(CrashPoint("site1", at_decision=2 + seed % 5),),
                originator=ORIGINATOR,
                tracer_factory=QueryTracer,
            )
            if run.status == "termination_lost":
                losses += 1
                audit = credit_audit(run.trace, run.qid)
                assert run.deficit == audit.lost, run.seed
        assert losses > 0, "no schedule ever hit the crashed site"
