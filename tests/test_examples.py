"""Smoke tests: every shipped example must run clean end to end.

Examples are documentation that executes; these tests keep them honest
(broken imports, renamed APIs, changed semantics all surface here).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + list(argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "3 documents found" in out
        assert "HyperFile: A Data Server for Documents" in out

    def test_software_engineering(self, capsys):
        out = run_example("software_engineering.py", capsys=capsys)
        assert "Quicksort Kernel" in out
        assert "Title 1:" in out
        assert "self-maintained" in out

    def test_digital_library(self, capsys):
        out = run_example("digital_library.py", capsys=capsys)
        assert "reachability index agrees" in out
        assert "same answers after migration" in out
        assert "query still terminated cleanly" in out

    def test_lost_in_hyperspace(self, capsys):
        out = run_example("lost_in_hyperspace.py", capsys=capsys)
        assert "browsing user" in out and "querying user" in out
        assert "beats manual navigation" in out

    def test_paper_experiments(self, capsys):
        out = run_example("paper_experiments.py", argv=["1"], capsys=capsys)
        assert "Figure 4" in out
        assert "E5" in out
