"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, run_demo, run_experiments, run_repl


def repl(script: str, **kwargs) -> str:
    out = io.StringIO()
    code = run_repl(stdin=io.StringIO(script), out=out, **kwargs)
    assert code == 0
    return out.getvalue()


class TestDemo:
    def test_demo_runs(self):
        out = io.StringIO()
        assert run_demo(out=out) == 0
        text = out.getvalue()
        assert "found: HyperFile" in text
        assert "response time" in text

    def test_demo_via_main(self, capsys):
        assert main(["demo"]) == 0
        assert "found:" in capsys.readouterr().out


class TestRepl:
    def test_query_and_quit(self):
        text = repl(
            'Root [ (Pointer, "Tree", ?X) | ^^X ]* (Rand10p, 5, ?) -> Hits\n:quit\n',
            n_objects=90,
        )
        assert "objects in" in text
        assert "bye" in text

    def test_result_sets_persist(self):
        text = repl(
            'Root [ (Pointer, "Tree", ?X) | ^^X ]* (Common, 0, ?) -> Everything\n'
            "Everything (Rand10p, 5, ?) -> Narrow\n"
            ":sets\n:quit\n",
            n_objects=90,
        )
        assert "Everything: 90 objects" in text
        assert "Narrow:" in text

    def test_retrieval_bindings_printed(self):
        text = repl('All (Unique, 3, ?) (Text, "Body", ->body) -> One\n:quit\n', n_objects=90)
        assert "->body:" in text

    def test_error_reported_not_fatal(self):
        text = repl("NoSuchSet (Common, 0, ?) -> X\n:quit\n", n_objects=90)
        assert "error:" in text and "bye" in text

    def test_syntax_error_reported(self):
        text = repl("Root (((\n:quit\n", n_objects=90)
        assert "error:" in text

    def test_members_and_stats(self):
        text = repl(":members Root\n:stats\n:quit\n", n_objects=90)
        assert "site0:0" in text
        assert "messages sent" in text

    def test_trace_cycle(self):
        text = repl(
            ":trace on\nRoot (Unique, 0, ?) -> Self\n:timeline 3\n:trace off\n:quit\n",
            n_objects=90,
        )
        assert "tracing on" in text
        assert "submit" in text
        assert "tracing off" in text

    def test_timeline_without_tracing(self):
        text = repl(":timeline\n:quit\n", n_objects=90)
        assert "tracing is off" in text

    def test_unknown_meta_command(self):
        text = repl(":frobnicate\n:quit\n", n_objects=90)
        assert "unknown command" in text

    def test_help(self):
        text = repl(":help\n:quit\n", n_objects=90)
        assert ":members" in text

    def test_eof_exits_cleanly(self):
        assert "bye" not in repl("", n_objects=90)


class TestExperiments:
    def test_quick_tables(self):
        out = io.StringIO()
        assert run_experiments(1, out=out) == 0
        text = out.getvalue()
        assert "paper" in text and "Chain" in text and "Tree" in text

    def test_via_main(self, capsys):
        assert main(["experiments", "-n", "1"]) == 0
        assert "measured_s" in capsys.readouterr().out
