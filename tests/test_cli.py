"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import (
    main,
    run_demo,
    run_experiments,
    run_profile,
    run_repl,
    run_top,
    run_trace,
)


def repl(script: str, **kwargs) -> str:
    out = io.StringIO()
    code = run_repl(stdin=io.StringIO(script), out=out, **kwargs)
    assert code == 0
    return out.getvalue()


class TestDemo:
    def test_demo_runs(self):
        out = io.StringIO()
        assert run_demo(out=out) == 0
        text = out.getvalue()
        assert "found: HyperFile" in text
        assert "response time" in text

    def test_demo_via_main(self, capsys):
        assert main(["demo"]) == 0
        assert "found:" in capsys.readouterr().out


class TestRepl:
    def test_query_and_quit(self):
        text = repl(
            'Root [ (Pointer, "Tree", ?X) | ^^X ]* (Rand10p, 5, ?) -> Hits\n:quit\n',
            n_objects=90,
        )
        assert "objects in" in text
        assert "bye" in text

    def test_result_sets_persist(self):
        text = repl(
            'Root [ (Pointer, "Tree", ?X) | ^^X ]* (Common, 0, ?) -> Everything\n'
            "Everything (Rand10p, 5, ?) -> Narrow\n"
            ":sets\n:quit\n",
            n_objects=90,
        )
        assert "Everything: 90 objects" in text
        assert "Narrow:" in text

    def test_retrieval_bindings_printed(self):
        text = repl('All (Unique, 3, ?) (Text, "Body", ->body) -> One\n:quit\n', n_objects=90)
        assert "->body:" in text

    def test_error_reported_not_fatal(self):
        text = repl("NoSuchSet (Common, 0, ?) -> X\n:quit\n", n_objects=90)
        assert "error:" in text and "bye" in text

    def test_syntax_error_reported(self):
        text = repl("Root (((\n:quit\n", n_objects=90)
        assert "error:" in text

    def test_members_and_stats(self):
        text = repl(":members Root\n:stats\n:quit\n", n_objects=90)
        assert "site0:0" in text
        assert "messages sent" in text

    def test_trace_cycle(self):
        text = repl(
            ":trace on\nRoot (Unique, 0, ?) -> Self\n:timeline 3\n:trace off\n:quit\n",
            n_objects=90,
        )
        assert "tracing on" in text
        assert "submit" in text
        assert "tracing off" in text

    def test_timeline_without_tracing(self):
        text = repl(":timeline\n:quit\n", n_objects=90)
        assert "tracing is off" in text

    def test_profile_after_traced_query(self):
        text = repl(
            ":trace on\nRoot (Unique, 0, ?) -> Self\n:profile\n:quit\n",
            n_objects=90,
        )
        assert "span tree OK" in text
        assert "critical path" in text

    def test_profile_without_tracing(self):
        text = repl(":profile\n:quit\n", n_objects=90)
        assert "tracing is off" in text

    def test_profile_before_any_query(self):
        text = repl(":trace on\n:profile\n:quit\n", n_objects=90)
        assert "no query run yet" in text

    def test_export_chrome_and_jsonl(self, tmp_path):
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        text = repl(
            f":trace on\nRoot (Unique, 0, ?) -> Self\n"
            f":export {chrome}\n:export {jsonl}\n:quit\n",
            n_objects=90,
        )
        assert "Perfetto" in text
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert all(json.loads(line) for line in jsonl.read_text().splitlines())

    def test_export_usage_errors(self):
        assert "tracing is off" in repl(":export /tmp/x.json\n:quit\n", n_objects=90)
        assert "usage: :export" in repl(":trace on\n:export\n:quit\n", n_objects=90)

    def test_unknown_meta_command(self):
        text = repl(":frobnicate\n:quit\n", n_objects=90)
        assert "unknown command" in text

    def test_help(self):
        text = repl(":help\n:quit\n", n_objects=90)
        assert ":members" in text

    def test_eof_exits_cleanly(self):
        assert "bye" not in repl("", n_objects=90)


class TestTraceAndProfile:
    def test_trace_writes_validated_exports(self, tmp_path):
        out = io.StringIO()
        chrome = tmp_path / "fig4.json"
        jsonl = tmp_path / "fig4.jsonl"
        code = run_trace(
            sites=3, n_objects=90, jsonl=str(jsonl), chrome=str(chrome),
            validate=True, out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "span tree OK" in text
        assert "chrome trace schema OK" in text
        doc = json.loads(chrome.read_text())
        assert {e["ph"] for e in doc["traceEvents"]} >= {"M", "i"}
        assert jsonl.read_text().count("\n") > 50

    def test_trace_without_exports_prints_lanes(self):
        out = io.StringIO()
        assert run_trace(sites=3, n_objects=90, out=out) == 0
        assert "|" in out.getvalue()  # the swim-lane grid

    def test_profile_prints_all_sections(self):
        out = io.StringIO()
        assert run_profile(sites=3, n_objects=90, out=out) == 0
        text = out.getvalue()
        assert "span tree OK" in text
        assert "critical path" in text
        assert "credit audit" in text

    def test_via_main(self, capsys, tmp_path):
        chrome = tmp_path / "t.json"
        assert main(["trace", "--objects", "90", "--chrome", str(chrome), "--validate"]) == 0
        assert "schema OK" in capsys.readouterr().out
        assert main(["profile", "--objects", "90"]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_trace_dumps_flight_ring(self, tmp_path):
        out = io.StringIO()
        code = run_trace(sites=3, n_objects=90, flightrec=str(tmp_path), out=out)
        assert code == 0
        assert "flight recorder:" in out.getvalue()
        dumps = sorted(tmp_path.glob("flightrec-*-cli.jsonl"))
        assert dumps and dumps[0].read_text().count("\n") > 0

    @pytest.mark.parametrize("transport", ["sim", "threaded", "sockets", "async"])
    def test_trace_accepts_every_transport(self, transport):
        out = io.StringIO()
        assert run_trace(sites=3, n_objects=30, out=out, transport=transport) == 0
        assert "span tree OK" in out.getvalue()

    def test_processes_requires_async_transport(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--processes"])
        assert excinfo.value.code == 2
        assert "--transport async" in capsys.readouterr().err

    def test_trace_and_profile_across_processes(self):
        out = io.StringIO()
        code = run_trace(
            sites=3, n_objects=30, out=out, transport="async", processes=True
        )
        assert code == 0
        assert "span tree OK" in out.getvalue()
        out = io.StringIO()
        code = run_profile(
            sites=3, n_objects=30, out=out, transport="async", processes=True
        )
        assert code == 0
        assert "critical path" in out.getvalue()


class TestTop:
    def test_sim_frames_have_all_sites(self):
        out = io.StringIO()
        assert run_top(sites=3, n_objects=90, frames=4, out=out) == 0
        text = out.getvalue()
        assert "frame(s)" in text
        assert "site0" in text and "site1" in text and "site2" in text
        assert "msgs_out" in text

    def test_via_main(self, capsys):
        assert main(["top", "--objects", "90", "--frames", "2"]) == 0
        assert "frame(s)" in capsys.readouterr().out

    def test_process_mode_streams_from_children(self):
        out = io.StringIO()
        code = run_top(
            sites=3, n_objects=30, frames=6, out=out,
            transport="async", processes=True,
        )
        assert code == 0
        text = out.getvalue()
        assert "monotonic clock" in text
        assert "site0" in text


class TestExperiments:
    def test_quick_tables(self):
        out = io.StringIO()
        assert run_experiments(1, out=out) == 0
        text = out.getvalue()
        assert "paper" in text and "Chain" in text and "Tree" in text

    def test_via_main(self, capsys):
        assert main(["experiments", "-n", "1"]) == 0
        assert "measured_s" in capsys.readouterr().out


class TestExplore:
    def test_sweep_reports_equivalence(self):
        from repro.cli import run_explore

        out = io.StringIO()
        assert run_explore(n_runs=25, out=out) == 0
        text = out.getvalue()
        assert "distinct interleavings: 25" in text
        assert "oracle-equal results:   25" in text
        assert "zero credit deficit:    25" in text
        assert "every schedule equivalent and credit-exact" in text

    def test_reordering_only_mode(self):
        from repro.cli import run_explore

        out = io.StringIO()
        assert run_explore(n_runs=10, crashes=False, out=out) == 0
        assert "reordering only" in out.getvalue()

    def test_via_main(self, capsys):
        assert main(["explore", "-n", "10"]) == 0
        assert "explored 10 schedules" in capsys.readouterr().out

    def test_membership_mode_with_signature_log(self, tmp_path):
        from repro.cli import run_explore

        out = io.StringIO()
        sig_log = tmp_path / "sigs.log"
        assert run_explore(
            n_runs=12, membership=True, sig_log=str(sig_log), out=out
        ) == 0
        text = out.getvalue()
        assert "membership churn" in text
        assert "k restored at quiesce:  12" in text
        assert "objects lost:           0" in text
        lines = sig_log.read_text().splitlines()
        assert len(lines) == 12
        assert len(set(lines)) == 12  # every run logged a distinct walk

    def test_membership_rejects_replica_free(self):
        from repro.cli import run_explore

        out = io.StringIO()
        assert run_explore(n_runs=5, k=1, membership=True, out=out) == 2
        assert "k >= 2" in out.getvalue()


class TestCacheStats:
    def test_counters_and_savings(self):
        from repro.cli import run_cache_stats

        out = io.StringIO()
        assert run_cache_stats(n_objects=60, n_queries=3, out=out) == 0
        text = out.getvalue()
        assert "cache counters" in text
        assert "query_hit" in text and "bloom_supp" in text
        assert "remote work messages" in text
        # The repeated script must actually save remote work.
        assert "0 saved" not in text

    def test_via_main(self, capsys):
        assert main(["cache-stats", "-n", "2", "--objects", "60"]) == 0
        assert "uncached" in capsys.readouterr().out


class TestQoSStats:
    def test_counters_and_protection(self):
        from repro.cli import run_qos_stats

        out = io.StringIO()
        assert run_qos_stats(n_objects=60, n_queries=4, out=out) == 0
        text = out.getvalue()
        assert "qos counters" in text
        assert "bp_trans" in text and "throttled" in text
        # The burst overruns both tenants' buckets deterministically
        # (every arrival lands at virtual t=0, tokens refill at 0.2/s).
        assert "2 interactive + 2 batch bounced" in text
        assert "shed partials:" in text
        assert "termination credit: exact" in text
        assert "LEAKED" not in text

    def test_via_main(self, capsys):
        assert main(["qos-stats", "-n", "3", "--objects", "60"]) == 0
        assert "with qos" in capsys.readouterr().out
