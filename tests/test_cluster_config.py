"""ClusterConfig consolidation + transport registry contract tests.

Two API-surface guarantees live here: (1) the legacy per-subsystem
kwargs (``batching=``, ``caching=``, ``replication=``, ``qos=``) build
EXACTLY the same deployment as the equivalent ``ClusterConfig`` — they
warn, but they cannot drift; (2) the transport registry resolves names
uniformly for the facade, ``make_cluster`` and third-party factories.
"""

import warnings

import pytest

from repro.api import make_cluster, register_transport, transport_factory, transport_names
from repro.cache import CacheConfig
from repro.client import HyperFile
from repro.cluster import SimCluster
from repro.config import DEPRECATED_KWARGS, ClusterConfig, resolve_config
from repro.net.batching import BatchConfig
from repro.qos import QoSConfig
from repro.replication import ReplicationConfig

LEGACY = dict(
    batching=BatchConfig(max_batch=4),
    caching=CacheConfig(),
    replication=ReplicationConfig(k=2),
    qos=QoSConfig(),
)


class TestResolveConfig:
    def test_defaults_resolve_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            config = resolve_config(None, owner="X")
        assert config == ClusterConfig()

    @pytest.mark.parametrize("name", DEPRECATED_KWARGS)
    def test_each_legacy_kwarg_warns_and_lands_in_the_config(self, name):
        with pytest.warns(DeprecationWarning, match=f"{name}=.*deprecated"):
            config = resolve_config(None, owner="X", **{name: LEGACY[name]})
        assert getattr(config, name) == LEGACY[name]

    def test_config_plus_clashing_legacy_kwarg_is_an_error(self):
        with pytest.raises(ValueError, match="both config= and legacy kwarg"):
            resolve_config(ClusterConfig(), owner="X", qos=QoSConfig())

    def test_config_plus_default_legacy_kwargs_is_fine(self):
        config = ClusterConfig(qos=QoSConfig())
        assert resolve_config(config, owner="X", batching=None, qos=None) is config


class TestAliasParity:
    """legacy kwargs ≡ config= — same resulting deployment, field by field."""

    def test_facade_parity(self):
        with pytest.warns(DeprecationWarning):
            via_kwargs = HyperFile(sites=2, **LEGACY)
        via_config = HyperFile(sites=2, config=ClusterConfig(**LEGACY))
        assert via_kwargs.config == via_config.config
        for hf in (via_kwargs, via_config):
            assert hf.cluster.replication is not None
            assert hf.cluster.replication.config.k == 2
            hf.close()

    def test_simulator_parity(self):
        with pytest.warns(DeprecationWarning):
            via_kwargs = SimCluster(3, **LEGACY)
        via_config = SimCluster(3, config=ClusterConfig(**LEGACY))
        assert via_kwargs.config == via_config.config

    @pytest.mark.parametrize("transport", ["threaded", "sockets", "async"])
    def test_wall_clock_parity(self, transport):
        legacy = dict(batching=BatchConfig(max_batch=4), qos=QoSConfig())
        factory = transport_factory(transport)
        with pytest.warns(DeprecationWarning):
            via_kwargs = factory(2, **legacy)
        try:
            via_config = factory(2, config=ClusterConfig(**legacy))
        except Exception:
            via_kwargs.close()
            raise
        try:
            assert via_kwargs.config == via_config.config
        finally:
            via_kwargs.close()
            via_config.close()

    def test_facade_rejects_config_plus_legacy(self):
        with pytest.raises(ValueError, match="both config= and legacy kwarg"):
            HyperFile(sites=2, config=ClusterConfig(), qos=QoSConfig())


class TestTransportRegistry:
    def test_builtins_are_registered(self):
        assert set(transport_names()) >= {"sim", "threaded", "sockets", "async"}

    def test_names_are_sorted(self):
        assert transport_names() == sorted(transport_names())

    def test_unknown_name_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="unknown transport 'teleport'"):
            transport_factory("teleport")

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            register_transport("", lambda sites=3, **kw: None)
        with pytest.raises(ValueError, match="identifier"):
            register_transport("has spaces", lambda sites=3, **kw: None)

    def test_duplicate_registration_needs_replace(self):
        def factory(sites=3, **kwargs):
            return SimCluster(sites, **kwargs)

        register_transport("_test_dup", factory)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_transport("_test_dup", factory)
            register_transport("_test_dup", factory, replace=True)
        finally:
            from repro import api

            api._TRANSPORTS.pop("_test_dup", None)

    def test_third_party_transport_reaches_the_facade(self):
        calls = []

        def factory(sites=3, **kwargs):
            calls.append(sites)
            return SimCluster(sites, **kwargs)

        register_transport("_test_custom", factory)
        try:
            hf = HyperFile(sites=4, transport="_test_custom")
            assert calls == [4]
            assert isinstance(hf.cluster, SimCluster)
            hf.close()
            cluster = make_cluster("_test_custom", 2)
            assert calls == [4, 2]
            cluster.close()
        finally:
            from repro import api

            api._TRANSPORTS.pop("_test_custom", None)

    def test_facade_snapshot_matches_registry(self):
        from repro.client.api import TRANSPORTS

        assert set(TRANSPORTS) <= set(transport_names())
