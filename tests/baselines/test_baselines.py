"""Tests for the centralized and file-server comparators (paper §1, §5)."""

import pytest

from repro.baselines.centralized import centralized_cluster, run_centralized, union_fetcher
from repro.baselines.fileserver import FileServerBaseline, FileServerCosts
from repro.cluster import SimCluster
from repro.core.oid import Oid
from repro.core.program import compile_query
from repro.errors import ObjectNotFound
from repro.sim.costs import PAPER_COSTS
from repro.storage.memstore import MemStore
from repro.workload import WorkloadSpec, build_graph, closure_query, generate_into_cluster, materialize


@pytest.fixture(scope="module")
def setup():
    spec = WorkloadSpec(n_objects=90)
    graph = build_graph(n=90)
    store = MemStore("solo")
    workload = materialize(spec, [store], graph=graph)
    program = compile_query(closure_query("Tree", "Rand10p", 5))
    return spec, graph, store, workload, program


class TestCentralized:
    def test_analytic_time_matches_simulated_single_site(self, setup):
        spec, graph, store, workload, program = setup
        analytic = run_centralized(program, [workload.root], store.get)
        cluster = SimCluster(1)
        w1 = generate_into_cluster(cluster, spec, graph)
        simulated = cluster.run_query(program, [w1.root])
        assert analytic.response_time_s == pytest.approx(simulated.response_time, rel=0.02)

    def test_cost_formula(self, setup):
        _, _, store, workload, program = setup
        run = run_centralized(program, [workload.root], store.get)
        stats = run.result.stats
        expected = (
            stats.objects_processed * PAPER_COSTS.object_process_s
            + stats.results_added * PAPER_COSTS.result_insert_s
            + (stats.objects_skipped_marked + stats.objects_missing) * PAPER_COSTS.mark_check_s
        )
        assert run.response_time_s == pytest.approx(expected)

    def test_union_fetcher_spans_sites(self):
        s0, s1 = MemStore("s0"), MemStore("s1")
        a = s0.create([])
        b = s1.create([])
        fetch = union_fetcher([s0, s1])
        assert fetch(a.oid).oid == a.oid
        assert fetch(b.oid).oid == b.oid
        with pytest.raises(ObjectNotFound):
            fetch(Oid("s0", 99))

    def test_centralized_cluster_helper(self):
        cluster = centralized_cluster()
        assert cluster.sites == ["site0"]


class TestFileServer:
    def test_same_results_as_server_side_filtering(self, setup):
        _, _, store, workload, program = setup
        run = FileServerBaseline([store]).run(program, [workload.root])
        reference = run_centralized(program, [workload.root], store.get)
        assert run.result.oid_keys() == reference.result.oid_keys()

    def test_much_slower_than_hyperfile(self, setup):
        # The paper's motivating claim: shipping whole objects loses badly
        # to shipping ~40-byte queries.
        _, _, store, workload, program = setup
        fs = FileServerBaseline([store]).run(program, [workload.root])
        hf = run_centralized(program, [workload.root], store.get)
        assert fs.response_time_s > 3 * hf.response_time_s
        assert fs.bytes_transferred > 90 * 1024  # ~2 KiB x 90 objects

    def test_cache_avoids_refetches(self):
        # An object admitted at two different filter positions is fetched
        # twice without a cache, once with it.
        from repro.core.parser import parse_query
        from repro.core.tuples import keyword_tuple, pointer_tuple

        store = MemStore("s1")
        shared = store.create([keyword_tuple("Late")])
        seed = store.create(
            [
                keyword_tuple("Early"),
                pointer_tuple("Ref", shared.oid),
            ]
        )
        program = compile_query(
            parse_query('S (Keyword,"Early",?) (Pointer,"Ref",?X) ^^X (Keyword,"Late",?) -> T')
        )
        initial = [shared.oid, seed.oid]  # shared seen at F1 (fails) then at F4
        cached = FileServerBaseline([store], cache=True).run(program, initial)
        uncached = FileServerBaseline([store], cache=False).run(program, initial)
        assert uncached.fetches == 3  # shared fetched twice
        assert cached.fetches == 2
        assert cached.cache_hits == 1
        assert uncached.cache_hits == 0
        assert uncached.response_time_s >= cached.response_time_s

    def test_bandwidth_matters(self, setup):
        _, _, store, workload, program = setup
        slow = FileServerBaseline(
            [store], costs=FileServerCosts(bandwidth_bytes_per_s=10_000.0)
        ).run(program, [workload.root])
        fast = FileServerBaseline(
            [store], costs=FileServerCosts(bandwidth_bytes_per_s=1e9)
        ).run(program, [workload.root])
        assert slow.response_time_s > fast.response_time_s

    def test_missing_object_counted_as_partial(self, setup):
        # Same partial-result policy as the server engine: a dangling
        # reference is recorded, not fatal.
        _, _, store, _, program = setup
        run = FileServerBaseline([store]).run(program, [Oid("nowhere", 1)])
        assert run.result.stats.objects_missing == 1
        assert len(run.result.oids) == 0
