"""Tests for the fragment cache and suffix-canonical keys."""

from repro.cache.config import CacheConfig
from repro.cache.fragments import (
    FragmentCache,
    FragmentEntry,
    program_suffix_hash,
    suffix_info,
)
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.server.stats import NodeStats


def prog(text):
    return compile_query(parse_query(text))


CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def entry(epoch=0, **kwargs):
    defaults = dict(missing=False, passed=True, marks=(1,), spawned=(), emissions=())
    defaults.update(kwargs)
    return FragmentEntry(epoch=epoch, **defaults)


class TestSuffixHash:
    def test_same_program_same_start_is_stable(self):
        p = prog(CLOSURE)
        assert suffix_info(p, 1) == suffix_info(p, 1)

    def test_different_start_different_hash(self):
        p = prog(CLOSURE)
        assert program_suffix_hash(p, 1) != program_suffix_hash(p, p.size)

    def test_shared_suffix_across_programs(self):
        # Same trailing selection, different leading selection: an item
        # entering at the shared tail gets the same key in both programs.
        a = prog('S (Keyword,"A",?) (Keyword,"K",?) -> T')
        b = prog('S (Keyword,"B",?) (Keyword,"K",?) -> T')
        assert program_suffix_hash(a, 1) != program_suffix_hash(b, 1)
        assert suffix_info(a, 2)[0] == suffix_info(b, 2)[0]

    def test_loop_extends_window_backwards(self):
        # Inside a closure the window snaps back to the loop start: an
        # item at the dereference still sees (and hashes) the whole loop.
        p = prog(CLOSURE)
        digest_mid, lo = suffix_info(p, 2)
        assert lo == 1  # pulled back to the loop start
        assert digest_mid != program_suffix_hash(p, 1)  # start still matters

    def test_search_value_changes_hash(self):
        a = prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T')
        b = prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"Q",?) -> T')
        assert program_suffix_hash(a, 1) != program_suffix_hash(b, 1)


class TestFragmentCache:
    def test_lookup_miss_then_hit(self):
        stats = NodeStats()
        cache = FragmentCache(max_entries=8, max_bytes=1 << 20, stats=stats)
        assert cache.lookup(("k",), epoch=0) is None
        cache.store(("k",), entry())
        got = cache.lookup(("k",), epoch=0)
        assert got is not None and got.passed
        assert stats.cache_misses == 1 and stats.cache_hits == 1

    def test_epoch_mismatch_drops_entry(self):
        stats = NodeStats()
        cache = FragmentCache(max_entries=8, max_bytes=1 << 20, stats=stats)
        cache.store(("k",), entry(epoch=0))
        # The store mutated since: the entry is dropped, not served.
        assert cache.lookup(("k",), epoch=1) is None
        assert len(cache) == 0
        assert stats.cache_hits == 0

    def test_lru_entry_budget(self):
        cache = FragmentCache(max_entries=2, max_bytes=1 << 20)
        cache.store(("a",), entry())
        cache.store(("b",), entry())
        cache.lookup(("a",), epoch=0)  # refresh a
        cache.store(("c",), entry())  # evicts b, the least recent
        assert cache.lookup(("b",), epoch=0) is None
        assert cache.lookup(("a",), epoch=0) is not None
        assert cache.lookup(("c",), epoch=0) is not None

    def test_byte_budget_bounds_size(self):
        stats = NodeStats()
        big = entry(emissions=(("T", "x" * 400),))
        cache = FragmentCache(max_entries=1000, max_bytes=3 * big.nbytes, stats=stats)
        for i in range(10):
            cache.store((i,), entry(emissions=(("T", "x" * 400),)))
        assert cache.size_bytes <= 3 * big.nbytes
        assert len(cache) <= 3
        assert stats.cache_evictions >= 7

    def test_restore_same_key_replaces(self):
        cache = FragmentCache(max_entries=8, max_bytes=1 << 20)
        cache.store(("k",), entry(epoch=0))
        cache.store(("k",), entry(epoch=1))
        assert len(cache) == 1
        assert cache.lookup(("k",), epoch=1) is not None

    def test_clear(self):
        cache = FragmentCache(max_entries=8, max_bytes=1 << 20)
        cache.store(("k",), entry())
        cache.clear()
        assert len(cache) == 0 and cache.size_bytes == 0


class TestCacheConfig:
    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            CacheConfig(max_entries=0)
        with pytest.raises(ValueError):
            CacheConfig(bloom_bits=100)  # not a multiple of 8
        with pytest.raises(ValueError):
            CacheConfig(bloom_hashes=0)

    def test_enabled_flag(self):
        assert CacheConfig().enabled
        assert not CacheConfig(fragments=False, query_cache=False, summaries=False).enabled
