"""Tests for the Bloom filters behind site summaries (repro.cache.bloom)."""

import pytest

from repro.cache.bloom import BloomFilter, oid_token


class TestBloomFilter:
    def test_no_false_negatives_ever(self):
        bloom = BloomFilter(bits=256, hashes=3)
        tokens = [oid_token(("site0", i)) for i in range(100)]
        for token in tokens:
            bloom.add(token)
        # The one guarantee everything else rests on: an added token is
        # always reported present, however overloaded the filter gets.
        assert all(bloom.might_contain(t) for t in tokens)

    def test_absent_tokens_mostly_rejected(self):
        bloom = BloomFilter(bits=4096, hashes=4)
        for i in range(50):
            bloom.add(oid_token(("site0", i)))
        misses = sum(
            1 for i in range(1000) if not bloom.might_contain(oid_token(("site9", i)))
        )
        # At this load factor the false-positive rate is far below 10%.
        assert misses > 900

    def test_round_trip_bytes(self):
        bloom = BloomFilter(bits=128, hashes=2)
        bloom.add("a:1")
        bloom.add("b:2")
        clone = BloomFilter.from_bytes(bloom.to_bytes(), hashes=2, count=bloom.count)
        assert clone == bloom
        assert clone.might_contain("a:1")
        assert len(bloom.to_bytes()) == bloom.wire_size() == 16

    def test_stable_across_instances(self):
        # blake2b-based positions, not hash(): two filters built the same
        # way are bit-identical (they travel over sockets).
        a = BloomFilter(bits=512, hashes=3)
        b = BloomFilter(bits=512, hashes=3)
        for token in ("x:1", "y:2", "z:3"):
            a.add(token)
            b.add(token)
        assert a.to_bytes() == b.to_bytes()

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=12, hashes=2)  # not a multiple of 8
        with pytest.raises(ValueError):
            BloomFilter(bits=0, hashes=2)
        with pytest.raises(ValueError):
            BloomFilter(bits=64, hashes=0)

    def test_oid_token_is_site_and_seq(self):
        assert oid_token(("alpha", 17)) == "alpha:17"
