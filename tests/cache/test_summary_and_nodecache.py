"""Tests for site summaries and the per-node cache state machine."""

from repro.cache import CacheConfig, NodeCache, build_summary
from repro.cache.bloom import oid_token
from repro.core.oid import Oid
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.engine.items import WorkItem
from repro.naming.directory import ForwardingTable
from repro.net.messages import QueryId
from repro.server.stats import NodeStats
from repro.storage.memstore import MemStore

QID = QueryId(1, "site0")
CONFIG = CacheConfig(bloom_bits=2048, bloom_hashes=3)


def populated_store(site="site1", n=5, pointer_key="Ref"):
    """A store of ``n`` keyworded objects where only even ones point."""
    store = MemStore(site)
    oids = [store.create([keyword_tuple("K")]).oid for _ in range(n)]
    for i in range(0, n - 1, 2):
        store.replace(
            store.get(oids[i]).with_tuple(pointer_tuple(pointer_key, oids[i + 1]))
        )
    return store, oids


class TestBuildSummary:
    def test_holdings_cover_store(self):
        store, oids = populated_store()
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",), CONFIG
        )
        assert summary.site == "site1"
        assert summary.forward_count == 0
        for oid in oids:
            assert summary.holdings.might_contain(oid_token(oid.key()))

    def test_reach_filter_separates_leaves(self):
        store, oids = populated_store(n=5)
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",), CONFIG
        )
        reach = summary.reach["Ref"]
        assert reach.might_contain(oid_token(oids[0].key()))  # has a pointer
        # oids[1] is a pure leaf; with 2048 bits and 3 tokens added the
        # false-positive probability is negligible.
        assert not reach.might_contain(oid_token(oids[1].key()))

    def test_forwarded_objects_stay_in_holdings(self):
        store, oids = populated_store()
        table = ForwardingTable("site1")
        gone = store.remove(oids[2])
        table.record(gone.oid, "site2")
        summary = build_summary(
            "site1", store.epoch, store, table, (), CONFIG
        )
        assert summary.forward_count == 1
        assert summary.holdings.might_contain(oid_token(oids[2].key()))

    def test_alloc_high_tracks_minted_ids(self):
        store, oids = populated_store(n=5)
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), (), CONFIG
        )
        assert summary.alloc_high == 5
        # Removal frees the id forever; the mark never moves back down.
        store.remove(oids[4])
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), (), CONFIG
        )
        assert summary.alloc_high == 5

    def test_wire_size_counts_filters(self):
        store, _ = populated_store()
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",), CONFIG
        )
        assert summary.wire_size() >= 2 * (CONFIG.bloom_bits // 8)


class TestNodeCacheSummaries:
    def make(self, site="site0"):
        return NodeCache(site, CONFIG, NodeStats())

    def summary_of(self, store, keys=("Ref",), forwarding=None):
        return build_summary(
            store.site,
            store.epoch,
            store,
            forwarding or ForwardingTable(store.site),
            keys,
            CONFIG,
        )

    def test_record_and_lookup(self):
        cache = self.make()
        store, _ = populated_store()
        summary = self.summary_of(store)
        cache.record_summary(summary)
        assert cache.summary_for("site1") is summary
        assert cache.stats.summaries_received == 1

    def test_newer_epoch_invalidates_summary(self):
        cache = self.make()
        store, _ = populated_store()
        summary = self.summary_of(store)
        cache.record_summary(summary)
        store.create([keyword_tuple("K")])  # bump the peer's epoch...
        cache.observe_epoch("site1", store.epoch)  # ...and observe it
        assert cache.summary_for("site1") is None

    def test_stale_summary_not_recorded(self):
        cache = self.make()
        store, _ = populated_store()
        stale = self.summary_of(store)
        store.create([keyword_tuple("K")])
        cache.observe_epoch("site1", store.epoch)
        cache.record_summary(stale)  # arrives after the newer epoch
        assert cache.summary_for("site1") is None


class TestSuppression:
    def setup_peer(self, cache, n=5):
        store, oids = populated_store("site1", n=n)
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",), CONFIG
        )
        cache.record_summary(summary)
        # An envelope from site1 during this query vouches for the epoch.
        cache.confirm_epoch(QID, "site1", store.epoch)
        return store, oids

    def test_destroyed_oid_suppressed_without_confirmation(self):
        # Rule A is monotone: a destroyed object (id below the summary's
        # allocation mark, absent from holdings, never forwarded) can
        # never exist again, so no same-query epoch witness is needed.
        cache = NodeCache("site0", CONFIG, NodeStats())
        store, oids = populated_store("site1")
        store.remove(oids[4])
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",), CONFIG
        )
        cache.record_summary(summary)
        ghost = WorkItem(oid=oids[4], start=1)
        assert cache.should_suppress(QID, "site1", ghost, None)

    def test_never_minted_id_not_suppressed_unconfirmed(self):
        # An id at or above the allocation mark is outside the summary's
        # testimony — the site may have created it since the snapshot —
        # so without a same-query epoch witness nothing may suppress it.
        cache = NodeCache("site0", CONFIG, NodeStats())
        store, _ = populated_store("site1")
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",), CONFIG
        )
        cache.record_summary(summary)
        future = WorkItem(oid=Oid("site1", 999), start=1)
        assert not cache.should_suppress(QID, "site1", future, None)
        assert not cache.should_suppress(QID, "site1", future, "Ref")
        # With the epoch confirmed this query, the store provably hasn't
        # changed since the snapshot, and rule B may fire after all.
        cache.confirm_epoch(QID, "site1", store.epoch)
        assert cache.should_suppress(QID, "site1", future, "Ref")

    def test_held_oid_not_suppressed(self):
        cache = NodeCache("site0", CONFIG, NodeStats())
        _, oids = self.setup_peer(cache)
        item = WorkItem(oid=oids[0], start=1)
        assert not cache.should_suppress(QID, "site1", item, None)

    def test_leaf_suppressed_only_for_closure_key(self):
        cache = NodeCache("site0", CONFIG, NodeStats())
        _, oids = self.setup_peer(cache)
        leaf = WorkItem(oid=oids[1], start=1)  # held, but no outgoing Ref
        assert cache.should_suppress(QID, "site1", leaf, "Ref")
        # Without a closure pointer key rule B cannot apply.
        assert not cache.should_suppress(QID, "site1", leaf, None)
        # An unknown pointer key has no reach filter: no suppression.
        assert not cache.should_suppress(QID, "site1", leaf, "Other")

    def test_non_birth_site_never_suppressed(self):
        cache = NodeCache("site0", CONFIG, NodeStats())
        self.setup_peer(cache)
        migrant = WorkItem(
            oid=Oid(
                "site2", 1, presumed_site="site1"
            ),
            start=1,
        )
        assert not cache.should_suppress(QID, "site1", migrant, "Ref")

    def test_forwarding_site_never_suppressed(self):
        cache = NodeCache("site0", CONFIG, NodeStats())
        store, oids = populated_store("site1")
        table = ForwardingTable("site1")
        gone = store.remove(oids[0])
        table.record(gone.oid, "site2")
        summary = build_summary(
            "site1", store.epoch, store, table, ("Ref",), CONFIG
        )
        cache.record_summary(summary)
        cache.confirm_epoch(QID, "site1", store.epoch)
        ghost = WorkItem(oid=oids[2], start=1)  # removed *and* forwarded
        assert not cache.should_suppress(QID, "site1", ghost, "Ref")

    def test_no_summary_no_suppression(self):
        cache = NodeCache("site0", CONFIG, NodeStats())
        item = WorkItem(oid=Oid("site1", 1), start=1)
        assert not cache.should_suppress(QID, "site1", item, "Ref")

    def test_summaries_disabled_no_suppression(self):
        config = CacheConfig(summaries=False)
        cache = NodeCache("site0", config, NodeStats())
        store, _ = populated_store("site1")
        # With summaries off nothing is recorded and nothing suppressed.
        item = WorkItem(oid=Oid("site1", 999), start=1)
        assert not cache.should_suppress(QID, "site1", item, "Ref")

    def test_leaf_rule_requires_same_query_confirmation(self):
        # Rule B is not monotone (replace() can grow a leaf pointers), so
        # a summary alone is not enough: without a same-query envelope
        # witnessing the peer's epoch, the leaf may have sprouted since.
        cache = NodeCache("site0", CONFIG, NodeStats())
        store, oids = populated_store("site1")
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",), CONFIG
        )
        cache.record_summary(summary)
        leaf = WorkItem(oid=oids[1], start=1)
        assert not cache.should_suppress(QID, "site1", leaf, "Ref")
        # A witness from a *different* query does not vouch for this one.
        other = QueryId(2, "site0")
        cache.confirm_epoch(other, "site1", store.epoch)
        assert not cache.should_suppress(QID, "site1", leaf, "Ref")
        cache.confirm_epoch(QID, "site1", store.epoch)
        assert cache.should_suppress(QID, "site1", leaf, "Ref")

    def test_confirmation_cleared_when_query_ends(self):
        cache = NodeCache("site0", CONFIG, NodeStats())
        store, oids = populated_store("site1")
        summary = build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",), CONFIG
        )
        cache.record_summary(summary)
        cache.confirm_epoch(QID, "site1", store.epoch)
        leaf = WorkItem(oid=oids[1], start=1)
        assert cache.should_suppress(QID, "site1", leaf, "Ref")
        cache.drop_query(QID)
        # The next run of the same query id needs a fresh witness.
        assert not cache.should_suppress(QID, "site1", leaf, "Ref")


class TestQueryCache:
    def test_footprint_validates_epochs(self):
        from repro.core.parser import parse_query
        from repro.core.program import compile_query

        cache = NodeCache("site0", CONFIG, NodeStats())
        program = compile_query(parse_query('S (Keyword,"K",?) -> T'))
        store, oids = populated_store("site0")
        key = cache.query_key(program, (WorkItem(oid=oids[0], start=1),))
        cache.begin_query(QID)
        cache.note_result_dep(QID, "site1", 4)
        cache.store_query(QID, key, store.epoch, (oids[0],), ())
        cache.observe_epoch("site1", 4)
        hit = cache.lookup_query(key, store.epoch)
        assert hit is not None and hit.oids == (oids[0],)
        # Local epoch moved: the entry is dropped.
        assert cache.lookup_query(key, store.epoch + 1) is None
        assert cache.lookup_query(key, store.epoch) is None

    def test_dependency_epoch_invalidates(self):
        from repro.core.parser import parse_query
        from repro.core.program import compile_query

        cache = NodeCache("site0", CONFIG, NodeStats())
        program = compile_query(parse_query('S (Keyword,"K",?) -> T'))
        store, oids = populated_store("site0")
        key = cache.query_key(program, (WorkItem(oid=oids[0], start=1),))
        cache.begin_query(QID)
        cache.note_result_dep(QID, "site1", 4)
        cache.store_query(QID, key, store.epoch, (oids[0],), ())
        cache.observe_epoch("site1", 4)
        assert cache.lookup_query(key, store.epoch) is not None
        cache.observe_epoch("site1", 5)  # the peer mutated
        assert cache.lookup_query(key, store.epoch) is None

    def test_poisoned_footprint_not_cached(self):
        from repro.core.parser import parse_query
        from repro.core.program import compile_query

        cache = NodeCache("site0", CONFIG, NodeStats())
        program = compile_query(parse_query('S (Keyword,"K",?) -> T'))
        store, oids = populated_store("site0")
        key = cache.query_key(program, (WorkItem(oid=oids[0], start=1),))
        cache.begin_query(QID)
        cache.note_result_dep(QID, "site1", 4)
        cache.note_result_dep(QID, "site1", 5)  # ambiguous mid-query epoch
        cache.store_query(QID, key, store.epoch, (oids[0],), ())
        cache.observe_epoch("site1", 5)
        assert cache.lookup_query(key, store.epoch) is None

    def test_seed_order_matters(self):
        from repro.core.parser import parse_query
        from repro.core.program import compile_query

        cache = NodeCache("site0", CONFIG, NodeStats())
        program = compile_query(parse_query('S (Keyword,"K",?) -> T'))
        _, oids = populated_store("site0")
        a = WorkItem(oid=oids[0], start=1)
        b = WorkItem(oid=oids[1], start=1)
        assert cache.query_key(program, (a, b)) != cache.query_key(program, (b, a))
