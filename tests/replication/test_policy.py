"""Placement policy: deterministic, primary-anchored, spread backups."""

import pytest

from repro.core.oid import Oid
from repro.replication import ReplicationConfig, RingPlacement

SITES = ["site0", "site1", "site2", "site3"]


def oid(n=1, site="site0"):
    return Oid(birth_site=site, local_id=n, presumed_site=site)


class TestRingPlacement:
    def test_primary_is_the_birth_site(self):
        placement = RingPlacement().place(oid(site="site2"), SITES, 2)
        assert placement[0] == "site2"
        assert len(placement) == 2

    def test_placement_is_deterministic(self):
        policy = RingPlacement()
        assert policy.place(oid(7), SITES, 3) == policy.place(oid(7), SITES, 3)

    def test_holders_are_distinct(self):
        for n in range(20):
            placement = RingPlacement().place(oid(n), SITES, 3)
            assert len(set(placement)) == len(placement) == 3

    def test_k_clamped_to_site_count(self):
        placement = RingPlacement().place(oid(), ["site0", "site1"], 5)
        assert set(placement) == {"site0", "site1"}

    def test_unknown_birth_site_falls_back_to_first(self):
        placement = RingPlacement().place(oid(site="gone"), ["site0", "site1"], 2)
        assert placement[0] == "site0"

    def test_empty_site_list_rejected(self):
        with pytest.raises(ValueError):
            RingPlacement().place(oid(), [], 2)

    def test_backups_spread_over_the_ring(self):
        """The hash-anchored ring start must not pile every backup onto
        one neighbour: across many objects each non-primary site gets a
        share of site0's backups."""
        backups = [RingPlacement().place(oid(n), SITES, 2)[1] for n in range(60)]
        counts = {site: backups.count(site) for site in SITES[1:]}
        assert all(count > 0 for count in counts.values()), counts


class TestPlacementStability:
    """Rendezvous placement under membership change: a departure only
    re-places the objects that listed the departed site, and a join
    steals a bounded share — the earlier modulo ring failed both (one
    departure shifted the ring start for nearly every object)."""

    OIDS = [oid(n, site=SITES[n % len(SITES)]) for n in range(120)]

    def test_leave_moves_only_objects_that_listed_the_leaver(self):
        policy = RingPlacement()
        before = {o.key(): policy.place(o, SITES, 2) for o in self.OIDS}
        survivors = [s for s in SITES if s != "site3"]
        after = {o.key(): policy.place(o, survivors, 2) for o in self.OIDS}
        for o in self.OIDS:
            if "site3" not in before[o.key()]:
                assert after[o.key()] == before[o.key()], o.key()
            else:
                assert "site3" not in after[o.key()]

    def test_join_steals_a_bounded_backup_share(self):
        policy = RingPlacement()
        grown = SITES + ["site4"]
        before = {o.key(): policy.place(o, SITES, 2) for o in self.OIDS}
        after = {o.key(): policy.place(o, grown, 2) for o in self.OIDS}
        moved = sum(1 for o in self.OIDS if after[o.key()] != before[o.key()])
        # Expected steal is (k-1)/n = 1/5 of placements; allow slack for
        # hash variance but fail on anything like a global reshuffle.
        assert moved <= len(self.OIDS) // 2, moved
        # ... and the new site actually takes a share.
        assert any("site4" in after[o.key()] for o in self.OIDS)

    def test_join_never_moves_a_primary(self):
        policy = RingPlacement()
        grown = SITES + ["site4"]
        for o in self.OIDS:
            assert (
                policy.place(o, grown, 2)[0] == policy.place(o, SITES, 2)[0]
            )


class TestReplicationConfig:
    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError):
            ReplicationConfig(k=0)

    def test_k1_is_disabled(self):
        assert not ReplicationConfig(k=1).enabled

    def test_k2_is_enabled_and_default(self):
        config = ReplicationConfig()
        assert config.k == 2 and config.enabled
