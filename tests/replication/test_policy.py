"""Placement policy: deterministic, primary-anchored, spread backups."""

import pytest

from repro.core.oid import Oid
from repro.replication import ReplicationConfig, RingPlacement

SITES = ["site0", "site1", "site2", "site3"]


def oid(n=1, site="site0"):
    return Oid(birth_site=site, local_id=n, presumed_site=site)


class TestRingPlacement:
    def test_primary_is_the_birth_site(self):
        placement = RingPlacement().place(oid(site="site2"), SITES, 2)
        assert placement[0] == "site2"
        assert len(placement) == 2

    def test_placement_is_deterministic(self):
        policy = RingPlacement()
        assert policy.place(oid(7), SITES, 3) == policy.place(oid(7), SITES, 3)

    def test_holders_are_distinct(self):
        for n in range(20):
            placement = RingPlacement().place(oid(n), SITES, 3)
            assert len(set(placement)) == len(placement) == 3

    def test_k_clamped_to_site_count(self):
        placement = RingPlacement().place(oid(), ["site0", "site1"], 5)
        assert set(placement) == {"site0", "site1"}

    def test_unknown_birth_site_falls_back_to_first(self):
        placement = RingPlacement().place(oid(site="gone"), ["site0", "site1"], 2)
        assert placement[0] == "site0"

    def test_empty_site_list_rejected(self):
        with pytest.raises(ValueError):
            RingPlacement().place(oid(), [], 2)

    def test_backups_spread_over_the_ring(self):
        """The hash-anchored ring start must not pile every backup onto
        one neighbour: across many objects each non-primary site gets a
        share of site0's backups."""
        backups = [RingPlacement().place(oid(n), SITES, 2)[1] for n in range(60)]
        counts = {site: backups.count(site) for site in SITES[1:]}
        assert all(count > 0 for count in counts.values()), counts


class TestReplicationConfig:
    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError):
            ReplicationConfig(k=0)

    def test_k1_is_disabled(self):
        assert not ReplicationConfig(k=1).enabled

    def test_k2_is_enabled_and_default(self):
        config = ReplicationConfig()
        assert config.k == 2 and config.enabled
