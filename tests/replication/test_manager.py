"""Write-through replica maintenance: install, fan out, migrate."""

import pytest

from repro.core.tuples import keyword_tuple, string_tuple
from repro.errors import ObjectNotFound
from repro.naming.directory import ForwardingTable, ReplicaDirectory
from repro.replication import ReplicationConfig, ReplicationManager
from repro.storage.memstore import MemStore

SITES = ("site0", "site1", "site2")


def make_manager(k=2):
    stores = {site: MemStore(site) for site in SITES}
    forwarding = {site: ForwardingTable(site) for site in SITES}
    manager = ReplicationManager(
        ReplicationConfig(k=k), stores, forwarding, ReplicaDirectory()
    )
    return manager, stores


class TestReplicate:
    def test_installs_k_copies_and_records_holders(self):
        manager, stores = make_manager(k=2)
        obj = stores["site1"].create([keyword_tuple("K")])
        placement = manager.replicate(obj.oid)
        assert placement[0] == "site1" and len(placement) == 2
        for site in placement:
            assert stores[site].contains(obj.oid)
        assert manager.directory.sites_of(obj.oid) == placement
        assert manager.copies_installed == 1

    def test_replicate_is_idempotent(self):
        manager, stores = make_manager(k=2)
        obj = stores["site0"].create([keyword_tuple("K")])
        manager.replicate(obj.oid)
        manager.directory.bump_version(obj.oid)
        placement = manager.replicate(obj.oid)
        assert manager.copies_installed == 1  # nothing re-copied
        assert manager.directory.version_of(obj.oid) == 2  # version kept
        assert manager.directory.sites_of(obj.oid) == placement

    def test_k1_records_nothing(self):
        manager, stores = make_manager(k=1)
        obj = stores["site0"].create([keyword_tuple("K")])
        assert manager.replicate(obj.oid) == ()
        assert len(manager.directory) == 0
        assert manager.replicate_all() == 0

    def test_replicate_all_places_every_object_once(self):
        manager, stores = make_manager(k=2)
        for site in SITES:
            stores[site].create([keyword_tuple("K")])
        assert manager.replicate_all() == 3
        assert len(manager.directory) == 3

    def test_missing_object_raises(self):
        manager, stores = make_manager(k=2)
        obj = stores["site0"].create([])
        stores["site0"].remove(obj.oid)
        with pytest.raises(ObjectNotFound):
            manager.replicate(obj.oid)


class TestWriteThrough:
    def test_apply_updates_every_holder_and_bumps_the_version(self):
        manager, stores = make_manager(k=3)
        obj = stores["site0"].create([string_tuple("Title", "old")])
        manager.replicate(obj.oid)
        manager.apply(obj.oid, lambda o: o.with_tuple(string_tuple("Rev", "new")))
        for site in manager.directory.sites_of(obj.oid):
            stored = stores[site].get(obj.oid)
            assert any(t.key == "Rev" for t in stored.tuples)
        assert manager.directory.version_of(obj.oid) == 2
        assert manager.writes_fanned_out == 3

    def test_apply_to_unreplicated_object_writes_in_place(self):
        manager, stores = make_manager(k=2)
        obj = stores["site1"].create([string_tuple("Title", "old")])
        manager.apply(obj.oid, lambda o: o.with_tuple(string_tuple("Rev", "new")))
        assert any(t.key == "Rev" for t in stores["site1"].get(obj.oid).tuples)
        assert not stores["site0"].contains(obj.oid)

    def test_epoch_listeners_hear_every_fanned_out_write(self):
        manager, stores = make_manager(k=2)
        heard = []
        manager.add_epoch_listener(lambda site, epoch: heard.append((site, epoch)))
        obj = stores["site0"].create([keyword_tuple("K")])
        manager.replicate(obj.oid)
        heard.clear()
        manager.apply(obj.oid, lambda o: o.with_tuple(keyword_tuple("K2")))
        sites = {site for site, _ in heard}
        assert sites == set(manager.directory.sites_of(obj.oid))
        for site, epoch in heard:
            assert epoch == stores[site].epoch


class TestMigrate:
    def test_migrate_leads_with_the_new_primary(self):
        manager, stores = make_manager(k=2)
        obj = stores["site0"].create([keyword_tuple("K")])
        manager.replicate(obj.oid)
        moved = manager.migrate(obj.oid, "site2")
        sites = manager.directory.sites_of(moved)
        assert sites[0] == "site2" and len(sites) == 2
        assert stores["site2"].contains(moved)

    def test_sites_leaving_the_holder_set_record_forwards(self):
        manager, stores = make_manager(k=2)
        obj = stores["site0"].create([keyword_tuple("K")])
        old_sites = manager.replicate(obj.oid)
        moved = manager.migrate(obj.oid, "site2")
        new_sites = manager.directory.sites_of(moved)
        for site in old_sites:
            if site not in new_sites:
                assert not stores[site].contains(moved)
                assert manager.forwarding[site].lookup(moved) == "site2"

    def test_migration_counts_as_a_write(self):
        manager, stores = make_manager(k=2)
        obj = stores["site0"].create([keyword_tuple("K")])
        manager.replicate(obj.oid)
        manager.migrate(obj.oid, "site1")
        assert manager.directory.version_of(obj.oid) >= 2

    def test_unknown_destination_rejected(self):
        manager, stores = make_manager(k=2)
        obj = stores["site0"].create([keyword_tuple("K")])
        with pytest.raises(KeyError):
            manager.migrate(obj.oid, "nowhere")
