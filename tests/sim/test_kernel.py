"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import Simulator


class TestScheduling:
    def test_time_advances_to_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]
        assert sim.now == 1.5

    def test_order_by_time(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_events_may_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(0.5, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 1.5)]

    def test_zero_delay_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.0]


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        h.cancel()
        assert sim.pending == 1


class TestRunControls:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        final = sim.run(until=2.0)
        assert fired == [1] and final == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        sim.run(max_events=10)
        assert sim.events_fired == 10

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_empty_returns_current_time(self):
        sim = Simulator()
        assert sim.run() == 0.0
