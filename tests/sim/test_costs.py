"""Tests for the cost model calibration (paper §5 'basic times')."""

import pytest

from repro.sim.costs import FREE_COSTS, PAPER_COSTS, CostModel


class TestPaperConstants:
    def test_local_object_processing_is_8ms(self):
        assert PAPER_COSTS.object_process_s == pytest.approx(0.008)

    def test_result_insert_is_20ms(self):
        assert PAPER_COSTS.result_insert_s == pytest.approx(0.020)

    def test_remote_pointer_total_is_50ms(self):
        # "The added time to process a remote pointer was roughly 50 ms."
        assert PAPER_COSTS.remote_pointer_total_s == pytest.approx(0.050)

    def test_single_site_270_object_query_is_2_7s(self):
        # 270 objects x 8 ms + 27 results x 20 ms = 2.70 s — the paper's
        # single-site transitive-closure figure drops straight out.
        total = 270 * PAPER_COSTS.object_process_s + 27 * PAPER_COSTS.result_insert_s
        assert total == pytest.approx(2.70)


class TestModelOperations:
    def test_scaled_preserves_ratios(self):
        fast = PAPER_COSTS.scaled(0.5)
        assert fast.object_process_s == pytest.approx(0.004)
        assert fast.remote_pointer_total_s == pytest.approx(0.025)

    def test_with_overrides_single_field(self):
        tweaked = PAPER_COSTS.with_(result_item_s=0.001)
        assert tweaked.result_item_s == 0.001
        assert tweaked.object_process_s == PAPER_COSTS.object_process_s

    def test_free_costs_are_all_zero(self):
        assert FREE_COSTS.object_process_s == 0
        assert FREE_COSTS.remote_pointer_total_s == 0

    def test_model_is_immutable(self):
        with pytest.raises(AttributeError):
            PAPER_COSTS.object_process_s = 1.0  # type: ignore[misc]
