"""Property-based membership tests (hypothesis).

The membership contract, quantified: for *any* random pointer graph and
*any* administrative join/leave/fail sequence that keeps at least two
sites active (so every object always has a live replica — the rebalance
after each view change restores k copies from the survivors before the
next event can strike), query results between every pair of events equal
the static healthy cluster's.  The property runs on the simulator and on
the asyncio wall-clock transport, because administrative membership is
part of the shared cluster API, not a simulator trick.

And the off-switch: building with ``membership=None`` must be
bit-identical to a membership-free cluster — same schedule signatures,
same results, walk for walk — so the feature costs nothing when unused.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import make_cluster
from repro.cluster import SimCluster
from repro.config import ClusterConfig
from repro.core import keyword_tuple, pointer_tuple
from repro.membership import MembershipConfig
from repro.replication import ReplicationConfig
from repro.sim.explore import run_schedule

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ASYNC_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def load_random_graph(cluster, seed, n):
    """Seeded random pointer graph, identical for the same ``(seed, n)``
    on any cluster: ``n`` objects spread round the sites, ~half hits,
    up to two outgoing pointers each."""
    rng = random.Random(seed)
    stores = [cluster.store(s) for s in cluster.sites]
    oids, homes = [], []
    for i in range(n):
        key = keyword_tuple("K") if rng.random() < 0.5 else keyword_tuple("miss")
        store = stores[rng.randrange(len(stores))]
        oids.append(store.create([key]).oid)
        homes.append(store)
    for i in range(n):
        for _ in range(rng.randint(0, 2)):
            target = oids[rng.randrange(n)]
            homes[i].replace(homes[i].get(oids[i]).with_tuple(pointer_tuple("Ref", target)))
    return oids


def event_sequence(seed, length):
    """A seeded admissible event sequence over sites {site1, site2}.

    site0 originates every query so it never departs; at least two
    sites stay active at all times, which with k=2 and a rebalance after
    every event keeps a live replica of everything.  Joins are rejoins
    of departed sites only, so the same sequence is legal on wall-clock
    transports (whose endpoints are provisioned up front)."""
    rng = random.Random(seed)
    active = {"site0", "site1", "site2"}
    departed = set()
    events = []
    for _ in range(length):
        options = []
        removable = sorted(active - {"site0"})
        if len(active) > 2:
            options += [("leave", s) for s in removable]
            options += [("fail", s) for s in removable]
        options += [("join", s) for s in sorted(departed)]
        if not options:
            break
        kind, site = options[rng.randrange(len(options))]
        events.append((kind, site))
        if kind == "join":
            departed.discard(site)
            active.add(site)
        else:
            active.discard(site)
            departed.add(site)
    return events


def apply_event(cluster, kind, site):
    if kind == "join":
        cluster.join_site(site)
    elif kind == "leave":
        cluster.leave_site(site)
    else:
        cluster.fail_site(site)


class TestEventSequencesPreserveResults:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(min_value=4, max_value=14),
        events=st.integers(min_value=1, max_value=4),
    )
    def test_sim_results_equal_static_oracle_between_every_event(self, seed, n, events):
        healthy = SimCluster(3)
        oids = load_random_graph(healthy, seed, n)
        oracle = healthy.run_query(CLOSURE, [oids[0]]).result.oid_keys()
        healthy.close()

        cluster = SimCluster(
            3,
            config=ClusterConfig(
                replication=ReplicationConfig(k=2), membership=MembershipConfig()
            ),
        )
        try:
            load_random_graph(cluster, seed, n)
            cluster.replicate_all()
            for kind, site in event_sequence(seed, events):
                apply_event(cluster, kind, site)
                out = cluster.run_query(CLOSURE, [oids[0]])
                assert out.result.oid_keys() == oracle
                assert not out.result.partial
        finally:
            cluster.close()

    @ASYNC_SETTINGS
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(min_value=4, max_value=10),
        events=st.integers(min_value=1, max_value=3),
    )
    def test_async_results_equal_static_oracle_between_every_event(self, seed, n, events):
        healthy = SimCluster(3)
        oids = load_random_graph(healthy, seed, n)
        oracle = healthy.run_query(CLOSURE, [oids[0]]).result.oid_keys()
        healthy.close()

        cluster = make_cluster(
            "async",
            3,
            config=ClusterConfig(
                replication=ReplicationConfig(k=2), membership=MembershipConfig()
            ),
        )
        try:
            load_random_graph(cluster, seed, n)
            cluster.replicate_all()
            for kind, site in event_sequence(seed, events):
                apply_event(cluster, kind, site)
                out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
                assert out.result.oid_keys() == oracle
                assert not out.result.partial
        finally:
            cluster.close()


class TestMembershipOffIsFree:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(min_value=4, max_value=12),
    )
    def test_schedule_signatures_identical_with_and_without_membership(self, seed, n):
        """Attaching an (eventless, heartbeat-free) membership plane must
        not perturb a single scheduling decision: signature and results
        match the membership-free build walk for walk."""

        def plain_setup():
            cluster = SimCluster(3, config=ClusterConfig(replication=ReplicationConfig(k=2)))
            oids = load_random_graph(cluster, seed, n)
            cluster.replicate_all()
            return cluster, [oids[0]]

        def membership_setup():
            cluster = SimCluster(
                3,
                config=ClusterConfig(
                    replication=ReplicationConfig(k=2),
                    membership=MembershipConfig(),
                ),
            )
            oids = load_random_graph(cluster, seed, n)
            cluster.replicate_all()
            return cluster, [oids[0]]

        base = run_schedule(plain_setup, CLOSURE, seed=seed)
        with_membership = run_schedule(membership_setup, CLOSURE, seed=seed)
        assert with_membership.signature == base.signature
        assert with_membership.oid_keys == base.oid_keys
        assert with_membership.deficit == base.deficit == 0
        assert with_membership.status == base.status == "completed"
