"""Oracle test: the engine's selection semantics vs a naive reference.

A straight-line reimplementation of the paper's selection rule ("an
object passes when some tuple matches all three field patterns") is
compared against the real engine over random objects and patterns.  The
oracle is deliberately simple — no binding machinery — so it can only
check bind-free patterns; a second block checks the binding rule
(bindings accumulate exactly from fully-matching tuples).
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objects import HFObject
from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.patterns import ANY, Literal, Range
from repro.core.program import compile_query
from repro.core.tuples import HFTuple
from repro.engine.efunction import evaluate
from repro.engine.items import WorkItem
from repro.engine.local import run_local
from repro.storage.memstore import MemStore

types = st.sampled_from(["Keyword", "String", "Number", "Doc"])
keys = st.one_of(
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=0, max_value=5),
)
values = st.one_of(
    st.sampled_from(["x", "y"]),
    st.integers(min_value=0, max_value=9),
)
tuples_ = st.builds(HFTuple, types, keys, values)
objects = st.lists(tuples_, max_size=8)

bindfree_patterns = st.one_of(
    st.just(ANY),
    st.builds(Literal, st.one_of(keys, values, types)),
    st.builds(
        lambda lo, hi: Range(min(lo, hi), max(lo, hi)),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    ),
)


def oracle_matches(pattern, value) -> bool:
    """Reference semantics for bind-free patterns."""
    if pattern is ANY:
        return True
    if isinstance(pattern, Literal):
        if isinstance(pattern.value, bool) != isinstance(value, bool):
            return False
        return pattern.value == value
    if isinstance(pattern, Range):
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and pattern.lo <= value <= pattern.hi
        )
    raise AssertionError("oracle only handles bind-free patterns")


def oracle_passes(tuple_list, tp, kp, dp) -> bool:
    return any(
        oracle_matches(tp, t.type) and oracle_matches(kp, t.key) and oracle_matches(dp, t.data)
        for t in tuple_list
    )


class TestSelectionOracle:
    @settings(max_examples=300, deadline=None)
    @given(objects, bindfree_patterns, bindfree_patterns, bindfree_patterns)
    def test_engine_agrees_with_reference(self, tuple_list, tp, kp, dp):
        from repro.core.ast import Query, Select
        from repro.core.program import compile_query as compile_

        store = MemStore("s1")
        obj = store.create(tuple_list)
        program = compile_(Query("S", (Select(tp, kp, dp),), "T"))
        result = run_local(program, [obj.oid], store.get)
        expected = oracle_passes(list(obj.tuples), tp, kp, dp)
        assert (obj.oid.key() in result.oid_keys()) == expected


class TestBindingRule:
    @settings(max_examples=200, deadline=None)
    @given(objects, st.sampled_from(["a", "b", "c", 0, 1]))
    def test_bindings_are_exactly_matching_tuples_data(self, tuple_list, key):
        # (?, key, ?X): X must end up bound to the data of every tuple
        # whose key matches — and nothing else.
        from repro.core.ast import Query, Select
        from repro.core.patterns import Bind

        store = MemStore("s1")
        obj = store.create(tuple_list)
        program = compile_query(Query("S", (Select(ANY, Literal(key), Bind("X")),), "T"))
        active = WorkItem(obj.oid).activate()
        spawned, passed = evaluate(program, active, store.get(obj.oid), lambda t, v: None)
        expected = {
            t.data for t in obj.tuples
            if isinstance(t.key, bool) == isinstance(key, bool) and t.key == key
        }
        assert active.bindings("X") == expected
        assert (passed is not None) == bool(expected)
        assert spawned == []
