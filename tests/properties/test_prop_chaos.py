"""Property-based chaos tests (hypothesis).

For any seeded mix of message drop / duplication / reordering, a
transitive-closure query run over the reliable channel must:

* terminate (the detector fires; ``wait`` returns rather than idling);
* conserve credit exactly (weighted: recovered == 1);
* lose nothing (weighted: the full closure comes back — completeness
  rides on credit, so conservation implies it);

for *both* termination strategies.  Dijkstra–Scholten is held to
termination + no protocol error only: its detach-ack and final results
travel different links, so reordering can race them (docs/FAULTS.md).
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.faults import FaultPlan

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

chaos_rates = st.fixed_dictionaries(
    {
        "drop": st.floats(0.0, 0.30),
        "duplicate": st.floats(0.0, 0.25),
        "reorder": st.floats(0.0, 0.30),
        "delay_jitter_s": st.floats(0.0, 0.01),
    }
)


def build_chain(cluster, length):
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


class TestReliableChaosProperties:
    @SETTINGS
    @given(seed=st.integers(0, 2**20), rates=chaos_rates,
           length=st.integers(min_value=4, max_value=16))
    def test_weighted_terminates_conserves_and_completes(self, seed, rates, length):
        cluster = SimCluster(
            3, fault_plan=FaultPlan(seed=seed, **rates), reliable=True
        )
        oids = build_chain(cluster, length)
        qid = cluster.submit(CLOSURE, [oids[0]])
        outcome = cluster.wait(qid)
        assert not outcome.result.partial
        assert outcome.result.oid_keys() == {o.key() for o in oids}
        ctx = cluster.node(qid.originator).contexts[qid]
        assert ctx.term_state.recovered == Fraction(1)

    @SETTINGS
    @given(seed=st.integers(0, 2**20), rates=chaos_rates,
           length=st.integers(min_value=4, max_value=16))
    def test_dijkstra_scholten_terminates_cleanly(self, seed, rates, length):
        cluster = SimCluster(
            3, termination="dijkstra-scholten",
            fault_plan=FaultPlan(seed=seed, **rates), reliable=True,
        )
        oids = build_chain(cluster, length)
        qid = cluster.submit(CLOSURE, [oids[0]])
        outcome = cluster.wait(qid)  # no idle-hang, no protocol error
        assert not outcome.result.partial
        ctx = cluster.node(qid.originator).contexts[qid]
        assert ctx.term_state.deficit == 0
