"""Model-based property tests for the mark table and work sets."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oid import Oid
from repro.engine.items import WorkItem
from repro.engine.marktable import MarkTable
from repro.engine.workset import make_workset

oids = st.builds(
    Oid,
    st.sampled_from(["s0", "s1", "s2"]),
    st.integers(min_value=0, max_value=20),
)
positions = st.integers(min_value=1, max_value=8)


class TestMarkTableModel:
    @given(st.lists(st.tuples(oids, positions), max_size=60))
    def test_matches_reference_dict_of_sets(self, operations):
        table = MarkTable()
        reference = {}
        for oid, pos in operations:
            # should_process must agree with the reference before marking.
            expected = pos not in reference.get(oid.key(), set())
            assert table.should_process(oid, pos) == expected
            table.mark(oid, pos)
            reference.setdefault(oid.key(), set()).add(pos)
        assert table.objects_seen == len(reference)
        assert table.total_marks == sum(len(v) for v in reference.values())

    @given(st.lists(st.tuples(oids, positions), min_size=1, max_size=60))
    def test_marking_is_monotone(self, operations):
        # Once suppressed, an (oid, position) pair stays suppressed.
        table = MarkTable()
        for oid, pos in operations:
            table.mark(oid, pos)
            assert not table.should_process(oid, pos)

    @given(oids, positions, positions)
    def test_positions_independent(self, oid, p1, p2):
        table = MarkTable()
        table.mark(oid, p1)
        if p2 != p1:
            assert table.should_process(oid, p2)


class TestWorkSetModel:
    @given(
        st.sampled_from(["fifo", "lifo", "priority"]),
        st.lists(st.tuples(oids, positions), max_size=40),
    )
    def test_every_item_popped_exactly_once(self, discipline, entries):
        ws = make_workset(discipline)
        items = [WorkItem(oid, start) for oid, start in entries]
        ws.extend(items)
        popped = []
        while ws:
            popped.append(ws.pop())
        assert sorted(popped, key=_sort_key) == sorted(items, key=_sort_key)

    @given(
        st.sampled_from(["fifo", "lifo", "priority"]),
        st.lists(st.tuples(oids, positions), min_size=1, max_size=20),
        st.lists(st.tuples(oids, positions), min_size=1, max_size=20),
    )
    def test_interleaved_add_pop(self, discipline, first, second):
        ws = make_workset(discipline)
        ws.extend(WorkItem(o, s) for o, s in first)
        drained = [ws.pop() for _ in range(len(first) // 2)]
        ws.extend(WorkItem(o, s) for o, s in second)
        while ws:
            drained.append(ws.pop())
        assert len(drained) == len(first) + len(second)


def _sort_key(item):
    return (item.oid.birth_site, item.oid.local_id, item.start)
