"""Property-based tests of the batching layer (hypothesis).

The batching subsystem's contract is *transparency*: for any pointer
graph, any batch threshold, with or without mark hints, with or without
message chaos behind the reliable channel, coalescing dereference
requests into batched frames must never change a query's result set —
and under the weighted detector it must never disturb exact credit
conservation (a retransmitted batch dedups as a unit, so its items'
credit is absorbed exactly once).
"""

import random
from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.faults import FaultPlan
from repro.net.batching import BatchConfig

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

chaos_rates = st.fixed_dictionaries(
    {
        "drop": st.floats(0.0, 0.30),
        "duplicate": st.floats(0.0, 0.25),
        "reorder": st.floats(0.0, 0.30),
        "delay_jitter_s": st.floats(0.0, 0.01),
    }
)

batch_configs = st.builds(
    BatchConfig,
    max_batch=st.integers(min_value=2, max_value=16),
    mark_hints=st.booleans(),
)


def build_random_graph(cluster, n, seed):
    """A random pointer graph striped across the sites.

    Every object is keyworded and carries a self-loop (so reaching it
    puts it in the closure result) plus up to three random out-edges —
    enough fan-out that batch queues actually coalesce, and enough
    diamonds that the sent-set dedup actually fires.
    """
    rng = random.Random(seed)
    stores = [cluster.store(s) for s in cluster.sites]
    oids = [
        stores[i % len(stores)].create([keyword_tuple("K")]).oid for i in range(n)
    ]
    for i in range(n):
        targets = {i}
        for _ in range(rng.randint(0, 3)):
            targets.add(rng.randrange(n))
        store = stores[i % len(stores)]
        obj = store.get(oids[i])
        for t in sorted(targets):
            obj = obj.with_tuple(pointer_tuple("Ref", oids[t]))
        store.replace(obj)
    return oids


class TestBatchingTransparency:
    @SETTINGS
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=16),
           cfg=batch_configs)
    def test_batching_never_changes_results(self, seed, n, cfg):
        plain = SimCluster(3)
        batched = SimCluster(3, batching=cfg)
        oids_p = build_random_graph(plain, n, seed)
        oids_b = build_random_graph(batched, n, seed)
        out_p = plain.run_query(CLOSURE, [oids_p[0]])
        out_b = batched.run_query(CLOSURE, [oids_b[0]])
        assert out_b.result.oid_keys() == out_p.result.oid_keys()
        assert not out_b.result.partial

    @SETTINGS
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=16),
           cfg=batch_configs)
    def test_batching_conserves_credit(self, seed, n, cfg):
        cluster = SimCluster(3, batching=cfg)
        oids = build_random_graph(cluster, n, seed)
        qid = cluster.submit(CLOSURE, [oids[0]])
        cluster.wait(qid)
        ctx = cluster.node(qid.originator).contexts[qid]
        assert ctx.term_state.recovered == Fraction(1)

    @SETTINGS
    @given(seed=st.integers(0, 2**20), rates=chaos_rates,
           n=st.integers(min_value=4, max_value=16), cfg=batch_configs)
    def test_batched_frames_survive_chaos_behind_reliable_channel(
        self, seed, rates, n, cfg
    ):
        """Chaos drops/duplicates whole *frames*; the reliable channel
        retransmits them and the receiver dedups each frame as a unit.
        Results and credit must come out exactly as without batching."""
        plain = SimCluster(
            3, fault_plan=FaultPlan(seed=seed, **rates), reliable=True
        )
        batched = SimCluster(
            3, fault_plan=FaultPlan(seed=seed, **rates), reliable=True,
            batching=cfg,
        )
        oids_p = build_random_graph(plain, n, seed)
        oids_b = build_random_graph(batched, n, seed)
        out_p = plain.run_query(CLOSURE, [oids_p[0]])
        qid = batched.submit(CLOSURE, [oids_b[0]])
        out_b = batched.wait(qid)
        assert not out_b.result.partial
        assert out_b.result.oid_keys() == out_p.result.oid_keys()
        ctx = batched.node(qid.originator).contexts[qid]
        assert ctx.term_state.recovered == Fraction(1)

    @SETTINGS
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=16))
    def test_dijkstra_scholten_also_composes(self, seed, n):
        """Batching must compose with the *other* termination strategy
        too.  DS is held to its documented contract only — termination
        with zero deficit and no spurious results; completeness rides on
        the weighted scheme (docs/FAULTS.md: a small detach-ack can
        overtake a large in-flight ResultBatch on the same link, with or
        without batching)."""
        batched = SimCluster(
            3, termination="dijkstra-scholten",
            batching=BatchConfig(max_batch=4),
        )
        oids = build_random_graph(batched, n, seed)
        qid = batched.submit(CLOSURE, [oids[0]])
        out = batched.wait(qid)  # no idle-hang, no protocol error
        assert not out.result.partial
        assert out.result.oid_keys() <= {o.key() for o in oids}
        assert oids[0].key() in out.result.oid_keys()
        ctx = batched.node(qid.originator).contexts[qid]
        assert ctx.term_state.deficit == 0
