"""Property-based replication tests (hypothesis).

The replication contract, quantified: for *any* random pointer graph and
*any* crash set that leaves at least one replica of every object live
(and the originator up), query results on the replicated cluster equal
the healthy replica-free cluster's — read anycast plus failover make a
safe crash set observationally invisible.  Unsafe crash sets are checked
separately: they may freeze branches, but can never return a wrong
result set silently (whatever completes is marked partial or matches).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.replication import ReplicationConfig
from repro.sim.explore import crash_is_safe

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Candidate crash sets over a 3-site cluster, never the originator.
CRASH_SETS = [(), ("site1",), ("site2",), ("site1", "site2")]


def load_random_graph(cluster, seed, n):
    """A seeded random pointer graph: ``n`` objects spread over the
    sites, ~half of them hits, up to two outgoing pointers each.  The
    same ``(seed, n)`` loads bit-identical data into any cluster."""
    rng = random.Random(seed)
    stores = [cluster.store(s) for s in cluster.sites]
    oids, homes = [], []
    for i in range(n):
        key = keyword_tuple("K") if rng.random() < 0.5 else keyword_tuple("miss")
        store = stores[rng.randrange(len(stores))]
        oids.append(store.create([key]).oid)
        homes.append(store)
    for i in range(n):
        for _ in range(rng.randint(0, 2)):
            target = oids[rng.randrange(n)]
            homes[i].replace(homes[i].get(oids[i]).with_tuple(pointer_tuple("Ref", target)))
    return oids


class TestSafeCrashSetsAreInvisible:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(min_value=4, max_value=14),
        k=st.sampled_from([2, 3]),
        down=st.sampled_from(CRASH_SETS),
    )
    def test_results_equal_healthy_replica_free_cluster(self, seed, n, k, down):
        healthy = SimCluster(3)
        oids = load_random_graph(healthy, seed, n)
        oracle = healthy.run_query(CLOSURE, [oids[0]]).result.oid_keys()
        healthy.close()

        cluster = SimCluster(3, replication=ReplicationConfig(k=k))
        load_random_graph(cluster, seed, n)
        cluster.replicate_all()
        try:
            if not crash_is_safe(cluster, down, "site0"):
                return  # unsafe set for this graph/placement: out of scope
            for site in down:
                cluster.set_down(site)
            out = cluster.run_query(CLOSURE, [oids[0]])
            assert out.result.oid_keys() == oracle
            assert not out.result.partial
        finally:
            cluster.close()

    @SETTINGS
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=14))
    def test_replication_alone_changes_nothing(self, seed, n):
        """k=2 with no faults: byte-for-byte the replica-free answer."""
        plain = SimCluster(3)
        oids = load_random_graph(plain, seed, n)
        oracle = plain.run_query(CLOSURE, [oids[0]]).result.oid_keys()
        plain.close()

        cluster = SimCluster(3, replication=ReplicationConfig(k=2))
        load_random_graph(cluster, seed, n)
        cluster.replicate_all()
        out = cluster.run_query(CLOSURE, [oids[0]])
        cluster.close()
        assert out.result.oid_keys() == oracle
        assert not out.result.partial
