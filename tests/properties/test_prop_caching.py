"""Property-based tests of the caching layer (hypothesis).

The caching subsystem's contract is *transparency*: for any pointer
graph, any combination of cache features (fragments, whole-query cache,
Bloom summaries), on every transport, a cache-enabled run must return
exactly the results a cache-disabled run returns — same oid sets, same
``partial`` flag, same exact credit accounting — including across
repeated queries (where the caches actually fire) and across store
mutations the originator can observe (where stale entries must be
invalidated, not served — epoch propagation is piggybacked, so the
mutation strategy below always touches the originator's site too; the
silent-remote-mutation window is pinned separately in
``tests/integration/test_caching.py``, see ``docs/CACHING.md``).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import credit_deficit
from repro.cache import CacheConfig
from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.net.sockets import SocketCluster
from repro.net.threaded import ThreadedCluster

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every subset of cache features, including the full config.
cache_configs = st.builds(
    CacheConfig,
    fragments=st.booleans(),
    query_cache=st.booleans(),
    summaries=st.booleans(),
    bloom_bits=st.sampled_from([256, 1024, 4096]),
    max_entries=st.sampled_from([4, 64, 4096]),
)


def build_random_graph(cluster, n, seed):
    """A random pointer graph striped across the sites (self-loops plus
    up to three random out-edges per object; half the leaves unkeyworded
    so Bloom rule-B actually has leaves to prune)."""
    rng = random.Random(seed)
    stores = [cluster.store(s) for s in cluster.sites]
    oids = [
        stores[i % len(stores)].create([keyword_tuple("K")]).oid for i in range(n)
    ]
    for i in range(n):
        targets = {i} if rng.random() < 0.7 else set()
        for _ in range(rng.randint(0, 3)):
            targets.add(rng.randrange(n))
        store = stores[i % len(stores)]
        obj = store.get(oids[i])
        for t in sorted(targets):
            obj = obj.with_tuple(pointer_tuple("Ref", oids[t]))
        store.replace(obj)
    return oids


def outcome_fingerprint(outcome):
    return (
        outcome.result.oid_keys(),
        outcome.result.partial,
        sorted(outcome.result.retrieved),
    )


class TestCachingTransparencySim:
    @SETTINGS
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=16),
           cfg=cache_configs, repeats=st.integers(min_value=1, max_value=3))
    def test_cached_equals_uncached_across_repeats(self, seed, n, cfg, repeats):
        plain = SimCluster(3)
        cached = SimCluster(3, caching=cfg)
        oids_p = build_random_graph(plain, n, seed)
        oids_c = build_random_graph(cached, n, seed)
        for _ in range(repeats):
            out_p = plain.run_query(CLOSURE, [oids_p[0]])
            out_c = cached.run_query(CLOSURE, [oids_c[0]])
            assert outcome_fingerprint(out_c) == outcome_fingerprint(out_p)
            assert credit_deficit(cached.nodes, out_c.qid) in (None, Fraction(0))

    @SETTINGS
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=12),
           cfg=cache_configs)
    def test_overlapping_queries_share_fragments_safely(self, seed, n, cfg):
        """A second query over the same graph but a different search key
        overlaps the first query's traversal; replayed fragments must not
        leak the first query's bindings or results."""
        other = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"Q",?) -> T'
        plain = SimCluster(3)
        cached = SimCluster(3, caching=cfg)
        oids_p = build_random_graph(plain, n, seed)
        oids_c = build_random_graph(cached, n, seed)
        for query in (CLOSURE, other, CLOSURE):
            out_p = plain.run_query(query, [oids_p[0]])
            out_c = cached.run_query(query, [oids_c[0]])
            assert outcome_fingerprint(out_c) == outcome_fingerprint(out_p)

    @SETTINGS
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=12),
           cfg=cache_configs, mutate_site=st.integers(0, 2))
    def test_mutation_invalidates_everything(self, seed, n, cfg, mutate_site):
        """Run, mutate one site's store, run again: the cached cluster
        must answer from the *new* data, exactly like a fresh uncached
        cluster over the mutated graph."""
        plain = SimCluster(3)
        cached = SimCluster(3, caching=cfg)
        oids_p = build_random_graph(plain, n, seed)
        oids_c = build_random_graph(cached, n, seed)
        cached.run_query(CLOSURE, [oids_c[0]])  # warm every cache layer

        def mutate(cluster, oids):
            site = cluster.sites[mutate_site]
            store = cluster.store(site)
            new = store.create([keyword_tuple("K")])
            store.replace(store.get(new.oid).with_tuple(pointer_tuple("Ref", new.oid)))
            # Attach the new object under the root so it joins the closure.
            root_store = cluster.store(cluster.sites[0])
            root_store.replace(
                root_store.get(oids[0]).with_tuple(pointer_tuple("Ref", new.oid))
            )
            return new.oid

        new_p = mutate(plain, oids_p)
        new_c = mutate(cached, oids_c)
        out_p = plain.run_query(CLOSURE, [oids_p[0]])
        out_c = cached.run_query(CLOSURE, [oids_c[0]])
        assert outcome_fingerprint(out_c) == outcome_fingerprint(out_p)
        assert new_c.key() in out_c.result.oid_keys()
        assert new_p.key() in out_p.result.oid_keys()

    @SETTINGS
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=16))
    def test_full_config_conserves_credit(self, seed, n):
        cached = SimCluster(3, caching=CacheConfig())
        oids = build_random_graph(cached, n, seed)
        for _ in range(2):
            qid = cached.submit(CLOSURE, [oids[0]])
            cached.wait(qid)
            ctx = cached.node(qid.originator).contexts[qid]
            assert ctx.term_state.recovered == Fraction(1)
            assert credit_deficit(cached.nodes, qid) == Fraction(0)


@pytest.mark.parametrize("factory", [ThreadedCluster, SocketCluster],
                         ids=["threaded", "sockets"])
class TestCachingTransparencyRealTransports:
    """The same transparency contract on the wall-clock transports (a
    handful of hypothesis examples — each spins up real threads/sockets)."""

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**20), n=st.integers(min_value=4, max_value=10))
    def test_cached_equals_uncached(self, factory, seed, n):
        plain = factory(3)
        cached = factory(3, caching=CacheConfig())
        try:
            oids_p = build_random_graph(plain, n, seed)
            oids_c = build_random_graph(cached, n, seed)
            for _ in range(2):
                out_p = plain.run_query(CLOSURE, [oids_p[0]], timeout_s=30.0)
                out_c = cached.run_query(CLOSURE, [oids_c[0]], timeout_s=30.0)
                assert outcome_fingerprint(out_c) == outcome_fingerprint(out_p)
        finally:
            plain.close()
            cached.close()
