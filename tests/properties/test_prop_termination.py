"""Property tests for termination detection: conservation and no false
positives/negatives under randomised distributed schedules."""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SimCluster
from repro.core.builder import QueryBuilder
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.sim.costs import FREE_COSTS
from repro.termination.weights import WeightedStrategy

SETTINGS = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def random_scenarios(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = [
        draw(st.lists(st.integers(min_value=0, max_value=n - 1), max_size=3))
        for _ in range(n)
    ]
    placement = [draw(st.integers(min_value=0, max_value=2))for _ in range(n)]
    seed = draw(st.integers(min_value=0, max_value=n - 1))
    return n, edges, placement, seed


def run_scenario(n, edges, placement, seed, strategy):
    cluster = SimCluster(3, costs=FREE_COSTS, termination=strategy)
    stores = [cluster.store(s) for s in cluster.sites]
    oids = [stores[placement[i]].create([]).oid for i in range(n)]
    for i in range(n):
        tuples = [keyword_tuple("K")] + [pointer_tuple("Edge", oids[j]) for j in edges[i]]
        stores[placement[i]].replace(stores[placement[i]].get(oids[i]).with_tuples(tuples))
    query = (
        QueryBuilder("S")
        .begin_loop()
        .select("Pointer", "Edge", "?X")
        .deref_keep("X")
        .end_loop()
        .select("Keyword", "K", "?")
        .into("T")
    )
    outcome = cluster.run_query(compile_query(query), [oids[seed]])
    return cluster, outcome


class TestWeightedConservation:
    @SETTINGS
    @given(random_scenarios())
    def test_credit_fully_recovered_at_completion(self, scenario):
        n, edges, placement, seed = scenario
        cluster, outcome = run_scenario(n, edges, placement, seed, "weighted")
        ctx = cluster.node(outcome.qid.originator).contexts[outcome.qid]
        assert ctx.term_state.recovered == Fraction(1)
        assert ctx.term_state.credit == 0

    @SETTINGS
    @given(random_scenarios())
    def test_no_credit_left_at_any_site(self, scenario):
        n, edges, placement, seed = scenario
        cluster, outcome = run_scenario(n, edges, placement, seed, "weighted")
        for node in cluster.nodes.values():
            ctx = node.contexts.get(outcome.qid)
            if ctx is not None and not ctx.is_originator:
                assert ctx.term_state.credit == 0


class TestNoFalseDetection:
    @SETTINGS
    @given(random_scenarios(), st.sampled_from(["weighted", "dijkstra-scholten"]))
    def test_detection_only_after_all_work_done(self, scenario, strategy):
        # At completion, every site's working set for the query is empty
        # and no messages are in flight (the simulator would still hold
        # events otherwise — we drain and check nothing changes).
        n, edges, placement, seed = scenario
        cluster, outcome = run_scenario(n, edges, placement, seed, strategy)
        result_size = len(outcome.result.oids)
        for node in cluster.nodes.values():
            ctx = node.contexts.get(outcome.qid)
            if ctx is not None:
                assert not ctx.busy
        cluster.run()  # drain any stragglers
        assert len(outcome.result.oids) == result_size  # nothing arrived late

    @SETTINGS
    @given(random_scenarios())
    def test_detectors_agree_on_results(self, scenario):
        n, edges, placement, seed = scenario
        _, weighted = run_scenario(n, edges, placement, seed, "weighted")
        _, ds = run_scenario(n, edges, placement, seed, "dijkstra-scholten")
        assert weighted.result.oid_keys() == ds.result.oid_keys()


class TestSplitArithmetic:
    @given(st.integers(min_value=1, max_value=200))
    def test_any_number_of_splits_conserves(self, splits):
        strategy = WeightedStrategy()
        state = strategy.new_state("s0", True)
        strategy.on_start(state)
        sent = []
        for _ in range(splits):
            sent.append(strategy.on_send_work(state)["credit"])
        assert sum(sent) + state.credit == 1
        assert all(c > 0 for c in sent)
