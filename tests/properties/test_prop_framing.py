"""Property-based tests of the streaming frame codec (hypothesis).

The asyncio transport's :class:`~repro.net.codec.FrameReader` receives
the TCP byte stream in arbitrary chunks — the kernel is free to split
one frame across many reads or coalesce many frames into one.  The
contract is exact reassembly: for ANY frame sequence and ANY chunking of
the concatenated bytes, ``feed`` must yield exactly the original frame
payloads, in order, regardless of where the chunk boundaries fall.  A
single off-by-one here silently corrupts (or drops) an envelope, which
on a live cluster surfaces as a lost termination credit — a hang, not
an error — so this file holds the line property-style.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HyperFileError
from repro.net.codec import FRAME_HEADER, FrameReader, encode_frame

SETTINGS = settings(max_examples=200, deadline=None)

frames_strategy = st.lists(
    st.binary(min_size=0, max_size=64), min_size=0, max_size=12
)


def chunkings(data: bytes):
    """Strategy for ways to split ``data`` into consecutive chunks."""
    return st.lists(
        st.integers(min_value=1, max_value=max(len(data), 1)),
        min_size=0,
        max_size=len(data) + 1,
    )


def split(data: bytes, sizes) -> list:
    chunks = []
    pos = 0
    for size in sizes:
        if pos >= len(data):
            break
        chunks.append(data[pos:pos + size])
        pos += size
    if pos < len(data):
        chunks.append(data[pos:])
    return chunks


@SETTINGS
@given(payloads=frames_strategy, data=st.data())
def test_any_chunking_reassembles_identically(payloads, data):
    stream = b"".join(encode_frame(p) for p in payloads)
    sizes = data.draw(chunkings(stream))
    reader = FrameReader()
    got = []
    for chunk in split(stream, sizes):
        got.extend(bytes(frame) for frame in reader.feed(chunk))
    assert got == payloads
    assert reader.pending == 0


@SETTINGS
@given(payloads=frames_strategy)
def test_byte_at_a_time_equals_one_shot(payloads):
    stream = b"".join(encode_frame(p) for p in payloads)
    one_shot = FrameReader()
    whole = [bytes(f) for f in one_shot.feed(stream)] if stream else []
    dribble = FrameReader()
    trickled = []
    for i in range(len(stream)):
        trickled.extend(bytes(f) for f in dribble.feed(stream[i:i + 1]))
    assert whole == payloads
    assert trickled == payloads


def test_partial_frame_stays_pending():
    frame = encode_frame(b"hello")
    reader = FrameReader()
    assert reader.feed(frame[:3]) == []
    assert reader.pending == 3
    (got,) = reader.feed(frame[3:])
    assert bytes(got) == b"hello"
    assert reader.pending == 0


def test_oversized_frame_rejected():
    reader = FrameReader()
    with pytest.raises(HyperFileError):
        reader.feed(FRAME_HEADER.pack(1 << 31))


def test_fast_path_returns_views_over_the_chunk():
    """Whole frames inside one chunk come back zero-copy."""
    chunk = encode_frame(b"abc") + encode_frame(b"defg")
    frames = FrameReader().feed(chunk)
    assert [bytes(f) for f in frames] == [b"abc", b"defg"]
    assert any(isinstance(f, memoryview) for f in frames)
