"""Property-based tests of the QoS subsystem (hypothesis).

Two contracts:

* **Transparency** — a QoS config whose limits are never reached (huge
  watermarks, huge token bucket) must be *bit-identical* to ``qos=None``
  on any pointer graph: same oid sets, same partial flag, same virtual
  response time, same message and byte counts on the wire.  The priority
  and pressure fields ride envelopes for free (they are excluded from
  the paper cost model's ``size_bytes``), the weighted-fair drain with a
  single active class reduces to the legacy round-robin, and admission
  with tokens to spare admits everything.
* **Exact-credit shedding** — when shedding *is* forced, the result is
  a subset of the unthrottled oracle, the outcome is flagged partial
  with ``partial_reason == "shed"``, and the weighted-credit detector's
  conservation stays exact (``credit_deficit == 0``): dropped work's
  credit travels home on drain messages, never leaks.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import credit_deficit
from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.qos import QoSConfig

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: A config with every feature armed but no limit reachable by the
#: small graphs below: transparency must hold for it.
UNREACHABLE = QoSConfig(
    rate_limit_qps=1e9,
    rate_burst=10**6,
    high_watermark=10**6,
    low_watermark=10**5,
    shed_watermark=10**6,
)


def build_random_graph(cluster, n, seed):
    """A random pointer graph striped across the sites."""
    rng = random.Random(seed)
    stores = [cluster.store(s) for s in cluster.sites]
    oids = [stores[i % len(stores)].create([keyword_tuple("K")]).oid for i in range(n)]
    for i in range(n):
        targets = {i} if rng.random() < 0.7 else set()
        for _ in range(rng.randint(0, 3)):
            targets.add(rng.randrange(n))
        store = stores[i % len(stores)]
        obj = store.get(oids[i])
        for t in sorted(targets):
            obj = obj.with_tuple(pointer_tuple("Ref", oids[t]))
        store.replace(obj)
    return oids


def run_once(qos, n, seed, priority=None):
    cluster = SimCluster(3, qos=qos)
    oids = build_random_graph(cluster, n, seed)
    out = cluster.run_query(CLOSURE, [oids[0]], priority=priority)
    return cluster, out


class TestTransparency:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(min_value=4, max_value=16),
        qos=st.sampled_from([QoSConfig(), UNREACHABLE]),
        priority=st.sampled_from([None, "interactive", "batch"]),
    )
    def test_unreached_limits_are_bit_identical(self, seed, n, qos, priority):
        base_cluster, base = run_once(None, n, seed)
        qos_cluster, out = run_once(qos, n, seed, priority=priority)
        assert out.result.oid_keys() == base.result.oid_keys()
        assert out.result.partial == base.result.partial
        assert out.partial_reason is None
        assert out.response_time == base.response_time
        assert qos_cluster.network.messages_delivered == base_cluster.network.messages_delivered
        assert qos_cluster.network.bytes_delivered == base_cluster.network.bytes_delivered
        assert qos_cluster.total_stats().work_shed == 0
        assert qos_cluster.qos_bounces == 0


class TestExactCreditShedding:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(min_value=4, max_value=16),
        shed_watermark=st.integers(min_value=0, max_value=2),
    )
    def test_forced_shed_is_subset_with_zero_deficit(self, seed, n, shed_watermark):
        _, oracle = run_once(None, n, seed)
        cluster, out = run_once(
            QoSConfig(shed_watermark=shed_watermark), n, seed, priority="batch"
        )
        assert out.result.oid_keys() <= oracle.result.oid_keys()
        if cluster.total_stats().work_shed:
            assert out.result.partial
            assert out.partial_reason == "shed"
        else:
            assert out.result.oid_keys() == oracle.result.oid_keys()
            assert not out.result.partial
        assert credit_deficit(cluster.nodes, out.qid) == 0
