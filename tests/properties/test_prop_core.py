"""Property-based tests for the core data model (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objects import HFObject, make_set_object, set_members
from repro.core.oid import Oid
from repro.core.patterns import ANY, Bind, Literal, Range, Use, as_pattern
from repro.core.tuples import HFTuple

sites = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8)
oids = st.builds(Oid, sites, st.integers(min_value=0, max_value=10_000))
scalars = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-1_000_000, max_value=1_000_000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    oids,
)
tuples_ = st.builds(
    HFTuple,
    st.text(alphabet=string.ascii_letters, min_size=1, max_size=10),
    scalars,
    scalars,
)


class TestOidProperties:
    @given(oids)
    def test_parse_str_round_trip(self, oid):
        assert Oid.parse(str(oid)) == oid

    @given(oids, sites)
    def test_hint_never_affects_identity(self, oid, hint):
        assert oid.with_hint(hint) == oid
        assert hash(oid.with_hint(hint)) == hash(oid)
        assert oid.with_hint(hint).key() == oid.key()


class TestObjectProperties:
    @given(st.lists(tuples_, max_size=12), oids)
    def test_construction_idempotent(self, tuple_list, oid):
        once = HFObject(oid, tuple_list)
        twice = HFObject(oid, list(once.tuples))
        assert once == twice
        assert len(twice) == len(once)

    @given(st.lists(tuples_, max_size=12), oids)
    def test_duplicates_never_increase_size(self, tuple_list, oid):
        base = HFObject(oid, tuple_list)
        doubled = HFObject(oid, tuple_list + tuple_list)
        assert len(doubled) == len(base)

    @given(st.lists(tuples_, max_size=12), oids)
    def test_order_insensitive_equality(self, tuple_list, oid):
        assert HFObject(oid, tuple_list) == HFObject(oid, list(reversed(tuple_list)))

    @given(st.lists(oids, max_size=10, unique_by=lambda o: o.key()), oids)
    def test_set_object_round_trip(self, members, container):
        set_obj = make_set_object(container, members)
        assert [m.key() for m in set_members(set_obj)] == [m.key() for m in members]


class TestPatternProperties:
    @given(scalars)
    def test_any_matches_everything(self, value):
        assert ANY.match(value, {})[0]

    @given(scalars)
    def test_bind_matches_and_binds_exactly_the_value(self, value):
        ok, bindings = Bind("X").match(value, {})
        assert ok and bindings == (("X", value),)

    @given(scalars)
    def test_literal_is_reflexive(self, value):
        assert Literal(value).match(value, {})[0]

    @given(scalars, scalars)
    def test_use_matches_iff_bound(self, bound, probe):
        ok, _ = Use("X").match(probe, {"X": {bound} if _hashable(bound) else set()})
        literal_ok = Literal(bound).match(probe, {})[0] if _hashable(bound) else False
        assert ok == literal_ok

    @given(
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=-1e6, max_value=1e6),
    )
    def test_range_agrees_with_comparison(self, a, b, probe):
        lo, hi = min(a, b), max(a, b)
        ok, _ = Range(lo, hi).match(probe, {})
        assert ok == (lo <= probe <= hi)

    @given(st.text(min_size=2, max_size=10).filter(lambda s: not s.startswith(("?", "$"))))
    def test_as_pattern_literal_for_plain_text(self, text):
        pattern = as_pattern(text)
        assert isinstance(pattern, Literal)
        assert pattern.match(text, {})[0]


def _hashable(value):
    try:
        hash(value)
    except TypeError:
        return False
    return True
