"""Property-based tests of the query engine over random object graphs.

The headline invariants (DESIGN.md §5):

1. distributed execution ≡ single-site execution, for any graph, any
   placement, any query in the tested family;
2. every query terminates (implicitly: these tests complete) even on
   cyclic graphs;
3. all work-set disciplines agree;
4. the shared-memory engine agrees for any worker count.
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SimCluster
from repro.core.program import compile_query
from repro.core.builder import QueryBuilder
from repro.core.tuples import keyword_tuple, pointer_tuple, tuple_of
from repro.engine.local import run_local
from repro.engine.shared_memory import SharedMemoryEngine
from repro.sim.costs import FREE_COSTS
from repro.storage.memstore import MemStore

# --------------------------------------------------------------------------
# Random-graph strategy: n objects, random edges per object under a random
# pointer key, random keyword assignment from a small vocabulary.
# --------------------------------------------------------------------------

KEYWORDS = ["alpha", "beta", "gamma"]


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    edges = [
        draw(st.lists(st.integers(min_value=0, max_value=n - 1), max_size=3))
        for _ in range(n)
    ]
    kw = [draw(st.sampled_from(KEYWORDS)) for _ in range(n)]
    seeds = draw(st.lists(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=3))
    placement = [draw(st.integers(min_value=0, max_value=2)) for _ in range(n)]
    return n, edges, kw, seeds, placement


@st.composite
def query_families(draw):
    depth = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=4)))
    keyword = draw(st.sampled_from(KEYWORDS))
    keep = draw(st.booleans())
    builder = QueryBuilder("S").begin_loop().select("Pointer", "Edge", "?X")
    builder = builder.deref_keep("X") if keep else builder.deref("X")
    return builder.end_loop(count=depth).select("Keyword", keyword, "?").into("T")


def load_single(n, edges, kw):
    store = MemStore("solo")
    oids = [store.create([]).oid for _ in range(n)]
    for i in range(n):
        tuples = [keyword_tuple(kw[i])] + [pointer_tuple("Edge", oids[j]) for j in edges[i]]
        store.replace(store.get(oids[i]).with_tuples(tuples))
    return store, oids


def load_cluster(n, edges, kw, placement):
    cluster = SimCluster(3, costs=FREE_COSTS)
    stores = [cluster.store(s) for s in cluster.sites]
    oids = [stores[placement[i]].create([]).oid for i in range(n)]
    for i in range(n):
        tuples = [keyword_tuple(kw[i])] + [pointer_tuple("Edge", oids[j]) for j in edges[i]]
        store = stores[placement[i]]
        store.replace(store.get(oids[i]).with_tuples(tuples))
    return cluster, oids


SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestDistributionTransparency:
    @SETTINGS
    @given(graphs(), query_families())
    def test_distributed_equals_local(self, graph, query):
        n, edges, kw, seeds, placement = graph
        program = compile_query(query)

        store, oids = load_single(n, edges, kw)
        local = run_local(program, [oids[s] for s in seeds], store.get)
        local_indices = _indices(oids, local.oid_keys())

        cluster, c_oids = load_cluster(n, edges, kw, placement)
        outcome = cluster.run_query(program, [c_oids[s] for s in seeds])
        assert _indices(c_oids, outcome.result.oid_keys()) == local_indices

    @SETTINGS
    @given(graphs(), query_families())
    def test_disciplines_agree(self, graph, query):
        n, edges, kw, seeds, _ = graph
        program = compile_query(query)
        store, oids = load_single(n, edges, kw)
        results = {
            d: run_local(program, [oids[s] for s in seeds], store.get, discipline=d).oid_keys()
            for d in ("fifo", "lifo", "priority")
        }
        assert results["fifo"] == results["lifo"] == results["priority"]

    @SETTINGS
    @given(graphs(), query_families(), st.integers(min_value=1, max_value=6))
    def test_shared_memory_agrees(self, graph, query, workers):
        n, edges, kw, seeds, _ = graph
        program = compile_query(query)
        store, oids = load_single(n, edges, kw)
        reference = run_local(program, [oids[s] for s in seeds], store.get)
        report = SharedMemoryEngine(program, store.get, workers=workers).run(
            [oids[s] for s in seeds]
        )
        assert report.result.oid_keys() == reference.oid_keys()

    @SETTINGS
    @given(graphs(), query_families())
    def test_duplicate_seeds_are_idempotent(self, graph, query):
        n, edges, kw, seeds, _ = graph
        program = compile_query(query)
        store, oids = load_single(n, edges, kw)
        once = run_local(program, [oids[s] for s in seeds], store.get)
        doubled = run_local(program, [oids[s] for s in seeds + seeds], store.get)
        assert once.oid_keys() == doubled.oid_keys()


class TestTerminationDetectors:
    @SETTINGS
    @given(graphs(), query_families(), st.sampled_from(["weighted", "dijkstra-scholten"]))
    def test_both_detectors_fire_with_same_results(self, graph, query, strategy):
        n, edges, kw, seeds, placement = graph
        program = compile_query(query)
        store, oids = load_single(n, edges, kw)
        expected = _indices(oids, run_local(program, [oids[s] for s in seeds], store.get).oid_keys())

        cluster = SimCluster(3, costs=FREE_COSTS, termination=strategy)
        stores = [cluster.store(s) for s in cluster.sites]
        c_oids = [stores[placement[i]].create([]).oid for i in range(n)]
        for i in range(n):
            tuples = [keyword_tuple(kw[i])] + [pointer_tuple("Edge", c_oids[j]) for j in edges[i]]
            stores[placement[i]].replace(stores[placement[i]].get(c_oids[i]).with_tuples(tuples))
        outcome = cluster.run_query(program, [c_oids[s] for s in seeds])
        assert _indices(c_oids, outcome.result.oid_keys()) == expected


def _indices(oids, oid_keys):
    lookup = {oid.key(): i for i, oid in enumerate(oids)}
    return sorted(lookup[k] for k in oid_keys)
