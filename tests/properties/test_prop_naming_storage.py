"""Property tests for naming (migration) and storage (snapshots).

* any sequence of migrations leaves exactly one holder per object,
  resolution always converges to it, and query answers never change;
* snapshots round-trip arbitrary stores exactly.
"""

import io
import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SimCluster
from repro.core.builder import QueryBuilder
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple, tuple_of
from repro.naming.names import find_holder, resolution_path
from repro.sim.costs import FREE_COSTS
from repro.storage.memstore import MemStore
from repro.storage.snapshot import load_store, save_store, snapshot_round_trip_equal

SETTINGS = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def migration_scenarios(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    edges = [
        draw(st.lists(st.integers(min_value=0, max_value=n - 1), max_size=2))
        for _ in range(n)
    ]
    moves = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=2),
            ),
            max_size=8,
        )
    )
    return n, edges, moves


QUERY = compile_query(
    QueryBuilder("S")
    .begin_loop()
    .select("Pointer", "Edge", "?X")
    .deref_keep("X")
    .end_loop()
    .select("Keyword", "K", "?")
    .into("T")
)


def build(n, edges):
    cluster = SimCluster(3, costs=FREE_COSTS)
    store0 = cluster.store("site0")
    oids = [store0.create([keyword_tuple("K")]).oid for _ in range(n)]
    for i in range(n):
        tuples = [pointer_tuple("Edge", oids[j]) for j in edges[i]]
        if tuples:
            store0.replace(store0.get(oids[i]).with_tuples(tuples))
    return cluster, oids


class TestMigrationProperties:
    @SETTINGS
    @given(migration_scenarios())
    def test_single_holder_and_convergent_resolution(self, scenario):
        n, edges, moves = scenario
        cluster, oids = build(n, edges)
        for obj_index, site_index in moves:
            cluster.migrate(oids[obj_index], cluster.sites[site_index])
        for oid in oids:
            holder = find_holder(oid, cluster.stores)
            assert holder is not None
            holders = [s for s, store in cluster.stores.items() if store.contains(oid)]
            assert holders == [holder]
            for start in cluster.sites:
                path = resolution_path(oid.without_hint(), start, cluster.stores, cluster.forwarding)
                assert path[-1] == holder
                assert len(path) <= 3  # start -> (birth) -> holder

    @SETTINGS
    @given(migration_scenarios())
    def test_queries_invariant_under_migration(self, scenario):
        n, edges, moves = scenario
        cluster, oids = build(n, edges)
        before = cluster.run_query(QUERY, [oids[0]]).result.oid_keys()
        for obj_index, site_index in moves:
            cluster.migrate(oids[obj_index], cluster.sites[site_index])
        after = cluster.run_query(QUERY, [oids[0]]).result.oid_keys()
        assert before == after


scalars = st.one_of(
    st.text(max_size=10),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.binary(max_size=12),
    st.booleans(),
    st.none(),
)
type_names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)


class TestSnapshotProperties:
    @SETTINGS
    @given(
        st.lists(
            st.lists(st.tuples(type_names, scalars, scalars), max_size=5),
            max_size=10,
        )
    )
    def test_round_trip_any_store(self, object_specs):
        store = MemStore("prop")
        for spec in object_specs:
            store.create([tuple_of(t, k, d) for t, k, d in spec])
        buffer = io.BytesIO()
        save_store(store, buffer)
        buffer.seek(0)
        restored = load_store(buffer)
        assert snapshot_round_trip_equal(store, restored)

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=4), max_size=6))
    def test_pointers_survive(self, link_spec):
        store = MemStore("prop")
        oids = [store.create([keyword_tuple("K")]).oid for _ in range(5)]
        for i, target in enumerate(link_spec):
            store.replace(store.get(oids[i % 5]).with_tuple(pointer_tuple("Edge", oids[target])))
        buffer = io.BytesIO()
        save_store(store, buffer)
        buffer.seek(0)
        restored = load_store(buffer)
        for oid in oids:
            assert restored.get(oid).pointers() == store.get(oid).pointers()
