"""Property-based round-trip tests: parser <-> printer, codec <-> wire.

Random query ASTs must survive printing + re-parsing; random messages
must survive binary encoding + decoding.  Together these pin the three
representations (AST, text, wire) to each other.
"""

import string
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ast import Deref, Iterate, Query, Retrieve, Select
from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.patterns import ANY, Bind, Literal, Range, Regex, Use
from repro.core.program import compile_query
from repro.engine.items import WorkItem
from repro.net.codec import decode_message, encode_message
from repro.net.messages import ControlMessage, DerefRequest, QueryId, ResultBatch

names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)
keys = st.one_of(names, st.integers(min_value=-100, max_value=1000))

literal_values = st.one_of(
    st.text(alphabet=string.printable, max_size=12),
    st.integers(min_value=-10_000, max_value=10_000),
)

patterns = st.one_of(
    st.just(ANY),
    st.builds(Literal, literal_values),
    st.builds(Bind, names),
    st.builds(Use, names),
    st.builds(
        lambda lo, hi: Range(min(lo, hi), max(lo, hi)),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    ),
)

selects = st.builds(Select, st.builds(Literal, names), patterns, patterns)
retrieves = st.builds(Retrieve, st.builds(Literal, names), patterns, names)
derefs = st.builds(Deref, names, st.booleans())


def filters(depth: int):
    base = st.one_of(selects, retrieves, derefs)
    if depth <= 0:
        return base
    inner = filters(depth - 1)
    loops = st.builds(
        lambda body, count: Iterate(tuple(body), count),
        st.lists(inner, min_size=1, max_size=3),
        st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    )
    return st.one_of(base, loops)


queries = st.builds(
    lambda source, body, result: Query(source, tuple(body), result),
    names,
    st.lists(filters(2), min_size=1, max_size=4),
    names,
)


class TestParserRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(queries)
    def test_print_then_parse_is_identity(self, query):
        reparsed = parse_query(str(query))
        assert str(reparsed) == str(query)

    @settings(max_examples=100, deadline=None)
    @given(queries)
    def test_reparsed_query_compiles_identically(self, query):
        original = compile_query(query)
        reparsed = compile_query(parse_query(str(query)))
        assert repr(original.ops) == repr(reparsed.ops)
        assert original.enclosing == reparsed.enclosing


oids = st.builds(
    Oid,
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    st.integers(min_value=0, max_value=10_000),
    st.one_of(st.none(), st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)),
)

work_items = st.builds(
    WorkItem,
    oids,
    st.integers(min_value=1, max_value=20),
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=9)),
        max_size=3,
    ).map(tuple),
)

credits = st.builds(
    Fraction,
    st.integers(min_value=1, max_value=2**30),
    st.integers(min_value=1, max_value=2**30),
)

qids = st.builds(QueryId, st.integers(min_value=0, max_value=10**6), names)

emission_values = st.one_of(
    literal_values,
    st.binary(max_size=16),
    st.floats(allow_nan=False, allow_infinity=False),
    oids,
    st.none(),
    st.booleans(),
)


class TestCodecRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(qids, queries, work_items, credits)
    def test_deref_requests(self, qid, query, item, credit):
        msg = DerefRequest(qid, compile_query(query), item, {"credit": credit})
        out = decode_message(encode_message(msg))
        assert out.qid == qid
        assert out.item == item
        assert out.item.iters == item.iters
        assert out.term == {"credit": credit}
        assert repr(out.program.ops) == repr(msg.program.ops)

    @settings(max_examples=120, deadline=None)
    @given(
        qids,
        st.lists(oids, max_size=8),
        st.lists(st.tuples(names, emission_values), max_size=8),
        credits,
    )
    def test_result_batches(self, qid, oid_list, emissions, credit):
        msg = ResultBatch(
            qid, oids=tuple(oid_list), emissions=tuple(emissions), term={"credit": credit}
        )
        out = decode_message(encode_message(msg))
        assert out.oids == msg.oids
        assert out.emissions == msg.emissions
        # Presumed-site hints must survive the wire (stale hints are how
        # forwarding gets exercised).
        for a, b in zip(out.oids, msg.oids):
            assert a.presumed_site == b.presumed_site

    @settings(max_examples=60, deadline=None)
    @given(qids, names, emission_values)
    def test_control_messages(self, qid, kind, payload):
        out = decode_message(encode_message(ControlMessage(qid, kind, payload)))
        assert out.kind == kind and out.payload == payload
