"""Unit tests for the Dijkstra–Scholten termination detector."""

import pytest

from repro.errors import TerminationProtocolError
from repro.termination.dijkstra_scholten import ACK, DijkstraScholtenStrategy


@pytest.fixture
def strategy():
    return DijkstraScholtenStrategy()


def originator(strategy):
    state = strategy.new_state("site0", is_originator=True)
    strategy.on_start(state)
    return state


class TestTreeFormation:
    def test_first_message_engages_with_parent(self, strategy):
        state = strategy.new_state("site1", False)
        controls = strategy.on_recv_work(state, {}, "site0", busy=True)
        assert controls == []
        assert state.engaged and state.parent == "site0"

    def test_second_message_is_acked_immediately(self, strategy):
        state = strategy.new_state("site1", False)
        strategy.on_recv_work(state, {}, "site0", busy=True)
        controls = strategy.on_recv_work(state, {}, "site2", busy=True)
        assert controls == [("site2", ACK, None)]

    def test_originator_is_always_engaged(self, strategy):
        orig = originator(strategy)
        controls = strategy.on_recv_work(orig, {}, "site1", busy=True)
        assert controls == [("site1", ACK, None)]  # root never re-parents


class TestDisengagement:
    def test_leaf_acks_parent_on_drain(self, strategy):
        state = strategy.new_state("site1", False)
        strategy.on_recv_work(state, {}, "site0", busy=True)
        attach, controls = strategy.on_drain(state)
        assert attach == {}
        assert controls == [("site0", ACK, None)]
        assert not state.engaged

    def test_drain_with_outstanding_children_defers_ack(self, strategy):
        state = strategy.new_state("site1", False)
        strategy.on_recv_work(state, {}, "site0", busy=True)
        strategy.on_send_work(state)  # one child outstanding
        _, controls = strategy.on_drain(state)
        assert controls == []  # cannot disengage yet
        controls = strategy.on_control(state, ACK, None, "site2", busy=False)
        assert controls == [("site0", ACK, None)]

    def test_ack_while_busy_does_not_disengage(self, strategy):
        state = strategy.new_state("site1", False)
        strategy.on_recv_work(state, {}, "site0", busy=True)
        strategy.on_send_work(state)
        controls = strategy.on_control(state, ACK, None, "site2", busy=True)
        assert controls == []
        assert state.engaged

    def test_reengagement_after_disengage(self, strategy):
        state = strategy.new_state("site1", False)
        strategy.on_recv_work(state, {}, "site0", busy=True)
        strategy.on_drain(state)
        controls = strategy.on_recv_work(state, {}, "site2", busy=True)
        assert controls == [] and state.parent == "site2"


class TestRootTermination:
    def test_terminates_when_idle_with_zero_deficit(self, strategy):
        orig = originator(strategy)
        assert strategy.is_terminated(orig, busy=False)
        strategy.on_send_work(orig)
        assert not strategy.is_terminated(orig, busy=False)
        strategy.on_control(orig, ACK, None, "site1", busy=False)
        assert strategy.is_terminated(orig, busy=False)

    def test_busy_root_not_terminated(self, strategy):
        assert not strategy.is_terminated(originator(strategy), busy=True)

    def test_non_root_never_terminates(self, strategy):
        state = strategy.new_state("site1", False)
        assert not strategy.is_terminated(state, busy=False)


class TestProtocolErrors:
    def test_ack_without_deficit(self, strategy):
        state = strategy.new_state("site1", False)
        with pytest.raises(TerminationProtocolError):
            strategy.on_control(state, ACK, None, "site0", busy=False)

    def test_unknown_control_kind(self, strategy):
        state = strategy.new_state("site1", False)
        with pytest.raises(TerminationProtocolError):
            strategy.on_control(state, "mystery", None, "site0", busy=False)


class TestOverheadCounters:
    def test_acks_sent_counted(self, strategy):
        state = strategy.new_state("site1", False)
        strategy.on_recv_work(state, {}, "site0", busy=True)
        strategy.on_recv_work(state, {}, "site2", busy=True)  # immediate ack
        strategy.on_drain(state)  # disengage ack
        assert state.acks_sent == 2


class TestFactory:
    def test_make_strategy(self):
        from repro.termination.base import make_strategy

        assert make_strategy("weighted").name == "weighted"
        assert make_strategy("dijkstra-scholten").name == "dijkstra-scholten"
        with pytest.raises(ValueError):
            make_strategy("votes")
