"""Unit tests for the weighted-message (credit) termination detector."""

from fractions import Fraction

import pytest

from repro.errors import TerminationProtocolError
from repro.termination.weights import WeightedStrategy


@pytest.fixture
def strategy():
    return WeightedStrategy()


def originator(strategy):
    state = strategy.new_state("site0", is_originator=True)
    strategy.on_start(state)
    return state


class TestCreditFlow:
    def test_originator_starts_with_unit_credit(self, strategy):
        assert originator(strategy).credit == 1

    def test_send_splits_credit_in_half(self, strategy):
        state = originator(strategy)
        attach = strategy.on_send_work(state)
        assert attach["credit"] == Fraction(1, 2)
        assert state.credit == Fraction(1, 2)

    def test_repeated_splits_never_exhaust(self, strategy):
        state = originator(strategy)
        total_sent = Fraction(0)
        for _ in range(50):
            total_sent += strategy.on_send_work(state)["credit"]
        assert state.credit > 0
        assert total_sent + state.credit == 1  # conservation

    def test_receive_accumulates(self, strategy):
        state = strategy.new_state("site1", is_originator=False)
        strategy.on_recv_work(state, {"credit": Fraction(1, 4)}, "site0", busy=True)
        strategy.on_recv_work(state, {"credit": Fraction(1, 8)}, "site2", busy=True)
        assert state.credit == Fraction(3, 8)

    def test_drain_returns_everything(self, strategy):
        state = strategy.new_state("site1", is_originator=False)
        strategy.on_recv_work(state, {"credit": Fraction(1, 4)}, "site0", busy=True)
        attach, controls = strategy.on_drain(state)
        assert attach["credit"] == Fraction(1, 4)
        assert state.credit == 0
        assert controls == []


class TestTermination:
    def test_simple_round_trip(self, strategy):
        orig = originator(strategy)
        remote = strategy.new_state("site1", is_originator=False)
        attach = strategy.on_send_work(orig)
        strategy.on_recv_work(remote, attach, "site0", busy=True)
        strategy.on_originator_drain(orig)
        assert not strategy.is_terminated(orig, busy=False)  # half still out
        returned, _ = strategy.on_drain(remote)
        strategy.on_result(orig, returned)
        assert strategy.is_terminated(orig, busy=False)

    def test_not_terminated_while_busy(self, strategy):
        orig = originator(strategy)
        strategy.on_originator_drain(orig)
        assert strategy.is_terminated(orig, busy=False)
        assert not strategy.is_terminated(orig, busy=True)

    def test_non_originator_never_terminates(self, strategy):
        state = strategy.new_state("site1", is_originator=False)
        assert not strategy.is_terminated(state, busy=False)

    def test_deep_fan_out_conserves(self, strategy):
        # site0 -> site1 -> site2 -> site3; every hop splits, every site
        # returns its remainder; the originator recovers exactly 1.
        orig = originator(strategy)
        sites = [strategy.new_state(f"site{i}", False) for i in (1, 2, 3)]
        attach = strategy.on_send_work(orig)
        strategy.on_originator_drain(orig)
        prev = None
        for state in sites:
            strategy.on_recv_work(state, attach, "prev", busy=True)
            attach = strategy.on_send_work(state)
        # last attach goes nowhere: feed it back as if a 4th site drained instantly
        last = strategy.new_state("site4", False)
        strategy.on_recv_work(last, attach, "site3", busy=True)
        ret, _ = strategy.on_drain(last)
        strategy.on_result(orig, ret)
        for state in sites:
            ret, _ = strategy.on_drain(state)
            strategy.on_result(orig, ret)
        assert strategy.is_terminated(orig, busy=False)


class TestProtocolErrors:
    def test_send_without_credit(self, strategy):
        state = strategy.new_state("site1", is_originator=False)
        with pytest.raises(TerminationProtocolError):
            strategy.on_send_work(state)

    def test_invalid_incoming_credit(self, strategy):
        state = strategy.new_state("site1", is_originator=False)
        with pytest.raises(TerminationProtocolError):
            strategy.on_recv_work(state, {"credit": 0.5}, "site0", busy=True)  # float, not Fraction
        with pytest.raises(TerminationProtocolError):
            strategy.on_recv_work(state, {}, "site0", busy=True)

    def test_over_recovery_detected(self, strategy):
        orig = originator(strategy)
        strategy.on_originator_drain(orig)
        with pytest.raises(TerminationProtocolError, match="over-recovered"):
            strategy.on_result(orig, {"credit": Fraction(1, 2)})

    def test_unexpected_control_message(self, strategy):
        orig = originator(strategy)
        with pytest.raises(TerminationProtocolError):
            strategy.on_control(orig, "ds-ack", None, "site1", busy=False)
