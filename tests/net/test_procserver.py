"""Process-mode specifics: the control channel under ClusterConfig(processes=True).

The cross-transport conformance suite runs the shared scenarios against
``async+procs``; this file covers what only process mode can get wrong —
the StoreProxy/MemStore surface contract, typed child-death errors, the
GIVE_UP push path, dynamic reliable arming, and the CREDIT merge.
"""

import time

import pytest

from repro.api import make_cluster
from repro.config import ClusterConfig
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.errors import (
    ChildProcessDied,
    ConfigError,
    DuplicateObject,
    TerminationLost,
)
from repro.faults import FaultPlan
from repro.faults.reliable import ReliableConfig

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def proc_cluster(sites=2, **kwargs):
    return make_cluster("async", sites, config=ClusterConfig(processes=True, **kwargs))


def build_chain(cluster, length=6):
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


class TestStoreProxyParity:
    """StoreProxy must be a full MemStore drop-in (satellite: audited
    surface + introspective test so future MemStore growth fails here)."""

    def test_surface_superset_of_memstore(self):
        from repro.net.procserver import StoreProxy
        from repro.storage.memstore import MemStore

        def surface(cls):
            keep = set()
            for name, member in vars(cls).items():
                if name.startswith("_") and name not in ("__len__", "__contains__"):
                    continue
                if callable(member) or isinstance(member, property):
                    keep.add(name)
            return keep

        missing = surface(MemStore) - surface(StoreProxy)
        assert not missing, f"StoreProxy lacks MemStore members: {sorted(missing)}"

    def test_full_surface_against_a_live_child(self):
        with proc_cluster() as cluster:
            store = cluster.store("site0")
            a = store.create([keyword_tuple("K")])
            b = store.create([keyword_tuple("K")])
            assert store.contains(a.oid) and a.oid in store
            assert len(store) == 2
            assert {o.oid.key() for o in [a, b]} == {oid.key() for oid in store.oids()}
            assert {obj.oid.key() for obj in store.objects()} == {
                a.oid.key(),
                b.oid.key(),
            }
            assert [o.oid.key() for o in store.scan(lambda o: o.oid == a.oid)] == [
                a.oid.key()
            ]
            epoch_before = store.epoch
            store.replace(store.get(a.oid).with_tuple(keyword_tuple("X")))
            assert store.epoch > epoch_before
            assert store.alloc_high >= 2
            with pytest.raises(DuplicateObject):
                store.put(a)
            store.put(store.get(a.oid), overwrite=True)  # idempotent path
            removed = store.remove(b.oid)
            assert removed.oid == b.oid
            assert not store.contains(b.oid) and b.oid not in store
            assert len(store) == 1
            assert "site0" in repr(store)

    def test_rejects_simulator_config_handed_directly(self):
        # Belt for configs minted with processes=False then given to the
        # process transport: require_default still raises typed.
        from repro.net.procserver import ProcessCluster
        from repro.sim.costs import PAPER_COSTS

        with pytest.raises(ConfigError):
            ProcessCluster(2, config=ClusterConfig(costs=PAPER_COSTS))


class TestChildDeath:
    """A dead child must surface as a typed error naming the site —
    never a bare 'no control reply' nor a silent 30s hang."""

    def test_kill_mid_query_raises_termination_lost_naming_site(self):
        plan = FaultPlan(seed=11).link("site0", "site1", drop=1.0)
        cluster = proc_cluster(fault_plan=plan)
        try:
            oids = build_chain(cluster)
            qid = cluster.submit(CLOSURE, [oids[0]])  # hangs on the dead link
            cluster._links["site0"].process.kill()
            started = time.monotonic()
            with pytest.raises(TerminationLost) as excinfo:
                cluster.wait(qid, timeout_s=30.0)
            assert time.monotonic() - started < 10.0, "death must beat the backstop"
            assert excinfo.value.site == "site0"
            assert "site0" in str(excinfo.value)
        finally:
            cluster.close()

    def test_control_requests_against_a_dead_child_fail_typed(self):
        cluster = proc_cluster()
        try:
            link = cluster._links["site1"]
            link.process.kill()
            link.process.join(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while not link.dead and time.monotonic() < deadline:
                time.sleep(0.01)  # reader thread sees EOF and marks it
            with pytest.raises(ChildProcessDied) as excinfo:
                cluster.store("site1").contains(cluster.store("site0").create([]).oid)
            assert excinfo.value.site == "site1"
            assert "site1" in str(excinfo.value)
        finally:
            cluster.close()


class TestReliableChannel:
    def test_enable_reliable_dynamically(self):
        with proc_cluster() as cluster:
            assert not cluster.reliable_enabled
            cluster.enable_reliable(ReliableConfig(base_backoff_s=0.01))
            assert cluster.reliable_enabled
            oids = build_chain(cluster)
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert out.result.oid_keys() == {o.key() for o in oids}

    def test_give_up_bounces_surface_as_undeliverable_notes(self):
        # 100% drop + reliable: retries exhaust child-side, the bounce
        # recovers detector credit (the query completes with what it has
        # instead of hanging) and each give-up pushes a typed note to
        # the parent.
        plan = FaultPlan(seed=3).link("site0", "site1", drop=1.0)
        reliable = ReliableConfig(base_backoff_s=0.01, max_backoff_s=0.05, max_retries=2)
        cluster = proc_cluster(fault_plan=plan, reliable=reliable)
        try:
            oids = build_chain(cluster)
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert out.result is not None  # terminated despite the dead link
            assert cluster.undeliverable, "give-ups must reach the parent"
            note = cluster.undeliverable[0]
            assert {note.src, note.dst} <= {"site0", "site1"}
            assert note.kind  # payload type name travelled with the note
        finally:
            cluster.close()


class TestCreditAndFaultStats:
    def test_credit_deficit_is_zero_after_clean_completion(self):
        with proc_cluster() as cluster:
            oids = build_chain(cluster)
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert cluster.credit_deficit(out.qid) == 0

    def test_fault_stats_mirror_child_counters(self):
        plan = FaultPlan(seed=5).link("site0", "site1", drop=1.0)
        cluster = proc_cluster(fault_plan=plan)
        try:
            oids = build_chain(cluster)
            qid = cluster.submit(CLOSURE, [oids[0]])
            with pytest.raises(TerminationLost):
                cluster.wait(qid, timeout_s=1.0)
            stats = cluster.fault_stats()
            assert stats["dropped"] > 0
            assert cluster.fault_plan.dropped == stats["dropped"]
            assert cluster.messages_dropped >= stats["dropped"]
        finally:
            cluster.close()


class TestMigrate:
    def test_migrate_moves_object_and_leaves_forwarding(self):
        with proc_cluster() as cluster:
            store = cluster.store("site0")
            obj = store.create([keyword_tuple("K")])
            cluster.migrate(obj.oid, "site1")
            assert cluster.store("site1").contains(obj.oid)
            assert not store.contains(obj.oid)
            assert cluster.forwarding["site0"].lookup(obj.oid) == "site1"
            # The moved object still answers queries addressed by oid.
            out = cluster.run_query(
                'S (Keyword,"K",?) -> T', [obj.oid], timeout_s=30.0
            )
            assert out.result.oid_keys() == {obj.oid.key()}
