"""Tests for the real-concurrency threaded cluster."""

import pytest

from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.net.threaded import ThreadedCluster
from repro.workload import WorkloadSpec, build_graph, closure_query, materialize


def prog(text):
    return compile_query(parse_query(text))


class TestThreadedQueries:
    def test_cross_site_closure(self):
        with ThreadedCluster(3) as cluster:
            s0, s1, s2 = (cluster.store(s) for s in cluster.sites)
            d = s0.create([keyword_tuple("K")])
            s0.replace(s0.get(d.oid).with_tuple(pointer_tuple("Ref", d.oid)))
            c = s2.create([pointer_tuple("Ref", d.oid)])
            b = s1.create([pointer_tuple("Ref", c.oid), keyword_tuple("K")])
            a = s0.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
            outcome = cluster.run_query(
                prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'), [a.oid]
            )
            assert outcome.result.oid_keys() == {a.oid.key(), b.oid.key(), d.oid.key()}

    def test_matches_simulated_cluster_on_workload(self):
        from repro.cluster import SimCluster
        from tests.conftest import oid_indices

        spec = WorkloadSpec(n_objects=90)
        graph = build_graph(n=90)
        query = closure_query("Rand50", "Rand10p", 5)

        sim = SimCluster(3)
        from repro.workload import generate_into_cluster

        w_sim = generate_into_cluster(sim, spec, graph)
        expected = oid_indices(w_sim, sim.run_query(query, [w_sim.root]).result.oid_keys())

        with ThreadedCluster(3) as cluster:
            w_thr = materialize(spec, [cluster.store(s) for s in cluster.sites], graph=graph)
            outcome = cluster.run_query(compile_query(query), [w_thr.root])
            assert oid_indices(w_thr, outcome.result.oid_keys()) == expected

    def test_sequential_queries_reuse_cluster(self):
        with ThreadedCluster(2) as cluster:
            s0 = cluster.store("site0")
            a = s0.create([keyword_tuple("K")])
            for _ in range(3):
                outcome = cluster.run_query(prog('S (Keyword,"K",?) -> T'), [a.oid])
                assert len(outcome.result.oids) == 1

    def test_retrievals_cross_sites(self):
        with ThreadedCluster(2) as cluster:
            s0, s1 = (cluster.store(s) for s in cluster.sites)
            from repro.core.tuples import string_tuple

            remote = s1.create([string_tuple("Title", "Remote Doc"), keyword_tuple("K")])
            local = s0.create([pointer_tuple("Ref", remote.oid), keyword_tuple("K")])
            outcome = cluster.run_query(
                prog('S (Pointer,"Ref",?X) ^X (String,"Title",->title) -> T'), [local.oid]
            )
            assert outcome.result.retrieved["title"] == ["Remote Doc"]

    def test_timeout_on_impossible_query(self):
        from repro.errors import HyperFileError

        with ThreadedCluster(2) as cluster:
            # Query at a site that cannot complete within a tiny timeout is
            # not constructible without breaking the cluster; instead check
            # the timeout machinery with an extremely small budget on a
            # normal query, which must either finish or raise cleanly.
            s0 = cluster.store("site0")
            a = s0.create([keyword_tuple("K")])
            try:
                cluster.run_query(prog('S (Keyword,"K",?) -> T'), [a.oid], timeout_s=0.001)
            except HyperFileError:
                pass  # acceptable: too slow for the budget

    def test_close_is_idempotent(self):
        cluster = ThreadedCluster(2)
        cluster.close()
        cluster.close()
