"""Tests for the comms batching & coalescing layer (repro.net.batching).

Three levels: the :class:`SendBatcher` data structure alone, the wire
codec for the batched frames, and batching wired into full simulated
clusters — where the contract is "same results, fewer messages".
"""

import pytest

from repro.cluster import SimCluster
from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.engine.items import WorkItem
from repro.engine.marktable import MarkTable
from repro.faults import FaultPlan
from repro.net.batching import BatchConfig, SendBatcher, item_key
from repro.net.codec import decode_message, encode_message
from repro.net.messages import BatchedQuery, BatchedResults, QueryId, ResultBatch

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'
PROGRAM = compile_query(parse_query(CLOSURE))
QID = QueryId(1, "site0")


def build_chain(cluster, length=24):
    """A pointer chain striped across all sites; every object keyworded.

    Worst case for coalescing: one remote pointer is discovered at a
    time, so every batch queue flushes with a single item.
    """
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


def build_fanout(cluster, children=24):
    """Best case for coalescing: one root bursts pointers to ``children``
    objects striped across every site, so each destination's send queue
    fills before the working set drains."""
    stores = [cluster.store(s) for s in cluster.sites]
    kids = []
    for i in range(children):
        store = stores[i % len(stores)]
        kid = store.create([keyword_tuple("K")])
        store.replace(kid.with_tuple(pointer_tuple("Ref", kid.oid)))
        kids.append(kid.oid)
    root = stores[0].create(
        [keyword_tuple("K")] + [pointer_tuple("Ref", kid) for kid in kids]
    ).oid
    return root, [root] + kids


def make_item(oid):
    return WorkItem(oid=oid, start=1)


class TestBatchConfig:
    def test_defaults_enable_batching(self):
        assert BatchConfig().enabled
        assert BatchConfig().max_batch == 8

    def test_max_batch_one_disables(self):
        assert not BatchConfig(max_batch=1).enabled
        assert BatchConfig(max_batch=1, linger_s=0.01).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatchConfig(linger_s=-1.0)


class TestSendBatcher:
    def _oids(self, cluster, n=6):
        store = cluster.store("site0")
        return [store.create([keyword_tuple("K")]).oid for _ in range(n)]

    def test_enqueue_take_roundtrip(self):
        cluster = SimCluster(2)
        oids = self._oids(cluster)
        batcher = SendBatcher(BatchConfig(max_batch=8))
        for i, oid in enumerate(oids):
            n = batcher.enqueue_work(QID, "site1", make_item(oid), {"w": i}, now=0.0)
            assert n == i + 1
        items, terms, spans, tried = batcher.take_work(QID, "site1")
        assert [it.oid for it in items] == oids
        assert [t["w"] for t in terms] == list(range(len(oids)))
        assert spans == (None,) * len(oids)
        assert tried == ()
        # Taking drains the queue.
        assert batcher.take_work(QID, "site1") == ((), (), (), ())
        assert not batcher.has_pending

    def test_sent_set_dedup_and_forget(self):
        cluster = SimCluster(2)
        oid = self._oids(cluster, 1)[0]
        batcher = SendBatcher(BatchConfig())
        item = make_item(oid)
        assert not batcher.already_sent(QID, "site1", item)
        batcher.record_sent(QID, "site1", item)
        assert batcher.already_sent(QID, "site1", item)
        # Same oid to a different destination is not deduped.
        assert not batcher.already_sent(QID, "site2", item)
        batcher.forget_sent(QID, "site1", [item])
        assert not batcher.already_sent(QID, "site1", item)

    def test_remote_mark_hints(self):
        cluster = SimCluster(2)
        oid = self._oids(cluster, 1)[0]
        batcher = SendBatcher(BatchConfig())
        hint = (oid.key(), (1,))
        batcher.record_remote_marks(QID, "site1", [hint])
        assert batcher.known_marked(QID, "site1", oid.key(), (1,))
        assert not batcher.known_marked(QID, "site1", oid.key(), (2,))
        assert not batcher.known_marked(QID, "site2", oid.key(), (1,))

    def _marked_table(self, n=5):
        """A MarkTable whose journal holds ``n`` distinct entries."""
        table = MarkTable()
        table.enable_journal()
        for i in range(n):
            table.mark(Oid("site0", i), 1)
        return table, list(table.journal)

    def test_take_hints_cursor_never_resends(self):
        batcher = SendBatcher(BatchConfig(hint_cap=2))
        table, journal = self._marked_table()
        assert batcher.take_hints(QID, "site1", table) == tuple(journal[0:2])
        assert batcher.take_hints(QID, "site1", table) == tuple(journal[2:4])
        assert batcher.take_hints(QID, "site1", table) == tuple(journal[4:5])
        assert batcher.take_hints(QID, "site1", table) == ()

    def test_take_hints_independent_destinations(self):
        batcher = SendBatcher(BatchConfig(hint_cap=2))
        table, journal = self._marked_table()
        # The first flush to site1 trims behind its own cursor (no other
        # destination is known yet), so site2's first flush starts at the
        # trim point — a skipped hint only costs a redundant message.
        assert batcher.take_hints(QID, "site1", table) == tuple(journal[0:2])
        assert batcher.take_hints(QID, "site2", table) == tuple(journal[2:4])
        # From here both cursors are known: every entry still owed to one
        # of them is retained until both have been offered it.
        assert batcher.take_hints(QID, "site1", table) == tuple(journal[2:4])
        assert batcher.take_hints(QID, "site2", table) == tuple(journal[4:5])
        assert batcher.take_hints(QID, "site1", table) == tuple(journal[4:5])
        assert batcher.take_hints(QID, "site1", table) == ()
        assert batcher.take_hints(QID, "site2", table) == ()

    def test_take_hints_trims_journal(self):
        """Satellite regression: the mark journal must not grow without
        bound across flushes — consumed entries are trimmed once every
        destination's hint cursor has passed them."""
        batcher = SendBatcher(BatchConfig(hint_cap=4))
        table = MarkTable()
        table.enable_journal()
        shipped = []
        for round_no in range(64):
            for i in range(4):
                table.mark(Oid("site0", round_no * 4 + i), 1)
            shipped.extend(batcher.take_hints(QID, "site1", table))
            # Retained tail stays bounded by the cap, not the history.
            assert len(table.journal) <= 4
        assert len(shipped) == 64 * 4
        assert len(set(shipped)) == 64 * 4  # nothing resent, nothing lost
        assert table.journal_len == 64 * 4  # absolute length still counts

    def test_take_hints_late_destination_skips_trimmed(self):
        """A destination first flushed after trimming starts at the trim
        point — missing hints are harmless (they only save messages)."""
        batcher = SendBatcher(BatchConfig(hint_cap=8))
        table, journal = self._marked_table()
        assert batcher.take_hints(QID, "site1", table) == tuple(journal)
        assert len(table.journal) == 0  # fully trimmed
        assert batcher.take_hints(QID, "site2", table) == ()
        # New marks flow to both destinations again.
        table.mark(Oid("site0", 99), 1)
        new = list(table.journal)
        assert batcher.take_hints(QID, "site2", table) == tuple(new)
        assert batcher.take_hints(QID, "site1", table) == tuple(new)

    def test_due_work_respects_linger(self):
        cluster = SimCluster(2)
        oid = self._oids(cluster, 1)[0]
        batcher = SendBatcher(BatchConfig(max_batch=8, linger_s=1.0))
        batcher.enqueue_work(QID, "site1", make_item(oid), {}, now=10.0)
        assert batcher.due_work(now=10.5) == []
        assert batcher.due_work(now=11.0) == [(QID, "site1")]

    def test_drop_query_clears_everything(self):
        cluster = SimCluster(2)
        oids = self._oids(cluster, 3)
        batcher = SendBatcher(BatchConfig())
        for oid in oids:
            batcher.enqueue_work(QID, "site1", make_item(oid), {}, now=0.0)
            batcher.record_sent(QID, "site1", make_item(oid))
        batcher.record_remote_marks(QID, "site1", [(oids[0].key(), (1,))])
        assert batcher.drop_query(QID) == 3
        assert not batcher.has_pending
        assert not batcher.already_sent(QID, "site1", make_item(oids[0]))

    def test_item_key_is_exact(self):
        cluster = SimCluster(2)
        oid = self._oids(cluster, 1)[0]
        assert item_key(WorkItem(oid=oid, start=1)) != item_key(WorkItem(oid=oid, start=2))


class TestBatchedFrameCodec:
    def test_batched_query_round_trip(self):
        cluster = SimCluster(2)
        store = cluster.store("site0")
        oids = [store.create([keyword_tuple("K")]).oid for _ in range(3)]
        msg = BatchedQuery(
            QID,
            PROGRAM,
            items=tuple(make_item(o) for o in oids),
            terms=({"weight": (1, 2)}, {"weight": (1, 4)}, {"weight": (1, 8)}),
            marked_hints=((oids[0].key(), (1,)),),
        )
        decoded = decode_message(encode_message(msg))
        assert isinstance(decoded, BatchedQuery)
        assert decoded.qid == msg.qid
        assert [it.oid for it in decoded.items] == oids
        assert decoded.terms == msg.terms
        assert decoded.marked_hints == msg.marked_hints

    def test_batched_results_round_trip(self):
        cluster = SimCluster(2)
        store = cluster.store("site0")
        oids = tuple(store.create([keyword_tuple("K")]).oid for _ in range(2))
        msg = BatchedResults(
            batches=(
                ResultBatch(QID, oids=oids, emissions=(), term={"weight": (1, 2)}),
                ResultBatch(QID, oids=(), emissions=(("title", "X"),), term={}),
            )
        )
        decoded = decode_message(encode_message(msg))
        assert isinstance(decoded, BatchedResults)
        assert decoded.qid == QID
        assert decoded.batches[0].oids == oids
        assert decoded.batches[1].emissions == (("title", "X"),)

    def test_batched_query_requires_items(self):
        with pytest.raises(ValueError):
            BatchedQuery(QID, PROGRAM, items=(), terms=())


class TestClusterBatching:
    def test_same_results_fewer_messages(self):
        """The headline contract: on a fan-out workload batching changes
        message counts, never the result set."""
        plain = SimCluster(3)
        batched = SimCluster(3, batching=BatchConfig(max_batch=8))
        root_p, all_p = build_fanout(plain)
        root_b, all_b = build_fanout(batched)
        out_p = plain.run_query(CLOSURE, [root_p])
        out_b = batched.run_query(CLOSURE, [root_b])
        assert out_p.result.oid_keys() == out_b.result.oid_keys()
        assert out_b.result.oid_keys() == {o.key() for o in all_b}
        assert batched.network.messages_delivered < plain.network.messages_delivered
        stats = batched.total_stats()
        assert stats.batched_items > 0
        assert stats.batch_flushes_size + stats.batch_flushes_drain + stats.batch_flushes_idle > 0

    def test_threshold_one_is_bit_identical(self):
        """max_batch=1 must reproduce the unbatched figures exactly —
        same messages, same bytes, same virtual response time."""
        plain = SimCluster(3)
        degenerate = SimCluster(3, batching=BatchConfig(max_batch=1))
        oids_p = build_chain(plain)
        oids_d = build_chain(degenerate)
        out_p = plain.run_query(CLOSURE, [oids_p[0]])
        out_d = degenerate.run_query(CLOSURE, [oids_d[0]])
        assert out_p.result.oid_keys() == out_d.result.oid_keys()
        assert out_p.response_time == out_d.response_time
        assert plain.network.messages_delivered == degenerate.network.messages_delivered
        assert plain.network.bytes_delivered == degenerate.network.bytes_delivered
        assert degenerate.total_stats().batched_items == 0

    def test_chain_with_nothing_to_coalesce_stays_bit_identical(self):
        """A pure chain discovers one remote pointer at a time, so every
        flush is a singleton — which ships as a plain DerefRequest.  An
        *enabled* batcher must therefore reproduce the unbatched figures
        exactly on this workload (hints are piggyback-only)."""
        plain = SimCluster(3)
        batched = SimCluster(3, batching=BatchConfig(max_batch=8))
        oids_p = build_chain(plain, 30)
        oids_b = build_chain(batched, 30)
        out_p = plain.run_query(CLOSURE, [oids_p[0]])
        out_b = batched.run_query(CLOSURE, [oids_b[0]])
        assert out_p.result.oid_keys() == out_b.result.oid_keys()
        assert out_b.response_time == out_p.response_time
        assert batched.network.messages_delivered == plain.network.messages_delivered
        assert batched.network.bytes_delivered == plain.network.bytes_delivered
        assert batched.total_stats().batched_items == 0

    def test_batched_response_time_better_on_fanout(self):
        plain = SimCluster(3)
        batched = SimCluster(3, batching=BatchConfig(max_batch=8))
        root_p, _ = build_fanout(plain, 30)
        root_b, _ = build_fanout(batched, 30)
        rt_plain = plain.run_query(CLOSURE, [root_p]).response_time
        rt_batched = batched.run_query(CLOSURE, [root_b]).response_time
        assert rt_batched < rt_plain

    def test_sent_set_suppression_counts(self):
        """A diamond graph re-discovers the same remote pointer twice;
        the sent-set suppresses the second send entirely."""
        cluster = SimCluster(2, batching=BatchConfig(max_batch=8))
        s0, s1 = cluster.store("site0"), cluster.store("site1")
        shared = s1.create([keyword_tuple("K")])
        s1.replace(shared.with_tuple(pointer_tuple("Ref", shared.oid)))
        left = s0.create([pointer_tuple("Ref", shared.oid), keyword_tuple("K")])
        right = s0.create([pointer_tuple("Ref", shared.oid), keyword_tuple("K")])
        root = s0.create(
            [pointer_tuple("Ref", left.oid), pointer_tuple("Ref", right.oid), keyword_tuple("K")]
        )
        out = cluster.run_query(CLOSURE, [root.oid])
        assert shared.oid.key() in out.result.oid_keys()
        assert cluster.total_stats().sends_suppressed >= 1

    def test_batching_with_down_site_still_terminates(self):
        cluster = SimCluster(3, batching=BatchConfig(max_batch=8))
        oids = build_chain(cluster)
        cluster.set_down("site1")
        out = cluster.run_query(CLOSURE, [oids[0]])
        # The down site's branch is written off; the query still ends.
        assert len(out.result.oid_keys()) < len(oids)

    def test_batching_under_chaos_with_reliable_channel(self):
        """A retransmitted batch must dedup as a unit: full results and
        exact credit conservation under drop/duplicate/reorder chaos."""
        from fractions import Fraction

        cluster = SimCluster(
            3,
            fault_plan=FaultPlan(seed=7, drop=0.15, duplicate=0.1, reorder=0.2),
            reliable=True,
            batching=BatchConfig(max_batch=4),
        )
        oids = build_chain(cluster)
        qid = cluster.submit(CLOSURE, [oids[0]])
        out = cluster.wait(qid)
        assert out.result.oid_keys() == {o.key() for o in oids}
        ctx = cluster.node(qid.originator).contexts[qid]
        assert ctx.term_state.recovered == Fraction(1)

    def test_deadline_expiry_drops_pending_batches(self):
        cluster = SimCluster(3, fault_plan=FaultPlan(seed=1, drop=1.0),
                             batching=BatchConfig(max_batch=8))
        oids = build_chain(cluster)
        out = cluster.run_query(CLOSURE, [oids[0]], deadline_s=0.5)
        assert out.result.partial

    def test_mark_hints_can_be_disabled(self):
        cluster = SimCluster(3, batching=BatchConfig(max_batch=8, mark_hints=False))
        oids = build_chain(cluster)
        out = cluster.run_query(CLOSURE, [oids[0]])
        assert out.result.oid_keys() == {o.key() for o in oids}

    def test_tracer_records_batch_events(self):
        from repro.tracing import QueryTracer

        cluster = SimCluster(3, batching=BatchConfig(max_batch=4))
        root, _ = build_fanout(cluster)
        tracer = QueryTracer(kinds=["batch_flush", "batch_recv"])
        cluster.attach_tracer(tracer)
        cluster.run_query(CLOSURE, [root])
        assert tracer.count("batch_flush") > 0
        assert tracer.count("batch_recv") > 0


class TestWallClockBatching:
    def test_threaded_cluster_batched_results_match(self):
        from repro.net.threaded import ThreadedCluster

        with ThreadedCluster(3, batching=BatchConfig(max_batch=4)) as cluster:
            root, everything = build_fanout(cluster)
            out = cluster.run_query(PROGRAM, [root])
            assert out.result.oid_keys() == {o.key() for o in everything}
            assert cluster.total_stats().batched_items > 0

    def test_socket_cluster_batched_frames_cross_the_wire(self):
        from repro.net.sockets import SocketCluster

        with SocketCluster(3, batching=BatchConfig(max_batch=4)) as cluster:
            root, everything = build_fanout(cluster)
            out = cluster.run_query(PROGRAM, [root])
            assert out.result.oid_keys() == {o.key() for o in everything}
            assert cluster.total_stats().batched_items > 0
