"""Tests for the simulated network/host layer."""

import pytest

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.errors import UnknownSite
from repro.net.messages import Envelope, QueryId, ResultBatch
from repro.net.simnet import SimNetwork
from repro.server.node import ServerNode
from repro.sim.costs import PAPER_COSTS
from repro.sim.kernel import Simulator
from repro.storage.memstore import MemStore


def two_host_network():
    sim = Simulator()
    net = SimNetwork(sim)
    nodes = [ServerNode(f"site{i}", MemStore(f"site{i}")) for i in range(2)]
    hosts = [net.attach(n) for n in nodes]
    return sim, net, nodes, hosts


class TestDelivery:
    def test_latency_applied(self):
        cluster = SimCluster(2)
        s0, s1 = cluster.store("site0"), cluster.store("site1")
        b = s1.create([keyword_tuple("K")])
        s1.replace(s1.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        a = s0.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
        out = cluster.run_query('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T', [a.oid])
        # Serial path: a processed + 1 remote hop + b processed + results.
        assert out.response_time > PAPER_COSTS.remote_pointer_total_s

    def test_unknown_destination(self):
        sim, net, _, _ = two_host_network()
        with pytest.raises(UnknownSite):
            net.deliver(Envelope("site0", "siteX", ResultBatch(QueryId(1, "site0"))), at=0.0)

    def test_delivery_counters(self):
        cluster = SimCluster(2)
        s0, s1 = cluster.store("site0"), cluster.store("site1")
        b = s1.create([keyword_tuple("K")])
        s1.replace(s1.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        a = s0.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
        cluster.run_query('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T', [a.oid])
        assert cluster.network.messages_delivered >= 2  # deref + results
        assert cluster.network.bytes_delivered > 0


class TestAvailability:
    def test_down_site_drops_in_flight_messages(self):
        # A message already on the wire to a site that goes down before
        # arrival is dropped (connection refused), not queued forever.
        sim, net, nodes, hosts = two_host_network()
        env = Envelope("site0", "site1", ResultBatch(QueryId(1, "site1")))
        net.deliver(env, at=1.0)
        net.set_down("site1")
        sim.run()
        assert net.messages_dropped == 1
        assert not nodes[1].inbox

    def test_set_down_unknown_site(self):
        _, net, _, _ = two_host_network()
        with pytest.raises(UnknownSite):
            net.set_down("siteX")
        with pytest.raises(UnknownSite):
            net.set_up("siteX")

    def test_recovery_kicks_pending_work(self):
        cluster = SimCluster(2)
        s0 = cluster.store("site0")
        a = s0.create([keyword_tuple("K")])
        cluster.set_down("site0")
        qid = cluster.submit('S (Keyword,"K",?) -> T', [a.oid], originator="site1")
        cluster.run()
        # site0 is down: the deref was dropped; query completed empty.
        out = cluster.outcome(qid)
        assert out is not None and len(out.result.oids) == 0


class TestCpuSerialisation:
    def test_busy_seconds_accumulate(self):
        cluster = SimCluster(1)
        store = cluster.store("site0")
        oids = [store.create([keyword_tuple("K")]).oid for _ in range(10)]
        cluster.run_query('S (Keyword,"K",?) -> T', oids)
        busy = cluster.node("site0").stats.busy_seconds
        expected_min = 10 * (PAPER_COSTS.object_process_s + PAPER_COSTS.result_insert_s)
        assert busy >= expected_min

    def test_virtual_time_at_least_busy_time(self):
        cluster = SimCluster(1)
        store = cluster.store("site0")
        oids = [store.create([keyword_tuple("K")]).oid for _ in range(10)]
        out = cluster.run_query('S (Keyword,"K",?) -> T', oids)
        assert out.response_time >= cluster.node("site0").stats.busy_seconds * 0.99
