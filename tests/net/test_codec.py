"""Tests for the binary wire codec."""

from fractions import Fraction

import pytest

from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.engine.items import WorkItem
from repro.net.codec import CodecError, decode_message, encode_message
from repro.net.messages import (
    ControlMessage,
    DerefRequest,
    FetchReply,
    FetchRequest,
    PurgeContext,
    QueryId,
    ResultBatch,
    SeedFromSaved,
)
from repro.storage.blobstore import BlobRef

QID = QueryId(7, "site0")


def prog(text='S [ (Pointer,"Ref",?X) ^^X ]^3 (Keyword,"K",?) -> T'):
    return compile_query(parse_query(text))


def roundtrip(message):
    return decode_message(encode_message(message))


class TestDerefRequest:
    def test_round_trip_preserves_everything(self):
        item = WorkItem(Oid("site1", 5, presumed_site="site2"), start=3, iters=((3, 2),))
        msg = DerefRequest(QID, prog(), item, {"credit": Fraction(3, 16)})
        out = roundtrip(msg)
        assert out.qid == QID
        assert out.item == item
        assert out.item.oid.hint == "site2"
        assert out.term == {"credit": Fraction(3, 16)}

    def test_program_semantics_survive(self):
        from repro.core.tuples import keyword_tuple, pointer_tuple
        from repro.engine.local import run_local
        from repro.storage.memstore import MemStore

        msg = DerefRequest(QID, prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'),
                           WorkItem(Oid("s1", 0)))
        decoded = roundtrip(msg).program

        store = MemStore("s1")
        b = store.create([keyword_tuple("K")])
        store.replace(store.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        a = store.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
        original = run_local(msg.program, [a.oid], store.get)
        recoded = run_local(decoded, [a.oid], store.get)
        assert original.oid_keys() == recoded.oid_keys()

    def test_all_pattern_kinds_round_trip(self):
        text = ('S (Number, "Year", 1901..1902) (String, ?, /ab+/) '
                '(String, "Author", ?A) (String, "Maintainer", $A) '
                '(Keyword, "X", ->out) -> T')
        msg = DerefRequest(QID, prog(text), WorkItem(Oid("s1", 0)))
        decoded = roundtrip(msg).program
        assert repr(decoded.ops) == repr(msg.program.ops)

    def test_enclosing_chains_preserved(self):
        text = 'S [ [ (Pointer,"R",?X) ^^X ]^2 (Pointer,"Q",?Y) ^^Y ]^3 -> T'
        msg = DerefRequest(QID, prog(text), WorkItem(Oid("s1", 0)))
        decoded = roundtrip(msg).program
        assert decoded.enclosing == msg.program.enclosing
        assert decoded.loop_counts() == msg.program.loop_counts()


class TestResultBatch:
    def test_round_trip(self):
        msg = ResultBatch(
            QID,
            oids=(Oid("s1", 1), Oid("s2", 9, presumed_site="s3")),
            emissions=(("title", "A Paper"), ("size", 42), ("ratio", 2.5)),
            term={"credit": Fraction(1, 4)},
        )
        out = roundtrip(msg)
        assert out.oids == msg.oids
        assert out.emissions == msg.emissions
        assert out.term == msg.term

    def test_count_only(self):
        out = roundtrip(ResultBatch(QID, count_only=True, count=1234))
        assert out.count_only and out.count == 1234

    def test_bytes_and_blobrefs_in_emissions(self):
        ref = BlobRef(Oid("s1", 3), "Body", 4096)
        msg = ResultBatch(QID, emissions=(("payload", b"\x00\x01\xff"), ("body", ref)))
        out = roundtrip(msg)
        assert out.emissions[0] == ("payload", b"\x00\x01\xff")
        assert out.emissions[1] == ("body", ref)


class TestOtherMessages:
    def test_control(self):
        out = roundtrip(ControlMessage(QID, "ds-ack", None))
        assert out.kind == "ds-ack" and out.payload is None

    def test_seed_from_saved(self):
        out = roundtrip(SeedFromSaved(QID, prog(), QueryId(3, "site1"), {"credit": Fraction(1, 2)}))
        assert out.source_qid == QueryId(3, "site1")


class TestRobustness:
    def test_truncated_frame_rejected(self):
        frame = encode_message(ControlMessage(QID, "ds-ack"))
        with pytest.raises(CodecError):
            decode_message(frame[:-2])

    def test_trailing_garbage_rejected(self):
        frame = encode_message(ControlMessage(QID, "ds-ack"))
        with pytest.raises(CodecError):
            decode_message(frame + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"\xff")

    def test_empty_frame_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"")

    def test_unencodable_value_rejected(self):
        msg = ResultBatch(QID, emissions=(("bad", object()),))
        with pytest.raises(CodecError):
            encode_message(msg)

    def test_unencodable_message_rejected(self):
        with pytest.raises(CodecError):
            encode_message("not a message")

    @pytest.mark.parametrize("value", [0, 1, -1, 127, -128, 2**40, -(2**40)])
    def test_varint_extremes(self, value):
        out = roundtrip(ResultBatch(QID, emissions=(("v", value),)))
        assert out.emissions[0][1] == value

    def test_corrupt_interior_bytes_never_crash(self):
        # Bit-flips must raise CodecError (or decode to a different valid
        # message), never escape with e.g. struct.error or MemoryError.
        frame = bytearray(encode_message(
            DerefRequest(QID, prog(), WorkItem(Oid("s1", 5), start=2))
        ))
        for i in range(len(frame)):
            mutated = bytes(frame[:i]) + bytes((frame[i] ^ 0x5A,)) + bytes(frame[i + 1 :])
            try:
                decode_message(mutated)
            except (CodecError, ValueError):
                pass


class TestWireEconomy:
    def test_experiment_query_frame_is_small(self):
        # The paper: "about 40 bytes" per query message; ours carries the
        # full pattern structure and stays within the same order.
        from repro.workload import closure_query

        msg = DerefRequest(QID, compile_query(closure_query("Tree", "Rand10p", 5)),
                           WorkItem(Oid("site1", 42)))
        assert len(encode_message(msg)) < 120


class TestNewMessageKinds:
    def test_purge_context(self):
        out = roundtrip(PurgeContext(QID))
        assert out.qid == QID

    def test_fetch_request(self):
        out = roundtrip(FetchRequest(7, Oid("s1", 3, presumed_site="s2"), reply_to="site0"))
        assert out.request_id == 7
        assert out.oid.hint == "s2"
        assert out.reply_to == "site0"

    def test_fetch_reply_with_object(self):
        from repro.core.objects import HFObject
        from repro.core.tuples import keyword_tuple, pointer_tuple, text_tuple

        obj = HFObject(
            Oid("s1", 3),
            [
                keyword_tuple("Distributed"),
                pointer_tuple("Ref", Oid("s2", 9)),
                text_tuple("Body", "hello " * 100),
            ],
            size_hint=1234,
        )
        out = roundtrip(FetchReply(9, obj))
        assert out.obj == obj
        assert out.obj.size_bytes == 1234

    def test_fetch_reply_miss(self):
        out = roundtrip(FetchReply(9, None))
        assert out.obj is None


class TestSummaryPiggyback:
    """Wire round-trips for the caching layer's additions (PR 4)."""

    def _summary(self):
        from repro.cache import CacheConfig, build_summary
        from repro.core.tuples import keyword_tuple, pointer_tuple
        from repro.naming.directory import ForwardingTable
        from repro.storage.memstore import MemStore

        store = MemStore("site1")
        a = store.create([keyword_tuple("K")])
        b = store.create([keyword_tuple("K")])
        store.replace(store.get(a.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        return build_summary(
            "site1", store.epoch, store, ForwardingTable("site1"), ("Ref",),
            CacheConfig(bloom_bits=512, bloom_hashes=3),
        )

    def test_result_batch_summary_round_trip(self):
        summary = self._summary()
        out = roundtrip(ResultBatch(QID, summary=summary))
        assert out.summary == summary
        assert out.summary.reach.keys() == summary.reach.keys()
        assert out.summary.reach["Ref"] == summary.reach["Ref"]
        assert out.summary.forward_count == 0

    def test_result_batch_without_summary_unchanged(self):
        out = roundtrip(ResultBatch(QID))
        assert out.summary is None

    def test_count_only_batch_carries_summary(self):
        summary = self._summary()
        out = roundtrip(ResultBatch(QID, count_only=True, count=7, summary=summary))
        assert out.count == 7 and out.summary == summary

    def test_summary_contributes_wire_size(self):
        summary = self._summary()
        plain = ResultBatch(QID).wire_size()
        loaded = ResultBatch(QID, summary=summary).wire_size()
        assert loaded == plain + summary.wire_size()


class TestEnvelopeEpoch:
    def _rt(self, env):
        from repro.net.codec import decode_envelope, encode_envelope

        return decode_envelope(encode_envelope(env), env.dst)

    def test_src_epoch_round_trip(self):
        from repro.net.messages import Envelope

        env = Envelope("site0", "site1", ResultBatch(QID), src_epoch=42)
        assert self._rt(env).src_epoch == 42

    def test_epoch_zero_distinct_from_absent(self):
        from repro.net.messages import Envelope

        assert self._rt(Envelope("a", "b", ResultBatch(QID), src_epoch=0)).src_epoch == 0
        assert self._rt(Envelope("a", "b", ResultBatch(QID))).src_epoch is None

    def test_epoch_does_not_change_modelled_size(self):
        from repro.net.messages import Envelope

        with_epoch = Envelope("a", "b", ResultBatch(QID), src_epoch=9)
        without = Envelope("a", "b", ResultBatch(QID))
        assert with_epoch.size_bytes == without.size_bytes


class TestEnvelopeQoS:
    def _rt(self, env):
        from repro.net.codec import decode_envelope, encode_envelope

        return decode_envelope(encode_envelope(env), env.dst)

    def test_priority_round_trip(self):
        from repro.net.messages import Envelope

        for priority in ("interactive", "batch", None):
            env = Envelope("site0", "site1", ResultBatch(QID), priority=priority)
            assert self._rt(env).priority == priority

    def test_pressure_round_trip(self):
        from repro.net.messages import Envelope

        for pressure in (0, 1, None):
            env = Envelope("site0", "site1", ResultBatch(QID), pressure=pressure)
            assert self._rt(env).pressure == pressure

    def test_unknown_priority_rejected_at_encode(self):
        import pytest

        from repro.net.codec import CodecError, encode_envelope
        from repro.net.messages import Envelope

        with pytest.raises(CodecError):
            encode_envelope(Envelope("a", "b", ResultBatch(QID), priority="bulk"))

    def test_qos_fields_do_not_change_modelled_size(self):
        from repro.net.messages import Envelope

        tagged = Envelope("a", "b", ResultBatch(QID), priority="batch", pressure=1)
        plain = Envelope("a", "b", ResultBatch(QID))
        assert tagged.size_bytes == plain.size_bytes


class TestDeepCreditIntegers:
    """Termination credit is a Fraction whose denominator doubles per
    sequential hop; the varint must carry 2^depth for deep chains.  A
    64-bit cap here silently dropped the message at send time and hung
    the query until TerminationLost (seen on any >62-hop cross-site
    chain on the wire transports)."""

    def test_deep_chain_credit_round_trips(self):
        for depth in (62, 63, 64, 200, 1000):
            credit = Fraction(1, 2 ** depth)
            out = roundtrip(DerefRequest(QID, prog(), WorkItem(Oid("s1", 0)),
                                         {"credit": credit}))
            assert out.term == {"credit": credit}

    def test_absurd_magnitude_still_rejected(self):
        from repro.net.codec import MAX_VARINT_BITS

        too_big = Fraction(1, 2 ** (MAX_VARINT_BITS + 1))
        with pytest.raises(CodecError):
            encode_message(DerefRequest(QID, prog(), WorkItem(Oid("s1", 0)),
                                        {"credit": too_big}))


class TestMembershipFrames:
    """The gossip/view frames round-trip so every transport can carry
    the membership protocol, not just the simulator."""

    def test_heartbeat_round_trip(self):
        from repro.net.messages import Heartbeat

        msg = Heartbeat("site1", (("site0", 3), ("site1", 17), ("site2", 0)))
        out = roundtrip(msg)
        assert out == msg

    def test_heartbeat_empty_table(self):
        from repro.net.messages import Heartbeat

        assert roundtrip(Heartbeat("site9")) == Heartbeat("site9")

    def test_view_change_round_trip(self):
        from repro.net.messages import ViewChange

        msg = ViewChange(
            5,
            (("site0", "up"), ("site1", "leaving"), ("site2", "departed")),
            reason="fail",
        )
        out = roundtrip(msg)
        assert out == msg

    def test_view_change_default_reason(self):
        from repro.net.messages import ViewChange

        msg = ViewChange(0, (("a", "up"),))
        assert roundtrip(msg) == msg
