"""Tests for heterogeneous link latencies (wide-area deployments)."""

import pytest

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.errors import UnknownSite

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def build_hop(cluster):
    s0, s1 = cluster.store("site0"), cluster.store("site1")
    b = s1.create([keyword_tuple("K")])
    s1.replace(s1.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
    a = s0.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
    return a.oid


class TestLinkLatency:
    def test_slow_link_slows_the_query(self):
        fast = SimCluster(2)
        slow = SimCluster(2)
        slow.set_link_latency("site0", "site1", 0.500)  # a long-haul link
        t = {}
        for name, cluster in (("fast", fast), ("slow", slow)):
            seed = build_hop(cluster)
            t[name] = cluster.run_query(CLOSURE, [seed]).response_time
        # The slow run pays the extra latency on the deref and the result
        # return: about 2 x (500 - 20) ms more.
        assert t["slow"] - t["fast"] == pytest.approx(2 * 0.480, rel=0.05)

    def test_latency_is_symmetric(self):
        cluster = SimCluster(2)
        cluster.set_link_latency("site1", "site0", 0.250)
        assert cluster.network.latency("site0", "site1", 0.020) == 0.250
        assert cluster.network.latency("site1", "site0", 0.020) == 0.250

    def test_unaffected_links_keep_default(self):
        cluster = SimCluster(3)
        cluster.set_link_latency("site0", "site1", 0.250)
        assert cluster.network.latency("site0", "site2", 0.020) == 0.020

    def test_results_unchanged_by_latency(self):
        cluster = SimCluster(2)
        cluster.set_link_latency("site0", "site1", 1.0)
        seed = build_hop(cluster)
        out = cluster.run_query(CLOSURE, [seed])
        assert len(out.result.oids) == 2

    def test_validation(self):
        cluster = SimCluster(2)
        with pytest.raises(UnknownSite):
            cluster.set_link_latency("site0", "siteX", 0.1)
        with pytest.raises(ValueError):
            cluster.set_link_latency("site0", "site1", -0.1)
