"""Tests for the TCP socket transport (real frames on loopback)."""

import pytest

from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple, string_tuple
from repro.net.sockets import SocketCluster
from repro.workload import WorkloadSpec, build_graph, closure_query, materialize
from tests.conftest import oid_indices


def build_chain(cluster):
    s0, s1, s2 = (cluster.store(s) for s in cluster.sites)
    d = s0.create([keyword_tuple("K")])
    s0.replace(s0.get(d.oid).with_tuple(pointer_tuple("Ref", d.oid)))
    c = s2.create([pointer_tuple("Ref", d.oid)])
    b = s1.create([pointer_tuple("Ref", c.oid), keyword_tuple("K")])
    a = s0.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
    return a.oid, {a.oid.key(), b.oid.key(), d.oid.key()}


from repro.core.parser import parse_query

PROG = compile_query(
    parse_query('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T')
)


class TestSocketQueries:
    def test_cross_site_closure_over_tcp(self):
        with SocketCluster(3) as cluster:
            seed, expected = build_chain(cluster)
            outcome = cluster.run_query(PROG, [seed])
            assert outcome.result.oid_keys() == expected
            assert cluster.bytes_on_the_wire() > 0

    @pytest.mark.parametrize("termination", ["weighted", "dijkstra-scholten"])
    def test_both_detectors_over_tcp(self, termination):
        with SocketCluster(3, termination=termination) as cluster:
            seed, expected = build_chain(cluster)
            assert cluster.run_query(PROG, [seed]).result.oid_keys() == expected

    def test_matches_simulated_cluster_on_workload(self, small_spec, small_graph):
        from repro.cluster import SimCluster
        from repro.workload import generate_into_cluster

        query = closure_query("Rand50", "Rand10p", 5)
        sim = SimCluster(3)
        w_sim = generate_into_cluster(sim, small_spec, small_graph)
        expected = oid_indices(w_sim, sim.run_query(query, [w_sim.root]).result.oid_keys())

        with SocketCluster(3) as cluster:
            w_sock = materialize(small_spec, [cluster.store(s) for s in cluster.sites],
                                 graph=small_graph)
            outcome = cluster.run_query(compile_query(query), [w_sock.root])
            assert oid_indices(w_sock, outcome.result.oid_keys()) == expected

    def test_retrievals_cross_the_wire(self):
        with SocketCluster(2) as cluster:
            s0, s1 = (cluster.store(s) for s in cluster.sites)
            remote = s1.create([string_tuple("Title", "Far Away"), keyword_tuple("K")])
            local = s0.create([pointer_tuple("Ref", remote.oid)])
            from repro.core.parser import parse_query

            program = compile_query(
                parse_query('S (Pointer,"Ref",?X) ^X (String,"Title",->title) -> T')
            )
            outcome = cluster.run_query(program, [local.oid])
            assert outcome.result.retrieved["title"] == ["Far Away"]

    def test_sequential_queries_reuse_connections(self):
        with SocketCluster(3) as cluster:
            seed, expected = build_chain(cluster)
            first_bytes = None
            for _ in range(3):
                assert cluster.run_query(PROG, [seed]).result.oid_keys() == expected
                if first_bytes is None:
                    first_bytes = cluster.bytes_on_the_wire()
            # Connections persist; later queries ship similar volumes.
            assert cluster.bytes_on_the_wire() < 4 * first_bytes

    def test_close_is_idempotent(self):
        cluster = SocketCluster(2)
        cluster.close()
        cluster.close()

    def test_unknown_site_port(self):
        from repro.errors import UnknownSite

        with SocketCluster(2) as cluster:
            with pytest.raises(UnknownSite):
                cluster.port_of("siteX")


class TestFraming:
    def test_frame_round_trip_over_socketpair(self):
        import socket

        from repro.net.sockets import recv_frame, send_frame

        a, b = socket.socketpair()
        try:
            send_frame(a, b"hello world")
            send_frame(a, b"")
            assert recv_frame(b) == b"hello world"
            assert recv_frame(b) == b""
            a.close()
            assert recv_frame(b) is None  # orderly EOF
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        import socket
        import struct

        from repro.errors import HyperFileError
        from repro.net.sockets import recv_frame

        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 2**31))
            with pytest.raises(HyperFileError, match="exceeds limit"):
                recv_frame(b)
        finally:
            a.close()
            b.close()
