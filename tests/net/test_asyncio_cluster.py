"""Tests for the asyncio transport (framed TCP on an event loop).

The conformance suite already runs every shared scenario on
``transport="async"``; this file covers what is specific to this
transport — the zero-copy codec path (preframing, memoryview decode),
the process-per-site deployment, reconnecting peer links, and the
``timeout_s`` backstop audit: a site that never answers must surface as
:class:`~repro.errors.TerminationLost` on EVERY wall-clock transport,
never as a dead ``wait()``.
"""

import time

import pytest

from repro.api import make_cluster
from repro.config import ClusterConfig
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.errors import HyperFileError, TerminationLost
from repro.faults import FaultPlan
from repro.net.asyncio_cluster import AsyncCluster
from repro.net.codec import encode_message, preframe
from repro.net.messages import QueryId, ResultBatch

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def build_chain(cluster, length=9):
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


class TestInlineAsync:
    def test_cross_site_closure_over_asyncio_tcp(self):
        with AsyncCluster(3) as cluster:
            oids = build_chain(cluster)
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert out.result.oid_keys() == {o.key() for o in oids}
            assert cluster.bytes_on_the_wire() > 0

    def test_sequential_queries_reuse_connections(self):
        with AsyncCluster(3) as cluster:
            oids = build_chain(cluster)
            first = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            second = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert first.result.oid_keys() == second.result.oid_keys()
            # Persistent links: every site dials each peer at most once.
            links = sum(len(site._links) for site in cluster._asites.values())
            assert links <= len(cluster.sites) * (len(cluster.sites) - 1)

    def test_close_is_idempotent(self):
        cluster = AsyncCluster(2)
        cluster.close()
        cluster.close()

    def test_queued_frames_survive_a_crash_window(self):
        """set_down freezes the drain task; already-delivered frames are
        processed after set_up rather than lost (socket-transport parity)."""
        with AsyncCluster(2) as cluster:
            oids = build_chain(cluster, 4)
            cluster.set_down("site1")
            assert cluster.is_down("site1")
            cluster.set_up("site1")
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert out.result.oid_keys() == {o.key() for o in oids}


class TestTimeoutBackstop:
    """The timeout_s plumbing audit: a hung query must end in
    TerminationLost on every wall-clock transport, never a dead wait.

    ``set_down`` is not a hang on the threaded transport (it bounces
    work back as ``Undeliverable`` so the sender re-absorbs credit), so
    the hang inducer here is a fault plan that silently drops every
    frame on the site0–site1 link: the credit those frames carry is
    lost, the detector can never fire, and only the wall-clock backstop
    stands between the caller and a dead wait.
    """

    @pytest.mark.parametrize("transport", ["threaded", "sockets", "async"])
    def test_hung_query_yields_termination_lost(self, transport):
        plan = FaultPlan(seed=7).link("site0", "site1", drop=1.0)
        cluster = make_cluster(transport, 3, config=ClusterConfig(fault_plan=plan))
        try:
            oids = build_chain(cluster)
            qid = cluster.submit(CLOSURE, [oids[0]])
            started = time.monotonic()
            with pytest.raises(TerminationLost) as excinfo:
                cluster.wait(qid, timeout_s=1.0)
            elapsed = time.monotonic() - started
            assert elapsed < 10.0, "wait() must honour the wall-clock backstop"
            assert excinfo.value.qid == qid
        finally:
            cluster.close()


class TestZeroCopyCodec:
    def test_preframe_is_cached_per_message(self):
        batch = ResultBatch(QueryId(1, "site0"))
        first = preframe(batch)
        assert preframe(batch) is first  # serialised once, reused per hop
        assert first == encode_message(batch)

    def test_encode_message_reuses_the_preframed_bytes(self):
        batch = ResultBatch(QueryId(2, "site0"))
        cached = preframe(batch)
        assert encode_message(batch) is cached

    def test_memoryview_frames_decode_like_bytes(self):
        from repro.net.codec import decode_message

        frame = encode_message(ResultBatch(QueryId(3, "site1"), oids=()))
        via_view = decode_message(memoryview(frame))
        via_bytes = decode_message(frame)
        assert via_view == via_bytes


class TestProcessMode:
    """One OS process per site (ClusterConfig(processes=True))."""

    def test_async_transport_builds_a_process_cluster(self):
        from repro.net.procserver import ProcessCluster

        cluster = make_cluster("async", 2, config=ClusterConfig(processes=True))
        try:
            assert isinstance(cluster, ProcessCluster)
        finally:
            cluster.close()

    def test_query_and_stats_across_processes(self):
        cluster = make_cluster("async", 2, config=ClusterConfig(processes=True))
        try:
            oids = build_chain(cluster, 6)
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert out.result.oid_keys() == {o.key() for o in oids}
            assert cluster.total_stats().objects_processed >= len(oids)
        finally:
            cluster.close()

    def test_simulator_only_knobs_are_rejected_at_construction(self):
        # Replication/reliable/faults all ported to the control channel;
        # what remains impossible — the discrete-event-kernel knobs — now
        # fails typed at ClusterConfig construction, before any spawn.
        from repro.errors import ConfigError

        with pytest.raises(ConfigError) as excinfo:
            ClusterConfig(processes=True, gc_contexts=True)
        assert "gc_contexts" in str(excinfo.value)
        with pytest.raises(ConfigError):
            ClusterConfig(processes=True, mark_granularity="object")

    def test_replication_is_supported_in_process_mode(self):
        from repro.replication import ReplicationConfig

        cluster = make_cluster(
            "async", 2,
            config=ClusterConfig(processes=True, replication=ReplicationConfig(k=2)),
        )
        try:
            oids = build_chain(cluster, 4)
            assert cluster.replicate_all() == len(oids)
            for oid in oids:
                holders = cluster.replication.directory.sites_of(oid)
                assert len(holders) == 2
                assert all(cluster.store(s).contains(oid) for s in holders)
        finally:
            cluster.close()

    def test_tracing_and_metrics_work_across_processes(self):
        # These used to be rejected alongside replication; now spans ship
        # over the control channel and child registries merge on snapshot.
        from repro.tracing import QueryTracer

        cluster = make_cluster("async", 2, config=ClusterConfig(processes=True))
        try:
            oids = build_chain(cluster, 6)
            tracer = QueryTracer()
            cluster.attach_tracer(tracer)
            cluster.enable_metrics()
            cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert {e.site for e in tracer.events} == {"site0", "site1"}
            snap = cluster.metrics_snapshot()
            names = {m["name"] for m in snap["metrics"]}
            assert "slo.complete_s" in names
        finally:
            cluster.close()
