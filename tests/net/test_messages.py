"""Tests for inter-site message types (paper §3.2)."""

from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.engine.items import WorkItem
from repro.net.messages import (
    ControlMessage,
    DerefRequest,
    Envelope,
    FetchReply,
    FetchRequest,
    QueryId,
    ResultBatch,
    SeedFromSaved,
)


def prog():
    return compile_query(
        parse_query('Root [ (Pointer,"Tree",?X) ^^X ]* (Rand10p, 5, ?) -> T')
    )


QID = QueryId(1, "site0")


class TestQueryId:
    def test_globally_unique_identity(self):
        # "Q.id ... combined with Q.originator forms a globally unique id."
        assert QueryId(1, "site0") == QueryId(1, "site0")
        assert QueryId(1, "site0") != QueryId(1, "site1")
        assert QueryId(1, "site0") != QueryId(2, "site0")

    def test_str(self):
        assert str(QID) == "q1@site0"


class TestDerefRequest:
    def test_carries_the_three_object_fields(self):
        # The message includes O.id, O.start and O.iter# — nothing else
        # about the object (its mvars/next are reconstructed).
        item = WorkItem(Oid("site1", 3), start=3, iters=((3, 2),))
        msg = DerefRequest(QID, prog(), item)
        assert msg.item.oid == Oid("site1", 3)
        assert msg.item.start == 3
        assert dict(msg.item.iters) == {3: 2}

    def test_wire_size_is_small(self):
        # "Our messages send only the query (about 40 bytes ...)".
        msg = DerefRequest(QID, prog(), WorkItem(Oid("site1", 3)))
        assert msg.wire_size() < 150


class TestResultBatch:
    def test_item_count_sums_oids_and_emissions(self):
        batch = ResultBatch(QID, oids=(Oid("s1", 1), Oid("s1", 2)), emissions=(("t", "v"),))
        assert batch.item_count == 3

    def test_count_only_batch(self):
        batch = ResultBatch(QID, count_only=True, count=40)
        assert batch.item_count == 1  # one integration step at originator
        assert batch.wire_size() < 64  # tiny regardless of count

    def test_wire_size_scales_with_items(self):
        small = ResultBatch(QID, oids=(Oid("s1", 1),))
        big = ResultBatch(QID, oids=tuple(Oid("s1", i) for i in range(50)))
        assert big.wire_size() > small.wire_size() * 10


class TestEnvelope:
    def test_size_uses_payload_wire_size(self):
        msg = ResultBatch(QID, oids=(Oid("s1", 1),))
        env = Envelope("site1", "site0", msg)
        assert env.size_bytes == msg.wire_size()

    def test_unknown_payload_gets_default_size(self):
        env = Envelope("a", "b", object())
        assert env.size_bytes == 64


class TestOtherMessages:
    def test_control_message(self):
        msg = ControlMessage(QID, "ds-ack")
        assert msg.wire_size() > 0

    def test_seed_from_saved(self):
        msg = SeedFromSaved(QID, prog(), QueryId(0, "site0"))
        assert msg.source_qid.seq == 0
        assert msg.wire_size() > 20

    def test_fetch_round_trip_sizes(self):
        req = FetchRequest(1, Oid("s1", 2))
        assert req.wire_size() < 64
        reply_empty = FetchReply(1, None)
        assert reply_empty.wire_size() < 64
