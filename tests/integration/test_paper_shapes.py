"""Shape-level sanity checks for the paper's §5 findings.

These are the fast (n=90) versions of the claims the full benchmarks
measure at paper scale (n=270); they pin the qualitative results so a
regression in the cost model or algorithm shows up in the test suite,
not just in benchmark output:

* distributed tree traversal beats single-site (parallelism wins);
* distributed chain traversal is far slower (maximum delay);
* low-locality pointer graphs are bad for distribution, high-locality
  good — with the crossover near the paper's ~80%;
* low-selectivity queries favour the single site, high-selectivity
  queries favour distribution.
"""

import pytest

from repro.cluster import SimCluster
from repro.workload import (
    WorkloadSpec,
    build_graph,
    closure_query,
    generate_into_cluster,
    pointer_key_for,
    traversal_only_query,
)

SPEC = WorkloadSpec(n_objects=90)
GRAPH = build_graph(n=90)

#: The locality/selectivity crossovers need the paper's database size —
#: at n=90 the random-graph closures are too small for parallelism to
#: amortise the fixed message overheads.
FULL_SPEC = WorkloadSpec()
FULL_GRAPH = build_graph()


def response_time(machines, query, spec=SPEC, graph=GRAPH):
    cluster = SimCluster(machines)
    workload = generate_into_cluster(cluster, spec, graph)
    return cluster.run_query(query, [workload.root]).response_time


def full_response_time(machines, query):
    return response_time(machines, query, spec=FULL_SPEC, graph=FULL_GRAPH)


class TestTreeAndChain:
    def test_tree_parallelism_beats_single_site(self):
        query = closure_query("Tree", "Rand10p", 5)
        assert response_time(3, query) < response_time(1, query)

    def test_more_machines_do_not_hurt_tree(self):
        query = closure_query("Tree", "Rand10p", 5)
        assert response_time(9, query) <= response_time(3, query) * 1.10

    def test_chain_is_far_slower_distributed(self):
        query = closure_query("Chain", "Rand10p", 5)
        single = response_time(1, query)
        distributed = response_time(3, query)
        assert distributed > 3 * single  # paper: 15 s vs 2.7 s (5.5x)

    def test_chain_insensitive_to_machine_count(self):
        # The chain serialises everything; 3 vs 9 machines is a wash.
        query = closure_query("Chain", "Rand10p", 5)
        t3, t9 = response_time(3, query), response_time(9, query)
        assert t9 == pytest.approx(t3, rel=0.15)


class TestLocalitySweep:
    def test_low_locality_hurts_distribution(self):
        query = closure_query(pointer_key_for(0.05), "Rand10p", 5)
        assert full_response_time(3, query) > full_response_time(1, query)

    def test_high_locality_helps_distribution(self):
        query = closure_query(pointer_key_for(0.95), "Rand10p", 5)
        assert full_response_time(3, query) <= full_response_time(1, query)

    def test_more_machines_tolerate_more_remote_references(self):
        # "with more machines we are more capable of handling a higher
        # percentage of remote references"
        query = closure_query(pointer_key_for(0.35), "Rand10p", 5)
        assert full_response_time(9, query) < full_response_time(3, query)


class TestSelectivity:
    def test_unselective_queries_prefer_single_site(self):
        query = traversal_only_query(pointer_key_for(0.95))
        assert full_response_time(3, query) > full_response_time(1, query)

    def test_selective_queries_prefer_distribution(self):
        query = closure_query(pointer_key_for(0.95), "Rand1000p", 7)
        assert full_response_time(3, query) <= full_response_time(1, query)

    def test_returning_more_items_costs_more(self):
        selective = closure_query("Tree", "Rand10p", 5)
        unselective = traversal_only_query("Tree")
        assert full_response_time(3, unselective) > full_response_time(3, selective)
