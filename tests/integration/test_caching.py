"""End-to-end tests of the cross-query caching layer on a cluster.

Each test exercises one cache layer through the full stack — cluster,
node, engine, transport — and checks both the *benefit* (the counters
that prove the cache fired) and the *contract* (answers identical to an
uncached cluster, credit accounting exact to the last fraction).
"""

from fractions import Fraction

from repro.api import credit_deficit
from repro.cache import CacheConfig
from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.workload import WorkloadSpec, build_graph, closure_query, generate_into_cluster

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def star_graph(cluster, spokes=6):
    """A root at site0 pointing at keyworded objects striped over sites.

    Every spoke gets a self-loop: the engine's leaf-drop rule keeps pure
    leaves out of closure results, and these tests want non-trivial
    result sets."""
    stores = [cluster.store(s) for s in cluster.sites]
    targets = []
    for i in range(spokes):
        store = stores[i % len(stores)]
        oid = store.create([keyword_tuple("K")]).oid
        store.replace(store.get(oid).with_tuple(pointer_tuple("Ref", oid)))
        targets.append(oid)
    root = stores[0].create([keyword_tuple("K")])
    obj = stores[0].get(root.oid)
    for t in targets:
        obj = obj.with_tuple(pointer_tuple("Ref", t))
    stores[0].replace(obj)
    return root.oid, targets


def fingerprint(outcome):
    return (
        outcome.result.oid_keys(),
        outcome.result.partial,
        sorted(outcome.result.retrieved),
    )


def total_sent(cluster):
    return sum(node.stats.total_sent for node in cluster.nodes.values())


class TestQueryCache:
    def test_repeated_query_answered_without_messages(self):
        plain = SimCluster(3)
        cached = SimCluster(3, caching=CacheConfig())
        root_p, _ = star_graph(plain)
        root_c, _ = star_graph(cached)

        first_p = plain.run_query(CLOSURE, [root_p])
        first_c = cached.run_query(CLOSURE, [root_c])
        assert fingerprint(first_c) == fingerprint(first_p)

        sent_before = total_sent(cached)
        second = cached.run_query(CLOSURE, [root_c])
        assert fingerprint(second) == fingerprint(first_p)
        # The repeat was served at the originator: not one message moved.
        assert total_sent(cached) == sent_before
        assert cached.node("site0").stats.query_cache_hits == 1
        # And it was cheap: a cache probe, not a distributed traversal.
        assert second.response_time < first_c.response_time

    def test_different_seed_is_not_a_hit(self):
        cached = SimCluster(3, caching=CacheConfig())
        root, targets = star_graph(cached)
        cached.run_query(CLOSURE, [root])
        cached.run_query(CLOSURE, [targets[0]])
        assert cached.node("site0").stats.query_cache_hits == 0


class TestFragmentCache:
    CFG = CacheConfig(query_cache=False, summaries=False)

    def test_repeat_replays_fragments(self):
        plain = SimCluster(3)
        cached = SimCluster(3, caching=self.CFG)
        root_p, _ = star_graph(plain)
        root_c, _ = star_graph(cached)

        first = cached.run_query(CLOSURE, [root_c])
        assert sum(n.stats.cache_hits for n in cached.nodes.values()) == 0

        second = cached.run_query(CLOSURE, [root_c])
        reference = plain.run_query(CLOSURE, [root_p])
        assert fingerprint(second) == fingerprint(first) == fingerprint(reference)
        assert sum(n.stats.cache_hits for n in cached.nodes.values()) > 0
        # Replay is cheaper than evaluation in virtual time.
        assert second.response_time < first.response_time

    def test_credit_stays_exact_across_replays(self):
        cached = SimCluster(3, caching=self.CFG)
        root, _ = star_graph(cached)
        for _ in range(3):
            qid = cached.submit(CLOSURE, [root])
            cached.wait(qid)
            ctx = cached.node(qid.originator).contexts[qid]
            assert ctx.term_state.recovered == Fraction(1)
            assert credit_deficit(cached.nodes, qid) == Fraction(0)


class TestBloomSuppression:
    CFG = CacheConfig(fragments=False, query_cache=False)

    def build(self, cluster):
        """root(site0) -> A(site1) -> D(site0) -> C(site1, leaf).

        In a repeat run, site1's work message (A spawning D) arrives at
        site0 *before* site0 processes D and emits C — so the summary
        received in run 1 is epoch-confirmed for run 2 exactly when the
        leaf send comes up for suppression.
        """
        s0, s1 = cluster.store("site0"), cluster.store("site1")
        c = s1.create([keyword_tuple("K")])  # leaf: no outgoing Ref
        d = s0.create([keyword_tuple("K"), pointer_tuple("Ref", c.oid)])
        a = s1.create([keyword_tuple("K"), pointer_tuple("Ref", d.oid)])
        root = s0.create([keyword_tuple("K"), pointer_tuple("Ref", a.oid)])
        return root.oid

    def test_leaf_send_suppressed_with_exact_credit(self):
        # site1's summary rides back on its result batch mid-query, so
        # the leaf send — which only comes up after site1's spawn message
        # confirmed the epoch — is already suppressed in the first run.
        plain = SimCluster(2)
        cached = SimCluster(2, caching=self.CFG)
        root_p = self.build(plain)
        root_c = self.build(cached)

        reference = plain.run_query(CLOSURE, [root_p])
        qid = cached.submit(CLOSURE, [root_c])
        first = cached.wait(qid)
        assert fingerprint(first) == fingerprint(reference)
        # Plain site0 ships both A and the leaf C; cached ships only A.
        plain_sent = plain.node("site0").stats.messages_sent["DerefRequest"]
        cached_sent = cached.node("site0").stats.messages_sent["DerefRequest"]
        suppressed = cached.node("site0").stats.sends_suppressed_bloom
        assert suppressed == 1
        assert plain_sent - cached_sent == suppressed
        # The termination ledger never noticed the missing send.
        ctx = cached.node(qid.originator).contexts[qid]
        assert ctx.term_state.recovered == Fraction(1)
        assert credit_deficit(cached.nodes, qid) == Fraction(0)

    def test_suppression_repeats_across_queries(self):
        cached = SimCluster(2, caching=self.CFG)
        root = self.build(cached)
        first = cached.run_query(CLOSURE, [root])
        second = cached.run_query(CLOSURE, [root])
        assert fingerprint(second) == fingerprint(first)
        # The summary (unchanged epoch) keeps pruning the leaf each run.
        assert cached.node("site0").stats.sends_suppressed_bloom == 2
        # One summary ever shipped: resends of an unchanged summary are
        # themselves suppressed.
        assert cached.node("site1").stats.summaries_sent == 1


class TestEpochInvalidation:
    def test_mutation_is_visible_to_the_next_query(self):
        plain = SimCluster(3)
        cached = SimCluster(3, caching=CacheConfig())
        root_p, _ = star_graph(plain)
        root_c, _ = star_graph(cached)
        cached.run_query(CLOSURE, [root_c])  # warm every layer

        def grow(cluster, root):
            s0, s1 = cluster.store("site0"), cluster.store("site1")
            new = s1.create([keyword_tuple("K")])
            s1.replace(s1.get(new.oid).with_tuple(pointer_tuple("Ref", new.oid)))
            s0.replace(s0.get(root).with_tuple(pointer_tuple("Ref", new.oid)))
            return new.oid

        new_p = grow(plain, root_p)
        new_c = grow(cached, root_c)
        out_p = plain.run_query(CLOSURE, [root_p])
        out_c = cached.run_query(CLOSURE, [root_c])
        assert fingerprint(out_c) == fingerprint(out_p)
        assert new_c.key() in out_c.result.oid_keys()
        # The stale whole-query entry was dropped, not served.
        assert cached.node("site0").stats.query_cache_hits == 0

    def test_remote_silent_mutation_coherent_after_any_traffic(self):
        """Epoch propagation is piggybacked: a mutation at a remote site
        that sends us nothing is *not yet observable*, so the whole-query
        cache may serve the pre-mutation answer (bounded staleness, see
        docs/CACHING.md).  The first envelope from the mutated site — any
        traffic, any query — closes the window for good."""
        cached = SimCluster(3, caching=CacheConfig())
        root, targets = star_graph(cached)
        baseline = cached.run_query(CLOSURE, [root])

        # Silent remote mutation: grow a spoke at site1 a new keyworded
        # child; site0 (the originator) is not touched and hears nothing.
        s1 = cached.store("site1")
        new = s1.create([keyword_tuple("K")])
        s1.replace(s1.get(new.oid).with_tuple(pointer_tuple("Ref", new.oid)))
        spoke = next(t for t in targets if t.birth_site == "site1")
        s1.replace(s1.get(spoke).with_tuple(pointer_tuple("Ref", new.oid)))

        # Window open: the repeat is a hit and serves the stale answer.
        stale = cached.run_query(CLOSURE, [root])
        assert fingerprint(stale) == fingerprint(baseline)
        assert cached.node("site0").stats.query_cache_hits == 1

        # Any traffic from site1 carries its new epoch...
        other = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"Other",?) -> T'
        cached.run_query(other, [root])

        # ...which invalidates the stale entry: the next repeat recomputes
        # and sees the mutation.
        fresh = cached.run_query(CLOSURE, [root])
        assert cached.node("site0").stats.query_cache_hits == 1
        assert new.oid.key() in fresh.result.oid_keys()

    def test_unchanged_store_keeps_serving_hits(self):
        cached = SimCluster(3, caching=CacheConfig())
        root, _ = star_graph(cached)
        cached.run_query(CLOSURE, [root])
        for _ in range(3):
            cached.run_query(CLOSURE, [root])
        assert cached.node("site0").stats.query_cache_hits == 3


class TestCachingOffBitIdentical:
    """``caching=None`` (and an all-features-off config) must leave the
    cluster's behaviour — message mix, bytes, virtual timings —
    indistinguishable from a build without the caching layer."""

    SPEC = WorkloadSpec(n_objects=60)
    GRAPH = build_graph(n=60)
    QUERY = closure_query("Tree", "Rand10p", 5)

    def run(self, caching):
        cluster = SimCluster(3, caching=caching)
        workload = generate_into_cluster(cluster, self.SPEC, self.GRAPH)
        outcome = cluster.run_query(self.QUERY, [workload.root])
        per_node = {
            site: (
                dict(node.stats.messages_sent),
                node.stats.bytes_sent,
                node.stats.bytes_received,
            )
            for site, node in cluster.nodes.items()
        }
        return fingerprint(outcome), outcome.completed_at, per_node

    def test_disabled_config_matches_no_config(self):
        baseline = self.run(caching=None)
        disabled = self.run(
            caching=CacheConfig(fragments=False, query_cache=False, summaries=False)
        )
        assert disabled == baseline

    def test_enabled_config_changes_only_what_it_claims(self):
        # Sanity check on the comparison itself: with caching *on* the
        # message mix does change (summaries ride along) but the answer
        # does not.
        baseline = self.run(caching=None)
        cached = self.run(caching=CacheConfig())
        assert cached[0] == baseline[0]
