"""Tests for whole-object retrieval through the server (fetch protocol).

The file-interface half of the paper's spectrum: "the server ... can
only retrieve a file given its name or store a new file."  HyperFile
keeps that capability alongside filtering; fetches pay real message and
size-dependent transfer costs, which is exactly why queries that *don't*
ship objects win.
"""

import pytest

from repro.cluster import SimCluster
from repro.core import keyword_tuple, text_tuple
from repro.core.oid import Oid
from repro.errors import HyperFileError
from repro.sim.costs import PAPER_COSTS


@pytest.fixture
def cluster():
    cluster = SimCluster(3)
    s1 = cluster.store("site1")
    obj = s1.create([keyword_tuple("K"), text_tuple("Body", "x" * 50_000)])
    cluster.test_oid = obj.oid  # type: ignore[attr-defined]
    return cluster


class TestFetch:
    def test_remote_fetch_round_trip(self, cluster):
        fetched, elapsed = cluster.fetch_object(cluster.test_oid, via="site0")
        assert fetched is not None
        assert fetched.first("Text", "Body").data == "x" * 50_000
        assert elapsed > PAPER_COSTS.remote_pointer_total_s

    def test_transfer_time_scales_with_size(self, cluster):
        small = cluster.store("site1").create([keyword_tuple("K")])
        _, t_small = cluster.fetch_object(small.oid, via="site0")
        _, t_big = cluster.fetch_object(cluster.test_oid, via="site0")
        expected_extra = 50_000 / PAPER_COSTS.bandwidth_bytes_per_s
        assert t_big - t_small == pytest.approx(expected_extra, rel=0.25)

    def test_local_fetch_is_nearly_free(self, cluster):
        local = cluster.store("site0").create([keyword_tuple("K")])
        obj, elapsed = cluster.fetch_object(local.oid, via="site0")
        assert obj is not None and elapsed < 0.005

    def test_missing_object_returns_none(self, cluster):
        ghost, elapsed = cluster.fetch_object(Oid("site1", 999), via="site0")
        assert ghost is None
        assert elapsed > 0  # the miss still cost a round trip

    def test_migrated_object_chased_via_forwarding(self, cluster):
        cluster.migrate(cluster.test_oid, "site2")
        stale = cluster.test_oid.with_hint("site1")
        fetched, elapsed = cluster.fetch_object(stale, via="site0")
        assert fetched is not None
        # One extra hop versus the direct fetch.
        _, direct = cluster.fetch_object(cluster.test_oid.with_hint("site2"), via="site0")
        assert elapsed > direct

    def test_fetch_from_down_holder_raises(self, cluster):
        cluster.set_down("site1")
        with pytest.raises(HyperFileError, match="never completed"):
            cluster.fetch_object(cluster.test_oid, via="site0")

    def test_concurrent_fetches_keep_ids_apart(self, cluster):
        other = cluster.store("site2").create([keyword_tuple("Other")])
        a, _ = cluster.fetch_object(cluster.test_oid, via="site0")
        b, _ = cluster.fetch_object(other.oid, via="site0")
        assert a.oid.key() == cluster.test_oid.key()
        assert b.oid.key() == other.oid.key()

    def test_query_vs_fetch_economics(self, cluster):
        # Fetching all three bulky objects costs more time than asking
        # the keyword query that touches them server-side — §1's argument.
        s2 = cluster.store("site2")
        extra = [
            s2.create([keyword_tuple("K"), text_tuple("Body", "y" * 50_000)]).oid
            for _ in range(2)
        ]
        oids = [cluster.test_oid] + extra
        fetch_total = 0.0
        for oid in oids:
            _, t = cluster.fetch_object(oid, via="site0")
            fetch_total += t
        outcome = cluster.run_query('S (Keyword, "K", ?) -> T', oids)
        assert outcome.response_time < fetch_total
