"""Acceptance tests for causal tracing, profiling, and telemetry.

The three headline guarantees:

* **Connected span trees on every transport** — each traced query's
  events form one tree rooted at its ``submit``, across the simulator,
  the threaded cluster and the TCP sockets, batching included.
* **The critical path explains the response time** — on the simulator
  the extracted path's duration equals the measured response time up to
  the completing step's own cost (the ``complete`` event is stamped when
  the detector fires, before that step's cost-model charge elapses).
* **Zero observer effect** — attaching a tracer changes no result, no
  timing, and no message count; the untraced fast path is one ``is
  None`` check.
"""

import time
from fractions import Fraction

import pytest

from repro.api import make_cluster
from repro.cluster import SimCluster
from repro.config import ClusterConfig
from repro.core import keyword_tuple, pointer_tuple
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.errors import TerminationLost
from repro.faults import FaultPlan
from repro.net.asyncio_cluster import AsyncCluster
from repro.net.batching import BatchConfig
from repro.net.sockets import SocketCluster
from repro.net.threaded import ThreadedCluster
from repro.profiling import credit_audit, critical_path, render_profile, tree_report
from repro.tracing import FlightRecorderConfig, QueryTracer, events_from_jsonl

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'
CLOSURE_PROG = compile_query(parse_query(CLOSURE))


def build_chain(cluster, length=12):
    """A pointer chain striped across all sites; every object keyworded."""
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


def build_fanout(cluster, children=12):
    stores = [cluster.store(s) for s in cluster.sites]
    kids = []
    for i in range(children):
        store = stores[i % len(stores)]
        kid = store.create([keyword_tuple("K")])
        store.replace(kid.with_tuple(pointer_tuple("Ref", kid.oid)))
        kids.append(kid.oid)
    return stores[0].create(
        [keyword_tuple("K")] + [pointer_tuple("Ref", kid) for kid in kids]
    ).oid


class TestSpanTreeConnectivity:
    def test_sim(self):
        cluster = SimCluster(3)
        oids = build_chain(cluster)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        report = tree_report(tracer, outcome.qid)
        assert report.connected, report.describe()
        assert report.root.site == outcome.qid.originator

    @pytest.mark.parametrize("cluster_cls", [ThreadedCluster, SocketCluster])
    def test_real_transports(self, cluster_cls):
        with cluster_cls(3) as cluster:
            oids = build_chain(cluster)
            tracer = QueryTracer()
            cluster.attach_tracer(tracer)
            outcome = cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=20.0)
            report = tree_report(tracer, outcome.qid)
            assert report.connected, report.describe()
            # The tree genuinely spans sites (work crossed the wire).
            assert len({e.site for e in tracer.events}) == 3

    def test_sim_with_batching(self):
        # Batched frames fan into per-item child spans; the tree must
        # stay connected through batch_flush/batch_recv indirection.
        cluster = SimCluster(3, batching=BatchConfig(max_batch=4))
        root = build_fanout(cluster)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        outcome = cluster.run_query(CLOSURE, [root])
        report = tree_report(tracer, outcome.qid)
        assert report.connected, report.describe()
        kinds = {e.kind for e in tracer.events}
        assert "batch_flush" in kinds and "batch_recv" in kinds

    def test_sim_under_chaos_with_reliable_channel(self):
        cluster = SimCluster(
            3,
            fault_plan=FaultPlan(seed=7, drop=0.15, duplicate=0.1, reorder=0.2),
            reliable=True,
        )
        oids = build_chain(cluster, 24)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        report = tree_report(tracer, outcome.qid)
        assert report.connected, report.describe()


class TestCriticalPath:
    def test_sim_path_duration_matches_response_time(self):
        cluster = SimCluster(3)
        oids = build_chain(cluster)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        path = critical_path(tracer, outcome.qid)
        # The complete event is stamped when the detector fires; the
        # response time additionally includes that completing step's
        # charge (result ingest) and the client link, so the gap is
        # bounded by one cost-model tick of result handling.
        costs = cluster.costs
        tick = (
            costs.result_msg_fixed_s
            + costs.result_item_s * len(outcome.result.oids)
            + 2 * costs.client_link_s
        )
        gap = outcome.response_time - path.duration
        assert 0.0 <= gap <= tick + 1e-9, (gap, tick)
        # And the path is a real multi-hop chain, not a degenerate pair.
        assert path.message_hops >= len(oids) // len(cluster.sites)
        assert path.steps[0].kinds[0] == "submit"
        assert "complete" in path.steps[-1].kinds

    def test_deltas_telescope(self):
        cluster = SimCluster(3)
        oids = build_chain(cluster)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        path = critical_path(tracer, outcome.qid)
        assert sum(s.delta for s in path.steps) == pytest.approx(path.duration)

    def test_render_profile_end_to_end(self):
        cluster = SimCluster(3)
        oids = build_chain(cluster)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        text = render_profile(tracer, outcome.qid)
        assert "span tree OK" in text
        assert "critical path" in text
        assert "credit audit" in text and "LOST" not in text


class TestObserverEffect:
    def _run(self, traced: bool):
        cluster = SimCluster(3)
        oids = build_chain(cluster)
        if traced:
            cluster.attach_tracer(QueryTracer())
            cluster.enable_metrics()
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        stats = cluster.total_stats()
        return (
            outcome.result.oid_keys(),
            outcome.response_time,
            dict(stats.messages_sent),
            stats.bytes_sent,
        )

    def test_tracing_changes_nothing(self):
        # Bit-identical results, virtual timing, message counts and
        # wire bytes — the envelope's span field never reaches
        # size_bytes, and the cost model never sees the tracer.
        assert self._run(traced=True) == self._run(traced=False)


class TestCreditAudit:
    def test_clean_run_loses_nothing(self):
        cluster = SimCluster(3)
        oids = build_chain(cluster)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        audit = credit_audit(tracer, outcome.qid)
        assert audit.entries and audit.lost == 0
        assert all(e.delivered for e in audit.entries)

    def test_lost_credit_explains_termination_deficit(self):
        # Total packet loss, no reliable channel: the detector can never
        # fire, and the audit must attribute the exact missing credit to
        # the sends that never landed.
        cluster = SimCluster(3, fault_plan=FaultPlan(seed=1, drop=1.0))
        oids = build_chain(cluster)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        qid = cluster.submit(CLOSURE, [oids[0]])
        with pytest.raises(TerminationLost) as excinfo:
            cluster.wait(qid)
        audit = credit_audit(tracer, qid)
        assert audit.lost > 0
        assert [e for e in audit.entries if not e.delivered]
        deficit = excinfo.value.deficit
        if deficit is not None:
            assert audit.lost == Fraction(deficit)

    def test_timeout_flagged_in_audit(self):
        cluster = SimCluster(3, fault_plan=FaultPlan(seed=1, drop=1.0))
        oids = build_chain(cluster)
        tracer = QueryTracer()
        cluster.attach_tracer(tracer)
        outcome = cluster.run_query(CLOSURE, [oids[0]], deadline_s=0.5)
        assert outcome.result.partial
        audit = credit_audit(tracer, outcome.qid)
        assert audit.timed_out and audit.lost > 0


class TestObserverEffectEveryTransport:
    """Zero observer effect on every transport, process mode included.

    Wall-clock transports cannot promise identical timing, and traced
    envelopes legitimately carry span varints on real wires, so the
    invariant checked here is the part that must be bit-identical
    everywhere: the result set and the data-plane message counts.
    (Span shipping in process mode rides the control channel, which the
    node counters never see.)
    """

    @pytest.mark.parametrize(
        "transport,processes",
        [("threaded", False), ("sockets", False), ("async", False), ("async", True)],
        ids=["threaded", "sockets", "async", "processes"],
    )
    def test_traced_equals_untraced(self, transport, processes):
        def run(traced):
            config = ClusterConfig(processes=True) if processes else None
            with make_cluster(transport, 3, config=config) as cluster:
                oids = build_chain(cluster)
                if traced:
                    cluster.attach_tracer(QueryTracer())
                    cluster.enable_metrics()
                outcome = cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=30.0)
                stats = cluster.total_stats()
                return outcome.result.oid_keys(), dict(stats.messages_sent)

        assert run(traced=True) == run(traced=False)


class TestProcessModeTracing:
    """The tentpole: spans ship across process boundaries and the
    reconstructed tree is indistinguishable from an in-process trace."""

    def test_tree_connected_path_telescopes_credit_clean(self):
        with AsyncCluster(3, config=ClusterConfig(processes=True)) as cluster:
            oids = build_chain(cluster)
            tracer = QueryTracer()
            cluster.attach_tracer(tracer)
            outcome = cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=30.0)
            report = tree_report(tracer, outcome.qid)
            assert report.connected, report.describe()
            assert report.root.site == outcome.qid.originator
            # Every child process contributed events, in its own span lane.
            assert len({e.site for e in tracer.events}) == 3
            spans = [e.span for e in tracer.events if e.span]
            assert len(spans) == len(set(spans)), "cross-process span collision"
            path = critical_path(tracer, outcome.qid)
            assert path.steps[0].kinds[0] == "submit"
            assert sum(s.delta for s in path.steps) == pytest.approx(path.duration)
            audit = credit_audit(tracer, outcome.qid)
            assert audit.entries and audit.lost == 0

    def test_render_profile_works_cross_process(self):
        with AsyncCluster(3, config=ClusterConfig(processes=True)) as cluster:
            oids = build_chain(cluster)
            tracer = QueryTracer()
            cluster.attach_tracer(tracer)
            outcome = cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=30.0)
            text = render_profile(tracer, outcome.qid)
            assert "span tree OK" in text
            assert "credit audit" in text and "LOST" not in text

    def test_detach_restores_untraced_path(self):
        with AsyncCluster(2, config=ClusterConfig(processes=True)) as cluster:
            s0 = cluster.store("site0")
            obj = s0.create([keyword_tuple("K")])
            tracer = QueryTracer()
            cluster.attach_tracer(tracer)
            cluster.run_query(
                compile_query(parse_query('S (Keyword,"K",?) -> T')),
                [obj.oid],
                timeout_s=20.0,
            )
            drained = len(tracer.events)
            assert drained > 0
            cluster.detach_tracer()
            cluster.run_query(
                compile_query(parse_query('S (Keyword,"K",?) -> T')),
                [obj.oid],
                timeout_s=20.0,
            )
            assert len(tracer.events) == drained


class TestFlightRecorder:
    def test_sim_deadline_expiry_dumps_ring(self, tmp_path):
        cluster = SimCluster(
            3,
            config=ClusterConfig(
                fault_plan=FaultPlan(seed=1, drop=1.0),
                flight_recorder=FlightRecorderConfig(capacity=256, dump_dir=tmp_path),
            ),
        )
        oids = build_chain(cluster)
        outcome = cluster.run_query(CLOSURE, [oids[0]], deadline_s=0.5)
        assert outcome.result.partial
        dumps = sorted(tmp_path.glob("flightrec-*.jsonl"))
        assert dumps, "deadline expiry must dump the flight ring"
        events = events_from_jsonl(dumps[0])
        assert any(e.kind == "submit" for e in events)

    def test_process_crash_dump_attributes_lost_credit(self, tmp_path):
        # A permanent crash of site1, injected via the fault plan: the
        # site goes down and every frame toward it is lost at the wire
        # (drop=1.0 is the wire's view of the dead peer), taking its
        # termination credit with it.  The detector can never fire; the
        # parent must dump the merged per-site flight rings, and a credit
        # audit over that dump must attribute the missing credit to
        # sends that never landed at the crashed site.
        plan = FaultPlan(seed=7).link("site0", "site1", drop=1.0)
        plan.crash("site1", at=0.2)
        config = ClusterConfig(
            processes=True,
            fault_plan=plan,
            flight_recorder=FlightRecorderConfig(capacity=1024, dump_dir=tmp_path),
        )
        with AsyncCluster(3, config=config) as cluster:
            oids = build_chain(cluster, 9)
            qid = cluster.submit(CLOSURE_PROG, [oids[0]])
            with pytest.raises(TerminationLost):
                cluster.wait(qid, timeout_s=1.5)
            dumps = sorted(tmp_path.glob("flightrec-*-termination_lost.jsonl"))
            assert dumps, "TerminationLost must dump the flight ring"
            events = events_from_jsonl(dumps[0])
            audit = credit_audit(events, str(qid))
            lost = [e for e in audit.entries if not e.delivered]
            assert lost, "the audit must surface undelivered credit"
            assert all(e.dst == "site1" for e in lost)
            assert sum(e.credit for e in lost) > 0
            assert "termination_lost" in cluster.flight_recorder.dump_reasons


class TestStreamingStats:
    def test_sim_timeline_samples_on_virtual_clock(self):
        cluster = SimCluster(3, config=ClusterConfig(stats_stream_s=0.05))
        oids = build_chain(cluster)
        cluster.run_query(CLOSURE, [oids[0]])
        timeline = cluster.stats_timeline
        assert len(timeline) >= 2
        assert set(timeline.sites()) == {"site0", "site1", "site2"}
        series = timeline.series("bytes_sent", "site0")
        assert series and series[-1][1] >= series[0][1]

    def test_process_children_push_samples(self):
        config = ClusterConfig(processes=True, stats_stream_s=0.05)
        with AsyncCluster(3, config=config) as cluster:
            oids = build_chain(cluster)
            cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=30.0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if set(cluster.stats_timeline.sites()) == {"site0", "site1", "site2"}:
                    break
                time.sleep(0.05)
            assert set(cluster.stats_timeline.sites()) == {"site0", "site1", "site2"}
            series = cluster.stats_timeline.series("work_depth", "site1")
            assert series, "children must stream work_depth samples"


class TestSLOWatermarks:
    def test_histograms_labelled_by_tenant_and_priority(self):
        cluster = SimCluster(3)
        oids = build_chain(cluster)
        cluster.enable_metrics()
        cluster.run_query(CLOSURE, [oids[0]], client="tenant-a", priority="interactive")
        cluster.run_query(CLOSURE, [oids[0]], client="tenant-b")
        reg = cluster.metrics
        complete = reg.histogram("slo.complete_s", tenant="tenant-a", priority="interactive")
        assert complete.count == 1
        assert complete.quantile(0.99) is not None
        first = reg.histogram("slo.first_result_s", tenant="tenant-a", priority="interactive")
        assert first.count == 1
        # first result can never land after completion
        assert first.sum <= complete.sum + 1e-9
        # Without a QoS config every query runs at the default priority,
        # but the tenant label still separates the series.
        other = reg.histogram("slo.complete_s", tenant="tenant-b", priority="interactive")
        assert other.count == 1

    def test_process_mode_merges_child_slo_histograms(self):
        with AsyncCluster(3, config=ClusterConfig(processes=True)) as cluster:
            oids = build_chain(cluster)
            cluster.enable_metrics()
            cluster.run_query(
                CLOSURE_PROG,
                [oids[0]],
                timeout_s=30.0,
                client="tenant-a",
                priority="interactive",
            )
            snap = cluster.metrics_snapshot()
            slo = [
                m
                for m in snap["metrics"]
                if m["name"] == "slo.complete_s"
                and m["labels"].get("tenant") == "tenant-a"
            ]
            assert slo, "merged snapshot must carry the child's SLO histogram"
            from repro.metrics.registry import quantile_from_snapshot

            assert quantile_from_snapshot(slo[0], 0.99) is not None


class TestMetricsAcrossTransports:
    def test_sim_registry_sees_traffic_and_completions(self):
        cluster = SimCluster(3)
        oids = build_chain(cluster)
        cluster.enable_metrics()
        cluster.run_query(CLOSURE, [oids[0]])
        reg = cluster.metrics
        assert reg.value("cluster.queries_completed_total") == 1
        assert reg.histogram("cluster.response_time_s").count == 1
        sent = sum(
            reg.value("node.messages_sent_total", site=s) or 0 for s in cluster.sites
        )
        assert sent == cluster.total_stats().total_sent
        snapshot = cluster.metrics_snapshot()
        names = {m["name"] for m in snapshot["metrics"]}
        assert "net.wire_latency_s" in names
        assert "node.busy_seconds" in names

    @pytest.mark.parametrize("cluster_cls", [ThreadedCluster, SocketCluster])
    def test_real_transport_snapshot(self, cluster_cls):
        with cluster_cls(2) as cluster:
            s0 = cluster.store("site0")
            obj = s0.create([keyword_tuple("K")])
            cluster.enable_metrics()
            cluster.run_query(
                compile_query(parse_query('S (Keyword,"K",?) -> T')), [obj.oid]
            )
            snapshot = cluster.metrics_snapshot()
            names = {m["name"] for m in snapshot["metrics"]}
            assert "node.messages_received_total" in names or "node.busy_seconds" in names

    def test_snapshot_none_when_never_enabled(self):
        cluster = SimCluster(2)
        assert cluster.metrics_snapshot() is None
