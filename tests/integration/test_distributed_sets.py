"""End-to-end tests of the distributed-set optimisation (paper §5).

"Each server would send back the number of local result items, rather
than pointers to the items themselves ... The portion of this set at
each site would be used to initialize the working set at that site for
the new query."
"""

import pytest

from repro.cluster import SimCluster
from repro.storage.memstore import MemStore
from repro.engine.local import run_local
from repro.core.program import compile_query
from repro.workload import (
    WorkloadSpec,
    build_graph,
    closure_query,
    generate_into_cluster,
    materialize,
    traversal_only_query,
)
from tests.conftest import oid_indices

SPEC = WorkloadSpec(n_objects=90)
GRAPH = build_graph(n=90)


@pytest.fixture
def count_cluster():
    cluster = SimCluster(3, result_mode="count")
    workload = generate_into_cluster(cluster, SPEC, GRAPH)
    return cluster, workload


class TestCountMode:
    def test_counts_match_ship_mode_results(self, count_cluster):
        cluster, workload = count_cluster
        query = traversal_only_query("Tree")
        outcome = cluster.run_query(query, [workload.root])
        counted = sum((outcome.partition_counts or {}).values())

        ship = SimCluster(3)
        w2 = generate_into_cluster(ship, SPEC, GRAPH)
        reference = ship.run_query(query, [w2.root])
        assert counted == len(reference.result.oids)

    def test_partitions_reported_per_site(self, count_cluster):
        cluster, workload = count_cluster
        outcome = cluster.run_query(traversal_only_query("Tree"), [workload.root])
        counts = outcome.partition_counts or {}
        assert set(counts) == set(cluster.sites)  # every site holds a share
        assert all(v > 0 for v in counts.values())

    def test_low_selectivity_cheaper_with_counts(self):
        # The optimisation targets exactly this case: huge result sets.
        query = traversal_only_query("Tree")
        times = {}
        for mode in ("ship", "count"):
            cluster = SimCluster(3, result_mode=mode)
            workload = generate_into_cluster(cluster, SPEC, GRAPH)
            times[mode] = cluster.run_query(query, [workload.root]).response_time
        assert times["count"] < times["ship"]


class TestFollowUpQueries:
    def test_followup_narrows_distributed_set(self, count_cluster):
        cluster, workload = count_cluster
        first = cluster.run_query(traversal_only_query("Tree"), [workload.root])
        followup = cluster.run_followup(
            'T (Rand10p, 5, ?) -> U', first.qid
        )
        # Ground truth: objects in the tree closure carrying Rand10p=5.
        store = MemStore("solo")
        w1 = materialize(SPEC, [store], graph=GRAPH)
        stage2 = run_local(
            compile_query(closure_query("Tree", "Rand10p", 5)), [w1.root], store.get
        )
        measured_count = sum((followup.partition_counts or {}).values())
        assert measured_count == len(stage2.oids)

    def test_followup_ships_no_seed_ids(self, count_cluster):
        cluster, workload = count_cluster
        first = cluster.run_query(traversal_only_query("Tree"), [workload.root])
        before = cluster.total_stats().messages_sent.get("DerefRequest", 0)
        cluster.run_followup('T (Rand10p, 5, ?) -> U', first.qid)
        after = cluster.total_stats().messages_sent.get("DerefRequest", 0)
        # Seeding used SeedFromSaved messages, one per remote site, not a
        # DerefRequest per object.
        assert after == before
        assert cluster.total_stats().messages_sent.get("SeedFromSaved") == 2

    def test_followup_with_no_prior_partition_is_empty(self, count_cluster):
        cluster, workload = count_cluster
        ghost_qid = cluster.run_query('S (Rand10p, 5, ?) -> T', []).qid
        outcome = cluster.run_followup('T (Common, 0, ?) -> U', ghost_qid)
        assert sum((outcome.partition_counts or {}).values()) == 0
