"""Chaos acceptance tests: the reliable channel vs. a lossy network.

The headline contract (docs/FAULTS.md): with the ack/retransmit channel
interposed, a transitive-closure query over a network dropping,
duplicating and reordering messages still terminates with the *full*
result set and exact credit conservation; without it, the same chaos
demonstrably loses credit and the query can never terminate.  Deadlines
bound the damage in the unreliable case, on all three transports.
"""

from fractions import Fraction

import pytest

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.errors import HyperFileError, QueryTimeout
from repro.faults import FaultPlan, ReliableConfig
from repro.net.sockets import SocketCluster
from repro.net.threaded import ThreadedCluster

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'
CLOSURE_PROG = compile_query(parse_query(CLOSURE))

#: Acceptance scenario: every message faces a 15% drop (plus duplicates
#: and reordering) — comfortably above the "at least 10%" bar.
CHAOS = dict(drop=0.15, duplicate=0.1, reorder=0.2, delay_jitter_s=0.005)


def build_chain(cluster, length=30):
    """A pointer chain striped across all sites; every object keyworded."""
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


class TestChaosWithReliableChannel:
    def test_sim_completes_with_full_results(self):
        cluster = SimCluster(3, fault_plan=FaultPlan(seed=7, **CHAOS), reliable=True)
        oids = build_chain(cluster)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        assert outcome.result.oid_keys() == {o.key() for o in oids}
        assert not outcome.result.partial
        # The chaos actually happened and the channel actually worked:
        assert cluster.network.fault_plan.dropped > 0
        assert sum(n.stats.retransmits for n in cluster.nodes.values()) > 0
        assert sum(n.stats.duplicates_dropped for n in cluster.nodes.values()) > 0

    def test_sim_conserves_credit_exactly(self):
        cluster = SimCluster(3, fault_plan=FaultPlan(seed=7, **CHAOS), reliable=True)
        oids = build_chain(cluster)
        qid = cluster.submit(CLOSURE, [oids[0]])
        cluster.wait(qid)
        ctx = cluster.node(qid.originator).contexts[qid]
        assert ctx.term_state.recovered == Fraction(1)

    def test_dijkstra_scholten_terminates_under_chaos(self):
        cluster = SimCluster(
            3, termination="dijkstra-scholten",
            fault_plan=FaultPlan(seed=7, **CHAOS), reliable=True,
        )
        oids = build_chain(cluster)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        # DS termination survives chaos; full-result completeness is only
        # guaranteed by the weighted scheme (see docs/FAULTS.md on the
        # ack/result race), so assert termination and a sane result only.
        assert not outcome.result.partial
        assert len(outcome.result.oid_keys()) > 0

    def test_threaded_completes_with_full_results(self):
        plan = FaultPlan(seed=7, **CHAOS)
        with ThreadedCluster(3, fault_plan=plan, reliable=True) as cluster:
            oids = build_chain(cluster)
            outcome = cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=30.0)
            assert outcome.result.oid_keys() == {o.key() for o in oids}
            assert not outcome.result.partial
            assert plan.dropped > 0

    def test_sockets_completes_with_full_results(self):
        plan = FaultPlan(seed=11, **CHAOS)
        with SocketCluster(3, fault_plan=plan, reliable=True) as cluster:
            oids = build_chain(cluster)
            outcome = cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=30.0)
            assert outcome.result.oid_keys() == {o.key() for o in oids}
            assert not outcome.result.partial
            assert plan.dropped > 0


class TestChaosWithoutReliableChannel:
    def test_sim_hangs_with_lost_credit(self):
        # The *same* scenario minus the channel: dropped work messages
        # take their credit with them, so the detector can never fire —
        # the simulation goes idle and the conservation check shows the
        # originator stuck below full recovery.
        cluster = SimCluster(3, fault_plan=FaultPlan(seed=7, **CHAOS))
        oids = build_chain(cluster)
        qid = cluster.submit(CLOSURE, [oids[0]])
        with pytest.raises(HyperFileError, match="termination detector never fired"):
            cluster.wait(qid)
        ctx = cluster.node(qid.originator).contexts[qid]
        assert ctx.term_state.recovered < Fraction(1)
        assert not ctx.done

    def test_duplicates_alone_break_conservation(self):
        # Duplication without dedup over-recovers credit; the weighted
        # detector notices the protocol violation rather than quietly
        # double-counting.
        from repro.errors import TerminationProtocolError

        cluster = SimCluster(3, fault_plan=FaultPlan(seed=3, duplicate=0.5))
        oids = build_chain(cluster, 12)
        qid = cluster.submit(CLOSURE, [oids[0]])
        with pytest.raises((TerminationProtocolError, HyperFileError)):
            cluster.wait(qid)
            raise HyperFileError("duplicates were not detected")


class TestDeadlines:
    def test_sim_deadline_returns_partial(self):
        cluster = SimCluster(3, fault_plan=FaultPlan(seed=1, drop=1.0))
        oids = build_chain(cluster)
        outcome = cluster.run_query(CLOSURE, [oids[0]], deadline_s=0.5)
        assert outcome.result.partial
        assert len(outcome.result.oid_keys()) >= 1  # the local seed survived
        assert cluster.node("site0").stats.deadline_expiries == 1

    def test_sim_deadline_raise_mode(self):
        cluster = SimCluster(3, fault_plan=FaultPlan(seed=1, drop=1.0))
        oids = build_chain(cluster)
        with pytest.raises(QueryTimeout) as excinfo:
            cluster.run_query(CLOSURE, [oids[0]], deadline_s=0.5, on_deadline="raise")
        assert excinfo.value.result.partial

    def test_sim_deadline_does_not_fire_on_completed_query(self):
        cluster = SimCluster(3)
        oids = build_chain(cluster, 9)
        outcome = cluster.run_query(CLOSURE, [oids[0]], deadline_s=60.0)
        assert not outcome.result.partial
        cluster.run()  # past the would-be deadline: nothing explodes
        assert cluster.node("site0").stats.deadline_expiries == 0

    def test_threaded_deadline_returns_partial(self):
        with ThreadedCluster(3, fault_plan=FaultPlan(seed=1, drop=1.0)) as cluster:
            oids = build_chain(cluster)
            outcome = cluster.run_query(
                CLOSURE_PROG, [oids[0]], deadline_s=0.4, timeout_s=10.0
            )
            assert outcome.result.partial

    def test_sockets_deadline_returns_partial(self):
        with SocketCluster(3, fault_plan=FaultPlan(seed=2, drop=1.0)) as cluster:
            oids = build_chain(cluster)
            outcome = cluster.run_query(
                CLOSURE_PROG, [oids[0]], deadline_s=0.4, timeout_s=10.0
            )
            assert outcome.result.partial

    def test_threaded_deadline_raise_mode(self):
        with ThreadedCluster(3, fault_plan=FaultPlan(seed=1, drop=1.0)) as cluster:
            oids = build_chain(cluster)
            with pytest.raises(QueryTimeout):
                cluster.run_query(
                    CLOSURE_PROG, [oids[0]],
                    deadline_s=0.4, timeout_s=10.0, on_deadline="raise",
                )

    def test_deadline_must_be_positive(self):
        cluster = SimCluster(2)
        with pytest.raises(ValueError):
            cluster.submit(CLOSURE, [], deadline_s=0.0)


class TestCrashSchedules:
    def test_sim_scheduled_crash_and_recovery(self):
        # site1 dies mid-query and comes back; the reliable channel keeps
        # retransmitting frames that were in flight at crash time, so the
        # query still terminates cleanly (possibly minus the branch the
        # originator wrote off while site1 was down).
        plan = FaultPlan(seed=5).crash("site1", at=0.05, recover_at=0.4)
        cluster = SimCluster(3, fault_plan=plan, reliable=True)
        oids = build_chain(cluster)
        outcome = cluster.run_query(CLOSURE, [oids[0]])
        assert not outcome.result.partial
        assert len(outcome.result.oid_keys()) >= 1

    def test_threaded_set_down_set_up_parity(self):
        # ThreadedCluster now mirrors SimCluster's availability API.
        with ThreadedCluster(3) as cluster:
            oids = build_chain(cluster, 12)
            cluster.set_down("site1")
            assert cluster.is_down("site1") and not cluster.is_up("site1")
            partial = cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=10.0)
            # The availability oracle writes the branch off: fewer results.
            assert len(partial.result.oid_keys()) < 12
            cluster.set_up("site1")
            full = cluster.run_query(CLOSURE_PROG, [oids[0]], timeout_s=10.0)
            assert full.result.oid_keys() == {o.key() for o in oids}

    def test_threaded_crash_schedule_validates_sites(self):
        with pytest.raises(Exception):
            ThreadedCluster(2, fault_plan=FaultPlan().crash("nope", at=0.1))

    def test_unknown_destination_is_recorded_not_raised(self):
        # An envelope to a site that does not exist must not kill the
        # routing thread; it is recorded and (for work messages) bounced.
        from repro.net.messages import Envelope, PurgeContext, QueryId

        with ThreadedCluster(2) as cluster:
            cluster.route(Envelope("site0", "ghost", PurgeContext(QueryId(1, "site0"))))
            assert len(cluster.undeliverable) == 1
            assert cluster.undeliverable[0].dst == "ghost"
            # Threads are all still alive.
            assert all(t.thread.is_alive() for t in cluster._threads.values())
