"""Distribution transparency: the distributed algorithm must produce the
same result set as running everything at a single site (DESIGN.md
invariant 1), across machine counts, work-set disciplines, and
termination detectors."""

import pytest

from repro.cluster import SimCluster
from repro.core.program import compile_query
from repro.engine.local import run_local
from repro.storage.memstore import MemStore
from repro.workload import (
    WorkloadSpec,
    bounded_query,
    build_graph,
    closure_query,
    generate_into_cluster,
    materialize,
    unique_query,
)
from tests.conftest import oid_indices

SPEC = WorkloadSpec(n_objects=90)
GRAPH = build_graph(n=90)

QUERIES = [
    closure_query("Tree", "Rand10p", 5),
    closure_query("Chain", "Rand100p", 17),
    closure_query("Rand50", "Common", 0),
    closure_query("Rand95", "Rand10p", 3),
    bounded_query("Chain", 7, "Rand10p", 2),
    unique_query("Tree", 42),
]


@pytest.fixture(scope="module")
def reference():
    """Single-site ground truth per query, as abstract indices."""
    store = MemStore("solo")
    workload = materialize(SPEC, [store], graph=GRAPH)
    out = {}
    for i, query in enumerate(QUERIES):
        result = run_local(compile_query(query), [workload.root], store.get)
        out[i] = oid_indices(workload, result.oid_keys())
    return out


@pytest.mark.parametrize("machines", [1, 3, 9])
@pytest.mark.parametrize("qi", range(len(QUERIES)))
def test_distributed_matches_single_site(reference, machines, qi):
    cluster = SimCluster(machines)
    workload = generate_into_cluster(cluster, SPEC, GRAPH)
    outcome = cluster.run_query(QUERIES[qi], [workload.root])
    assert oid_indices(workload, outcome.result.oid_keys()) == reference[qi]


@pytest.mark.parametrize("discipline", ["fifo", "lifo", "priority"])
def test_discipline_does_not_change_results(reference, discipline):
    cluster = SimCluster(3, discipline=discipline)
    workload = generate_into_cluster(cluster, SPEC, GRAPH)
    outcome = cluster.run_query(QUERIES[0], [workload.root])
    assert oid_indices(workload, outcome.result.oid_keys()) == reference[0]


@pytest.mark.parametrize("strategy", ["weighted", "dijkstra-scholten"])
def test_termination_strategy_does_not_change_results(reference, strategy):
    cluster = SimCluster(9, termination=strategy)
    workload = generate_into_cluster(cluster, SPEC, GRAPH)
    outcome = cluster.run_query(QUERIES[3], [workload.root])
    assert oid_indices(workload, outcome.result.oid_keys()) == reference[3]


def test_originator_site_does_not_change_results(reference):
    for originator in ("site0", "site1", "site2"):
        cluster = SimCluster(3)
        workload = generate_into_cluster(cluster, SPEC, GRAPH)
        outcome = cluster.run_query(QUERIES[0], [workload.root], originator=originator)
        assert oid_indices(workload, outcome.result.oid_keys()) == reference[0]


def test_multi_seed_queries_match(reference):
    store = MemStore("solo")
    w1 = materialize(SPEC, [store], graph=GRAPH)
    seeds = [w1.oids[0], w1.oids[10], w1.oids[45]]
    local = run_local(compile_query(QUERIES[0]), seeds, store.get)
    expected = oid_indices(w1, local.oid_keys())

    cluster = SimCluster(9)
    w9 = generate_into_cluster(cluster, SPEC, GRAPH)
    remote_seeds = [w9.oids[0], w9.oids[10], w9.oids[45]]
    outcome = cluster.run_query(QUERIES[0], remote_seeds)
    assert oid_indices(w9, outcome.result.oid_keys()) == expected
