"""Concurrent multi-query service and larger-scale runs.

The paper's server is "a shared resource": several applications pose
queries against the same sites simultaneously.  The node interleaves
per-query work round-robin; these tests pin the service properties —
isolation (each query's answer is unaffected by the others), fairness
(no query starves), and context bookkeeping — plus a 10x-scale run to
guard against accidental quadratic behaviour.
"""

import time

import pytest

from repro.cluster import SimCluster
from repro.workload import (
    WorkloadSpec,
    build_graph,
    closure_query,
    generate_into_cluster,
    unique_query,
)
from tests.conftest import oid_indices

SPEC = WorkloadSpec(n_objects=90)
GRAPH = build_graph(n=90)


class TestConcurrentQueries:
    def test_ten_interleaved_queries_all_isolated(self):
        cluster = SimCluster(3)
        workload = generate_into_cluster(cluster, SPEC, GRAPH)
        queries = [closure_query("Tree", "Rand10p", v) for v in range(1, 11)]
        qids = [cluster.submit(q, [workload.root]) for q in queries]
        cluster.run()

        # Reference answers from isolated runs on a fresh cluster.
        for query, qid in zip(queries, qids):
            outcome = cluster.outcome(qid)
            assert outcome is not None
            fresh = SimCluster(3)
            w2 = generate_into_cluster(fresh, SPEC, GRAPH)
            expected = fresh.run_query(query, [w2.root])
            assert oid_indices(workload, outcome.result.oid_keys()) == oid_indices(
                w2, expected.result.oid_keys()
            )

    def test_mixed_shapes_share_sites(self):
        cluster = SimCluster(3)
        workload = generate_into_cluster(cluster, SPEC, GRAPH)
        qids = [
            cluster.submit(closure_query("Chain", "Common", 0), [workload.root]),
            cluster.submit(unique_query("Tree", 7), [workload.root]),
            cluster.submit(closure_query("Rand50", "Rand10p", 5), [workload.root]),
        ]
        cluster.run()
        outcomes = [cluster.outcome(q) for q in qids]
        assert all(o is not None for o in outcomes)
        assert len(outcomes[0].result.oids) == SPEC.n_objects  # chain + common
        assert len(outcomes[1].result.oids) <= 1

    def test_concurrent_queries_interleave_rather_than_serialise(self):
        # Two identical tree queries submitted together: each site
        # round-robins between them, so the pair finishes far sooner than
        # twice the single-query time (they overlap on different objects'
        # processing but share each CPU).
        single = SimCluster(3)
        w1 = generate_into_cluster(single, SPEC, GRAPH)
        alone = single.run_query(closure_query("Tree", "Rand10p", 5), [w1.root])

        cluster = SimCluster(3)
        w2 = generate_into_cluster(cluster, SPEC, GRAPH)
        q1 = cluster.submit(closure_query("Tree", "Rand10p", 5), [w2.root])
        q2 = cluster.submit(closure_query("Tree", "Rand10p", 6), [w2.root])
        cluster.run()
        both_done = max(cluster.outcome(q).completed_at for q in (q1, q2))
        # Sharing a CPU, two queries cost ~2x the work; they must not
        # cost meaningfully more than that (no interference overhead).
        assert both_done < 2.3 * alone.response_time

    def test_contexts_tracked_per_query(self):
        cluster = SimCluster(3)
        workload = generate_into_cluster(cluster, SPEC, GRAPH)
        for v in range(1, 6):
            cluster.run_query(closure_query("Tree", "Rand10p", v), [workload.root])
        node = cluster.node("site0")
        assert node.stats.contexts_created == 5
        assert len(node.contexts) == 5


class TestScale:
    def test_10x_database(self):
        spec = WorkloadSpec(n_objects=2700)
        graph = build_graph(n=2700)
        cluster = SimCluster(9)
        workload = generate_into_cluster(cluster, spec, graph)
        started = time.monotonic()
        outcome = cluster.run_query(closure_query("Tree", "Rand10p", 5), [workload.root])
        wall = time.monotonic() - started
        assert outcome.result.stats.objects_processed == 2700
        assert len(outcome.result.oids) > 150  # ~10% of 2700
        assert wall < 20.0  # guard against accidental quadratic blow-ups

    def test_scale_response_time_tracks_paper_model(self):
        # 2700 objects on 9 sites: local work is 300 x 8 ms = 2.4 s per
        # site in parallel; response time must stay the same order.
        spec = WorkloadSpec(n_objects=2700)
        graph = build_graph(n=2700)
        cluster = SimCluster(9)
        workload = generate_into_cluster(cluster, spec, graph)
        outcome = cluster.run_query(closure_query("Tree", "Rand10p", 5), [workload.root])
        assert 2.4 < outcome.response_time < 15.0
