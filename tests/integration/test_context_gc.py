"""Tests for query-context garbage collection."""

import pytest

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def build(cluster):
    s0, s1, s2 = (cluster.store(s) for s in cluster.sites)
    d = s0.create([keyword_tuple("K")])
    s0.replace(s0.get(d.oid).with_tuple(pointer_tuple("Ref", d.oid)))
    c = s2.create([pointer_tuple("Ref", d.oid)])
    b = s1.create([pointer_tuple("Ref", c.oid), keyword_tuple("K")])
    a = s0.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
    return a.oid


class TestContextGC:
    def test_participant_contexts_purged(self):
        cluster = SimCluster(3, gc_contexts=True)
        seed = build(cluster)
        outcome = cluster.run_query(CLOSURE, [seed])
        cluster.run()  # let the purge messages land
        assert outcome.qid not in cluster.node("site1").contexts
        assert outcome.qid not in cluster.node("site2").contexts
        # The originator keeps its context (it holds the final result).
        assert outcome.qid in cluster.node("site0").contexts

    def test_purge_messages_counted(self):
        cluster = SimCluster(3, gc_contexts=True)
        seed = build(cluster)
        cluster.run_query(CLOSURE, [seed])
        cluster.run()
        assert cluster.total_stats().messages_sent.get("PurgeContext") == 2

    def test_default_keeps_contexts_for_distributed_sets(self):
        cluster = SimCluster(3)
        seed = build(cluster)
        outcome = cluster.run_query(CLOSURE, [seed])
        cluster.run()
        assert outcome.qid in cluster.node("site1").contexts

    def test_gc_does_not_change_results(self):
        plain = SimCluster(3)
        gc = SimCluster(3, gc_contexts=True)
        expected = None
        for cluster in (plain, gc):
            seed = build(cluster)
            keys = cluster.run_query(CLOSURE, [seed]).result.oid_keys()
            keys = {(site, lid) for site, lid in keys}
            if expected is None:
                expected = keys
            else:
                assert keys == expected

    def test_repeat_queries_rebuild_contexts(self):
        cluster = SimCluster(3, gc_contexts=True)
        seed = build(cluster)
        first = cluster.run_query(CLOSURE, [seed])
        cluster.run()
        second = cluster.run_query(CLOSURE, [seed])
        assert second.result.oid_keys() == first.result.oid_keys()
        # Each run created (and then freed) fresh participant contexts.
        assert cluster.node("site1").stats.contexts_created == 2
