"""ClusterAPI conformance: one scenario script, four transports.

The point of the unified cluster API is that everything above the
transport — sessions, benchmarks, applications — is written once.  These
tests encode that contract directly: every test in this file runs
verbatim against the simulator, the threaded transport, the socket
transport, the asyncio transport *and* the asyncio transport's
process-per-site deployment (``ClusterConfig(processes=True)``), and
must behave identically (same results, same error types, same deadline
semantics) on all five.

Clusters are built through the transport registry with a
:class:`~repro.config.ClusterConfig`, so the suite also pins down the
consolidated construction path every transport must accept.
"""

import pytest

from repro.api import ClusterAPI, QueryOutcome, credit_deficit, make_cluster as build_cluster
from repro.config import ClusterConfig
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.errors import Overloaded, QueryTimeout
from repro.faults import FaultPlan
from repro.qos import QoSConfig
from repro.replication import ReplicationConfig
from repro.workload import WorkloadSpec, build_graph, generate_into_cluster, traversal_only_query

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

TRANSPORTS = ("sim", "threaded", "sockets", "async")

#: The asyncio transport's one-OS-process-per-site deployment.  Not a
#: fifth registry name — the registry builds it from ``transport="async"``
#: with ``ClusterConfig(processes=True)`` — but it IS a fifth way to run
#: every scenario in this file, and the one most likely to regress (no
#: shared memory to lean on).
PROCESS_PARAM = "async+procs"

ALL_PARAMS = (*sorted(TRANSPORTS), PROCESS_PARAM)

#: Back-compat alias: transport name -> factory through the registry.
FACTORIES = {name: (lambda s=3, _n=name, **kw: build_cluster(_n, s, **kw)) for name in TRANSPORTS}

#: Generous wall-clock budget for the real transports; the simulator
#: accepts and ignores it (virtual time cannot hang on a live queue).
TIMEOUT = 30.0


def build_param_cluster(param, sites=3, *, config=None):
    if param == PROCESS_PARAM:
        config = (config if config is not None else ClusterConfig()).replace(processes=True)
        return build_cluster("async", sites, config=config)
    return build_cluster(param, sites, config=config)


def deficit_of(cluster, qid):
    """Missing termination credit, transport-agnostically: process mode
    answers over its control channel, everything else from node state."""
    own = getattr(cluster, "credit_deficit", None)
    if callable(own):
        return own(qid)
    return credit_deficit(cluster.nodes, qid)


@pytest.fixture(params=ALL_PARAMS)
def make_cluster(request):
    made = []

    def factory(**kwargs):
        cluster = build_param_cluster(request.param, 3, config=ClusterConfig(**kwargs))
        made.append(cluster)
        return cluster

    yield factory
    for cluster in made:
        cluster.close()


def build_chain(cluster, length=12):
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


class TestProtocolShape:
    def test_every_transport_satisfies_the_protocol(self, make_cluster):
        assert isinstance(make_cluster(), ClusterAPI)

    def test_context_manager(self, make_cluster):
        with make_cluster() as cluster:
            oids = build_chain(cluster, 3)
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
            assert len(out.result.oid_keys()) == 3


class TestQueryLifecycle:
    def test_textual_query_full_results(self, make_cluster):
        """Strings compile identically everywhere — no transport needs a
        pre-compiled Program any more."""
        cluster = make_cluster()
        oids = build_chain(cluster)
        out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
        assert isinstance(out, QueryOutcome)
        assert out.result.oid_keys() == {o.key() for o in oids}
        assert not out.result.partial
        assert out.qid.originator == "site0"
        assert out.completed_at >= out.submitted_at
        assert out.response_time >= 0.0

    def test_submit_wait_split_and_outcome_lookup(self, make_cluster):
        cluster = make_cluster()
        oids = build_chain(cluster)
        qid = cluster.submit(CLOSURE, [oids[0]])
        out = cluster.wait(qid, timeout_s=TIMEOUT)
        assert out.result.oid_keys() == {o.key() for o in oids}
        assert cluster.outcome(qid) is out

    def test_total_stats_counts_processing(self, make_cluster):
        cluster = make_cluster()
        oids = build_chain(cluster)
        cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
        assert cluster.total_stats().objects_processed >= len(oids)

    def test_deadline_must_be_positive(self, make_cluster):
        with pytest.raises(ValueError):
            make_cluster().submit(CLOSURE, [], deadline_s=0.0)

    def test_on_deadline_mode_is_validated(self, make_cluster):
        cluster = make_cluster()
        oids = build_chain(cluster, 3)
        with pytest.raises(ValueError):
            cluster.run_query(CLOSURE, [oids[0]], on_deadline="explode")


class TestDeadlineSemantics:
    def test_partial_mode_returns_partial_outcome(self, make_cluster):
        cluster = make_cluster(fault_plan=FaultPlan(seed=1, drop=1.0))
        oids = build_chain(cluster)
        out = cluster.run_query(
            CLOSURE, [oids[0]], deadline_s=0.4, timeout_s=10.0
        )
        assert out.result.partial
        assert len(out.result.oid_keys()) >= 1  # the local seed survived

    def test_raise_mode_raises_with_partial_attached(self, make_cluster):
        cluster = make_cluster(fault_plan=FaultPlan(seed=1, drop=1.0))
        oids = build_chain(cluster)
        with pytest.raises(QueryTimeout) as excinfo:
            cluster.run_query(
                CLOSURE, [oids[0]],
                deadline_s=0.4, timeout_s=10.0, on_deadline="raise",
            )
        assert excinfo.value.result.partial


class TestAvailability:
    def test_set_down_writes_branch_off_and_set_up_restores(self, make_cluster):
        cluster = make_cluster()
        oids = build_chain(cluster)
        cluster.set_down("site1")
        assert cluster.is_down("site1") and not cluster.is_up("site1")
        partial = cluster.run_query(CLOSURE, [oids[0]], timeout_s=10.0)
        assert len(partial.result.oid_keys()) < len(oids)
        cluster.set_up("site1")
        full = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
        assert full.result.oid_keys() == {o.key() for o in oids}


class TestReplication:
    """One scenario, every transport × every placement: the replicated
    deployments must return exactly the replica-free result set, and any
    live replica must be able to serve a dereference when the preferred
    holder is down (k=1 is the replica-free build itself — same code
    path, empty directory)."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_replicated_results_match_replica_free(self, make_cluster, k):
        cluster = make_cluster(replication=ReplicationConfig(k=k))
        oids = build_chain(cluster)
        placed = cluster.replicate_all()
        assert placed == (len(oids) if k > 1 else 0)
        out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
        assert out.result.oid_keys() == {o.key() for o in oids}
        assert not out.result.partial

    @pytest.mark.parametrize("k", [2, 3])
    def test_any_live_replica_serves_when_a_holder_is_down(self, make_cluster, k):
        """The availability payoff: with k >= 2 the same crash that costs
        the replica-free build results (see TestAvailability) costs
        nothing — routing anycasts the dereference to a live holder."""
        cluster = make_cluster(replication=ReplicationConfig(k=k))
        oids = build_chain(cluster)
        cluster.replicate_all()
        cluster.set_down("site1")
        out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
        assert out.result.oid_keys() == {o.key() for o in oids}
        assert not out.result.partial
        cluster.set_up("site1")

    def test_migrate_keeps_k_copies_and_results(self, make_cluster):
        cluster = make_cluster(replication=ReplicationConfig(k=2))
        oids = build_chain(cluster)
        cluster.replicate_all()
        moved = cluster.migrate(oids[1], "site2")
        directory = cluster.replication.directory
        sites = directory.sites_of(moved)
        assert sites[0] == "site2" and len(sites) == 2
        out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
        assert out.result.oid_keys() == {o.key() for o in oids}


class TestFollowupQueries:
    def test_count_mode_followup_seeds_from_saved_partition(self, make_cluster):
        cluster = make_cluster(result_mode="count")
        workload = generate_into_cluster(
            cluster, WorkloadSpec(n_objects=60), build_graph(n=60)
        )
        first = cluster.run_query(
            traversal_only_query("Tree"), [workload.root], timeout_s=TIMEOUT
        )
        assert sum((first.partition_counts or {}).values()) > 0
        followup = cluster.run_followup(
            'T (Rand10p, 5, ?) -> U', first.qid, timeout_s=TIMEOUT
        )
        assert followup.partition_counts is not None


class TestCrossTransportAgreement:
    def test_same_database_same_results_everywhere(self):
        """The whole point, in one assertion: an identical database gives
        an identical result set on all four transports — and on the
        process-per-site deployment of the fourth."""
        results = {}
        for name in ALL_PARAMS:
            cluster = build_param_cluster(name, 3)
            try:
                oids = build_chain(cluster)
                out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
                results[name] = out.result.oid_keys()
            finally:
                cluster.close()
        assert len(set(map(frozenset, results.values()))) == 1, results


class TestProcessParity:
    """Process mode vs. the simulator oracle, capability by capability.

    The configs this class ships — replication at every k, the reliable
    channel, seeded link chaos — are exactly the ones process mode used
    to reject; each must now produce the oracle's result set with zero
    termination-credit deficit.
    """

    def _run(self, param, **kwargs):
        cluster = build_param_cluster(param, config=ClusterConfig(**kwargs))
        try:
            oids = build_chain(cluster)
            if getattr(cluster, "replication", None) is not None:
                cluster.replicate_all()
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
            return out.result.oid_keys(), deficit_of(cluster, out.qid)
        finally:
            cluster.close()

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_replication_matches_sim_oracle(self, k):
        kwargs = dict(replication=ReplicationConfig(k=k))
        oracle, _ = self._run("sim", **kwargs)
        got, deficit = self._run(PROCESS_PARAM, **kwargs)
        assert got == oracle
        assert deficit == 0

    def test_reliable_channel_matches_sim_oracle(self):
        oracle, _ = self._run("sim")
        got, deficit = self._run(PROCESS_PARAM, reliable=True)
        assert got == oracle
        assert deficit == 0

    def test_seeded_chaos_under_reliable_recovers_the_full_result(self):
        """Lossy links + retransmission must converge on the lossless
        answer: every drop is retried through, every duplicate deduped,
        and the detector's credit comes home whole."""
        from repro.faults.reliable import ReliableConfig

        oracle, _ = self._run("sim")
        plan = FaultPlan(seed=42, drop=0.25, duplicate=0.25)
        got, deficit = self._run(
            PROCESS_PARAM,
            fault_plan=plan,
            reliable=ReliableConfig(base_backoff_s=0.02, max_backoff_s=0.2, max_retries=20),
        )
        assert got == oracle
        assert deficit == 0


class TestQoS:
    """Admission control and load shedding behave identically everywhere.

    On the socket transport these scenarios additionally prove the codec
    round-trip: priority classes and backpressure bits reach the remote
    sites as real bytes, not shared references.
    """

    def test_overload_bounce_is_uniform(self, make_cluster):
        cluster = make_cluster(qos=QoSConfig(rate_limit_qps=0.001, rate_burst=1))
        oids = build_chain(cluster, 4)
        cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT, client="tenant-a")
        with pytest.raises(Overloaded) as exc:
            cluster.submit(CLOSURE, [oids[0]], client="tenant-a")
        assert exc.value.client == "tenant-a"
        assert exc.value.retry_after_s > 0
        assert cluster.qos_bounces == 1
        # A different client has its own bucket.
        cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT, client="tenant-b")

    def test_shed_partial_with_exact_credit(self, make_cluster):
        baseline = make_cluster()
        oids = build_chain(baseline)
        full = baseline.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)

        cluster = make_cluster(qos=QoSConfig(shed_watermark=0))
        oids = build_chain(cluster)
        out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT, priority="batch")
        assert out.result.partial
        assert out.partial_reason == "shed"
        assert out.result.oid_keys() <= full.result.oid_keys()
        assert cluster.total_stats().work_shed > 0
        # The detector's conservation survives shedding exactly: no
        # credit leaked with the dropped work.
        assert deficit_of(cluster, out.qid) == 0

    def test_interactive_class_not_shed_by_default(self, make_cluster):
        cluster = make_cluster(qos=QoSConfig(shed_watermark=0))
        oids = build_chain(cluster)
        out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT, priority="interactive")
        assert not out.result.partial
        assert out.partial_reason is None
        assert out.result.oid_keys() == {o.key() for o in oids}

    def test_unknown_priority_rejected(self, make_cluster):
        cluster = make_cluster(qos=QoSConfig())
        with pytest.raises(ValueError):
            cluster.submit(CLOSURE, [], priority="bulk")


class TestMembership:
    """Administrative membership is part of the ClusterAPI contract:
    the same join/leave/fail scenario behaves identically on all five
    transport params — same results as the healthy baseline, zero
    termination-credit deficit, same typed errors."""

    def test_leave_join_fail_scenario(self, make_cluster):
        from repro.errors import SiteDeparted
        from repro.membership import MembershipConfig

        cluster = make_cluster(
            replication=ReplicationConfig(k=2), membership=MembershipConfig()
        )
        oids = build_chain(cluster)
        cluster.replicate_all()
        expected = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT).result.oid_keys()

        cluster.leave_site("site2")
        out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
        assert out.result.oid_keys() == expected
        assert not out.result.partial
        assert deficit_of(cluster, out.qid) == 0

        with pytest.raises(SiteDeparted):
            cluster.submit(CLOSURE, [oids[0]], originator="site2")

        cluster.join_site("site2")
        cluster.fail_site("site1")
        out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=TIMEOUT)
        assert out.result.oid_keys() == expected
        assert not out.result.partial
        assert deficit_of(cluster, out.qid) == 0
        assert cluster.membership_view.status_of("site1") == "departed"

    def test_membership_off_by_default(self, make_cluster):
        from repro.errors import ConfigError

        cluster = make_cluster()
        assert cluster.membership is None
        with pytest.raises(ConfigError):
            cluster.join_site("site0")

    @pytest.mark.parametrize("transport", sorted(set(TRANSPORTS) - {"sim"}))
    def test_heartbeat_detector_is_simulator_only(self, transport):
        from repro.errors import ConfigError
        from repro.membership import MembershipConfig

        with pytest.raises(ConfigError):
            build_cluster(
                transport,
                3,
                config=ClusterConfig(membership=MembershipConfig(heartbeat_s=0.05)),
            )
