"""Failure-injection tests: the paper's autonomy requirements, plus the
undeliverable-bounce extension for mid-query failures.

Coverage:

* sends to a site known to be down are abandoned at the sender (both the
  paper's partial-results story and exact termination) — `test_cluster`
  covers the basics; here we add the *in-flight* window:
* a message already on the wire when its destination dies is bounced back
  (`Undeliverable`), the sender's detector re-absorbs the credit/deficit,
  and the query completes with partial results;
* a site dying while *holding* query state (credit, engagement) is not
  recoverable without failure detectors — we assert the weighted detector
  at least survives the common case where the dead site was passive.
"""

import pytest

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.errors import HyperFileError

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def build_two_site_hop(cluster):
    """a(site0) -> b(site1); b self-links."""
    s0, s1 = cluster.store("site0"), cluster.store("site1")
    b = s1.create([keyword_tuple("K")])
    s1.replace(s1.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
    a = s0.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
    return a.oid, b.oid


def build_striped_chain(cluster, length=30):
    """A chain striped across all sites; every object keyworded."""
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last_store = stores[(length - 1) % len(stores)]
    last_store.replace(last_store.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


class TestInFlightBounce:
    @pytest.mark.parametrize("strategy", ["weighted", "dijkstra-scholten"])
    def test_message_in_flight_to_dying_site_is_recovered(self, strategy):
        cluster = SimCluster(2, termination=strategy)
        a, b = build_two_site_hop(cluster)
        qid = cluster.submit(CLOSURE, [a])
        # The deref to site1 departs after site0 processes `a` (~38 ms)
        # and lands one latency later (~58 ms).  Kill site1 inside that
        # window: the message is already on the wire.
        cluster.run(until=0.045)
        cluster.set_down("site1")
        outcome = cluster.wait(qid)
        assert outcome.result.oid_keys() == {a.key()}  # partial: b lost
        assert cluster.network.messages_dropped >= 1

    def test_bounce_restores_exact_credit(self):
        from fractions import Fraction

        cluster = SimCluster(2)
        a, b = build_two_site_hop(cluster)
        qid = cluster.submit(CLOSURE, [a])
        cluster.run(until=0.045)
        cluster.set_down("site1")
        cluster.wait(qid)
        ctx = cluster.node("site0").contexts[qid]
        assert ctx.term_state.recovered == Fraction(1)

    def test_bounce_to_dead_sender_is_dropped(self):
        # Both endpoints die: the bounce has nowhere to go and must not
        # crash the simulation (the query is lost with its originator).
        cluster = SimCluster(2)
        a, b = build_two_site_hop(cluster)
        cluster.submit(CLOSURE, [a])
        cluster.run(until=0.045)
        cluster.set_down("site1")
        cluster.set_down("site0")
        cluster.run()  # must quiesce without raising

    def test_sender_dies_after_bounce_is_scheduled(self):
        # Narrower window than the test above: the deref arrives at the
        # dead site1 (~58 ms) and the bounce toward site0 is *already on
        # the wire* when site0 itself dies.  The in-flight bounce must be
        # counted as dropped in _deliver_now, not delivered to a dead
        # host or raised.
        cluster = SimCluster(2)
        a, b = build_two_site_hop(cluster)
        cluster.submit(CLOSURE, [a])
        cluster.run(until=0.045)
        cluster.set_down("site1")       # deref in flight, bounce pending
        cluster.run(until=0.065)        # deref has arrived; bounce scheduled
        dropped_before = cluster.network.messages_dropped
        assert dropped_before >= 1      # the deref itself was dropped
        cluster.set_down("site0")       # sender dies before the bounce lands
        cluster.run()                   # must quiesce without raising
        assert cluster.network.messages_dropped > dropped_before
        # The originator never saw the bounce: its credit stays unrecovered.
        node = cluster.node("site0")
        (ctx,) = node.contexts.values()
        assert not ctx.done


class TestMidQueryCrash:
    def test_weighted_survives_crash_of_passive_site(self):
        # A chain striped over 3 sites: each site drains after every
        # object, so at (almost) any instant the downstream sites hold no
        # credit; killing one mid-query loses its branch but not the
        # query.  8-ish of 30 objects survive in this timing.
        cluster = SimCluster(3)
        oids = build_striped_chain(cluster)
        qid = cluster.submit(CLOSURE, [oids[0]])
        cluster.run(until=0.5)
        cluster.set_down("site2")
        outcome = cluster.wait(qid)
        assert 0 < len(outcome.result.oids) < len(oids)

    def test_results_already_shipped_are_kept(self):
        cluster = SimCluster(3)
        oids = build_striped_chain(cluster)
        qid = cluster.submit(CLOSURE, [oids[0]])
        cluster.run(until=0.5)
        cluster.set_down("site2")
        outcome = cluster.wait(qid)
        # Everything processed before the crash stays in the result —
        # including objects that lived on the dead site.
        dead_site_results = [o for o in outcome.result.oids if o.birth_site == "site2"]
        assert dead_site_results

    def test_crash_of_busy_site_loses_credit_and_is_detected(self):
        # The unrecoverable case: the site dies while holding credit (its
        # working set is non-empty).  The query can never terminate; the
        # cluster surfaces that as an explicit error, not a hang.
        cluster = SimCluster(2)
        a, b = build_two_site_hop(cluster)
        qid = cluster.submit(CLOSURE, [a])
        cluster.run(until=0.070)  # site1 has received the work by now
        cluster.set_down("site1")
        with pytest.raises(HyperFileError, match="termination detector never fired"):
            cluster.wait(qid)
