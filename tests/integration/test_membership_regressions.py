"""Membership regression pins: three specific failure modes found while
building the dynamic-membership plane, each frozen into a test.

1. A departing originator must be refused at ``submit`` with the typed
   :class:`~repro.errors.SiteDeparted` — on the simulator and on the
   wall-clock transports alike — because a query whose answer has no
   live destination would otherwise hang until the deadline.
2. In process mode, a directory lookup can race the parent's REPL_DIR
   broadcast after a rebalance; routing must stay correct (via the
   ``tried``-exclusion failover) with zero termination-credit deficit.
3. When a site crashes permanently mid-query with credit in hand, the
   flight recorder dumps and :class:`~repro.errors.TerminationLost`
   attributes the loss to the dead site, not the originator.
"""

import pytest

from repro.api import make_cluster
from repro.cluster import SimCluster
from repro.config import ClusterConfig
from repro.core import keyword_tuple, pointer_tuple
from repro.errors import SiteDeparted, TerminationLost
from repro.membership import MembershipConfig
from repro.replication import ReplicationConfig
from repro.tracing import FlightRecorderConfig

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

MEMB_CONFIG = ClusterConfig(
    replication=ReplicationConfig(k=2), membership=MembershipConfig()
)


def build_chain(cluster, length=12):
    stores = [cluster.store(s) for s in cluster.sites]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    return oids


class TestDepartedOriginatorIsRefused:
    def test_sim_submit_raises_site_departed(self):
        with SimCluster(3, config=MEMB_CONFIG) as cluster:
            oids = build_chain(cluster)
            cluster.replicate_all()
            cluster.leave_site("site1")
            with pytest.raises(SiteDeparted):
                cluster.submit(CLOSURE, [oids[0]], originator="site1")
            # The refusal is typed and actionable, not a hang: the same
            # query from a live originator still completes.
            out = cluster.run_query(CLOSURE, [oids[0]])
            assert not out.result.partial

    def test_wall_clock_submit_raises_site_departed(self):
        cluster = make_cluster("threaded", 3, config=MEMB_CONFIG)
        try:
            oids = build_chain(cluster)
            cluster.replicate_all()
            cluster.leave_site("site2")
            with pytest.raises(SiteDeparted):
                cluster.submit(CLOSURE, [oids[0]], originator="site2")
            out = cluster.run_query(CLOSURE, [oids[0]], timeout_s=30.0)
            assert not out.result.partial
        finally:
            cluster.close()

    def test_failed_site_is_refused_too(self):
        with SimCluster(3, config=MEMB_CONFIG) as cluster:
            oids = build_chain(cluster)
            cluster.replicate_all()
            cluster.fail_site("site2")
            with pytest.raises(SiteDeparted):
                cluster.submit(CLOSURE, [oids[0]], originator="site2")


class TestProcessModeDirectoryRace:
    def test_lookup_racing_repl_dir_broadcast_stays_correct(self):
        """Queries submitted immediately after a view change — while the
        REPL_DIR frames carrying the rebalanced directory may still be
        in flight to some children — must return the full result with a
        zero credit deficit (stale lookups fail over, never wedge)."""
        cluster = make_cluster(
            "async", 3, config=MEMB_CONFIG.replace(processes=True)
        )
        try:
            oids = build_chain(cluster)
            cluster.replicate_all()
            expected = cluster.run_query(
                CLOSURE, [oids[0]], timeout_s=30.0
            ).result.oid_keys()

            cluster.leave_site("site1")
            # No settling pause on purpose: this submit races the
            # post-rebalance directory broadcast.
            qid = cluster.submit(CLOSURE, [oids[0]])
            out = cluster.wait(qid, timeout_s=30.0)
            assert out.result.oid_keys() == expected
            assert not out.result.partial
            assert cluster.credit_deficit(qid) == 0

            cluster.join_site("site1")
            qid = cluster.submit(CLOSURE, [oids[0]])
            out = cluster.wait(qid, timeout_s=30.0)
            assert out.result.oid_keys() == expected
            assert cluster.credit_deficit(qid) == 0
        finally:
            cluster.close()


class TestCrashDuringRebalanceAttribution:
    def _run_until_busy(self, cluster, victim, qid):
        node = cluster.nodes[victim]
        for _ in range(50_000):
            if any(ctx.busy for ctx in node.contexts.values()):
                return True
            if qid in cluster._completed or not cluster.sim.step():
                return False
        return False

    def test_flight_recorder_dump_names_the_dead_site(self):
        """A permanent crash while the victim holds live contexts loses
        that credit for good; ``wait`` must raise ``TerminationLost``
        with ``site`` naming the dead machine, and the flight recorder
        must have dumped the pre-crash ring for the postmortem."""
        config = MEMB_CONFIG.replace(
            flight_recorder=FlightRecorderConfig(capacity=512)
        )
        with SimCluster(3, config=config) as cluster:
            oids = build_chain(cluster, length=18)
            # k=2 keeps the *data* alive, so the failure mode pinned here
            # is purely the in-flight credit dying with the machine.
            cluster.replicate_all()
            qid = cluster.submit(CLOSURE, [oids[0]])
            assert self._run_until_busy(cluster, "site1", qid), (
                "scenario setup: site1 never got busy — lengthen the chain"
            )
            cluster.fail_site("site1")
            with pytest.raises(TerminationLost) as excinfo:
                cluster.wait(qid)
            assert excinfo.value.site == "site1"
            # The ledger reading can legitimately be zero (what died with
            # the machine may be the completion report rather than raw
            # credit); the contract pinned here is the *attribution*.
            assert excinfo.value.deficit is not None
            assert cluster.flight_recorder.dump_reasons[-1] == "termination_lost"
            assert cluster.flight_recorder.last_dump, "dump captured no events"
            # The rebalance that the crash triggered is in the artifact.
            kinds = {e.kind for e in cluster.flight_recorder.last_dump}
            assert "member" in kinds
