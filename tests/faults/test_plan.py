"""Unit tests for the seed-driven fault schedule."""

import pytest

from repro.faults import FaultDecision, FaultPlan, LinkFaults


class TestDecisions:
    def test_clean_plan_delivers_everything(self):
        plan = FaultPlan(seed=1)
        for _ in range(50):
            decision = plan.decide("a", "b")
            assert decision.delays == (0.0,)
            assert not decision.dropped and not decision.duplicated
        assert plan.dropped == plan.duplicated == 0
        assert plan.decisions == 50

    def test_drop_one_drops_everything(self):
        plan = FaultPlan(seed=1, drop=1.0)
        for _ in range(20):
            assert plan.decide("a", "b").dropped
        assert plan.dropped == 20

    def test_duplicate_one_doubles_everything(self):
        plan = FaultPlan(seed=1, duplicate=1.0)
        for _ in range(20):
            decision = plan.decide("a", "b")
            assert decision.duplicated and len(decision.delays) == 2
        assert plan.duplicated == 20

    def test_same_seed_same_decisions(self):
        def trace(seed):
            plan = FaultPlan(seed=seed, drop=0.3, duplicate=0.2, reorder=0.4,
                             delay_jitter_s=0.01)
            return [plan.decide("a", "b") for _ in range(200)]

        assert trace(42) == trace(42)
        assert trace(42) != trace(43)

    def test_reorder_holds_copies_back(self):
        plan = FaultPlan(seed=5, reorder=1.0, reorder_window_s=0.05)
        decision = plan.decide("a", "b")
        assert decision.delays[0] >= 0.05
        assert plan.delayed == 1

    def test_rates_are_approximately_honoured(self):
        plan = FaultPlan(seed=9, drop=0.25)
        n = 2000
        for _ in range(n):
            plan.decide("a", "b")
        assert 0.18 <= plan.dropped / n <= 0.32


class TestLinkOverrides:
    def test_override_is_symmetric_and_scoped(self):
        plan = FaultPlan(seed=3).link("a", "b", drop=1.0)
        assert plan.decide("a", "b").dropped
        assert plan.decide("b", "a").dropped
        assert not plan.decide("a", "c").dropped

    def test_override_merges_with_defaults(self):
        plan = FaultPlan(seed=3, duplicate=1.0).link("a", "b", drop=0.0)
        assert plan.faults_for("a", "b").duplicate == 1.0


class TestPartitions:
    def test_partition_severs_both_directions(self):
        plan = FaultPlan(seed=2)
        plan.partition("a", "b")
        assert plan.is_partitioned("a", "b")
        assert plan.decide("a", "b").dropped
        assert plan.decide("b", "a").dropped
        assert not plan.decide("a", "c").dropped
        assert plan.partition_drops == 2
        plan.heal("a", "b")
        assert not plan.decide("a", "b").dropped


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"drop": 1.5}, {"drop": -0.1}, {"duplicate": 2.0},
        {"reorder": -1.0}, {"delay_jitter_s": -0.5},
    ])
    def test_bad_probabilities_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, **kwargs)

    def test_bad_crash_window_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().crash("a", at=0.5, recover_at=0.2)
        with pytest.raises(ValueError):
            FaultPlan().crash("a", at=-1.0)

    def test_link_faults_validate(self):
        with pytest.raises(ValueError):
            LinkFaults(drop=7.0).validate()

    def test_decision_properties(self):
        assert FaultDecision(delays=()).dropped
        assert FaultDecision(delays=(0.0, 0.1)).duplicated
