"""Unit tests for the ack/retransmit channel, on a hand-cranked wire.

A :class:`_Harness` wires two endpoints back-to-back through a manual
scheduler and a lossy in-memory "wire", so every retransmission and
duplicate is provoked deliberately rather than probabilistically.
"""

from repro.faults import ReliableAck, ReliableConfig, ReliableData, ReliableEndpoint
from repro.net.messages import Envelope, PurgeContext, QueryId
from repro.server.stats import NodeStats


class _FakeNode:
    def __init__(self):
        self.stats = NodeStats()
        self.tracer = None


class _FakeScheduler:
    """Collects (delay, action) timers; tests fire them by hand."""

    class Handle:
        def __init__(self):
            self.cancelled = False

        def cancel(self):
            self.cancelled = True

    def __init__(self):
        self.timers = []

    def __call__(self, delay, action):
        handle = self.Handle()
        self.timers.append((delay, action, handle))
        return handle

    def fire_next(self):
        delay, action, handle = self.timers.pop(0)
        if not handle.cancelled:
            action()
        return handle

    @property
    def live(self):
        return [t for t in self.timers if not t[2].cancelled]


class _Harness:
    """Two endpoints, A and B, with a drop-controllable wire between."""

    def __init__(self, config=None):
        self.scheduler = _FakeScheduler()
        self.delivered = []          # payloads B's node actually saw
        self.gave_up = []            # inner envelopes A abandoned
        self.drop_next = 0           # drop this many upcoming wire frames
        self.node_a = _FakeNode()
        self.node_b = _FakeNode()
        self.a = ReliableEndpoint(
            "A", clock=lambda: 0.0, scheduler=self.scheduler,
            send_raw=self._wire, deliver_up=lambda env: None,
            node=self.node_a, config=config, on_give_up=self.gave_up.append,
        )
        self.b = ReliableEndpoint(
            "B", clock=lambda: 0.0, scheduler=self.scheduler,
            send_raw=self._wire, deliver_up=lambda env: self.delivered.append(env.payload),
            node=self.node_b, config=config,
        )

    def _wire(self, env):
        if self.drop_next > 0:
            self.drop_next -= 1
            return
        {"B": self.b, "A": self.a}[env.dst].on_wire(env)

    def send(self, payload):
        self.a.send(Envelope("A", "B", payload))


def _msg(seq=1):
    return PurgeContext(QueryId(seq, "A"))


class TestHappyPath:
    def test_delivered_once_and_acked(self):
        h = _Harness()
        h.send(_msg())
        assert h.delivered == [_msg()]
        assert h.a.outstanding == 0          # ack cleared the buffer
        assert h.scheduler.live == []        # and cancelled the retransmit

    def test_sequence_numbers_are_per_destination(self):
        h = _Harness()
        h.send(_msg(1))
        h.send(_msg(2))
        assert [p.qid.seq for p in h.delivered] == [1, 2]


class TestLoss:
    def test_lost_data_frame_is_retransmitted(self):
        h = _Harness()
        h.drop_next = 1              # the data frame vanishes
        h.send(_msg())
        assert h.delivered == []
        assert h.a.outstanding == 1
        h.scheduler.fire_next()      # retransmit timer
        assert h.delivered == [_msg()]
        assert h.node_a.stats.retransmits == 1

    def test_lost_ack_provokes_duplicate_which_is_dropped(self):
        h = _Harness()
        h.send(_msg())
        assert h.delivered == [_msg()]
        # The ack was lost, so A retransmits the same frame: B must
        # re-ack (absorbing the replay) without delivering it again.
        h.b.on_wire(Envelope("A", "B", ReliableData(1, _msg())))
        assert h.delivered == [_msg()]
        assert h.node_b.stats.duplicates_dropped == 1

    def test_backoff_doubles_and_caps(self):
        config = ReliableConfig(base_backoff_s=0.1, max_backoff_s=0.3, max_retries=10)
        assert [config.backoff(i) for i in range(4)] == [0.1, 0.2, 0.3, 0.3]

    def test_gives_up_after_max_retries(self):
        h = _Harness(config=ReliableConfig(max_retries=2))
        h.drop_next = 10**9          # the wire is dead
        h.send(_msg())
        for _ in range(3):           # 2 retransmits + the give-up pass
            h.scheduler.fire_next()
        assert h.gave_up == [Envelope("A", "B", _msg())]
        assert h.a.outstanding == 0
        assert h.node_a.stats.reliable_give_ups == 1

    def test_close_cancels_pending(self):
        h = _Harness()
        h.drop_next = 1
        h.send(_msg())
        h.a.close()
        assert h.a.outstanding == 0
        assert all(t[2].cancelled for t in h.scheduler.timers)


class TestWireTypes:
    def test_rejects_non_reliable_frames(self):
        h = _Harness()
        import pytest

        with pytest.raises(TypeError):
            h.a.on_wire(Envelope("B", "A", _msg()))

    def test_frames_report_wire_size(self):
        data = ReliableData(1, _msg())
        assert data.wire_size() > ReliableAck(1).wire_size() > 0
