"""Unit tests for critical-path / span-tree / credit-audit analysis.

These build trace event lists by hand, so the analyses are pinned to the
span model itself rather than to whatever a live cluster happens to emit
(the live end is covered by tests/integration/test_observability.py).
"""

from fractions import Fraction

import pytest

from repro.profiling import (
    credit_audit,
    critical_path,
    render_profile,
    tree_report,
)
from repro.tracing import TraceEvent

QID = "q1@site0"


def ev(time, site, kind, span, parent=None, **detail):
    return TraceEvent(
        time=time, site=site, kind=kind, qid=QID, detail=detail, span=span, parent=parent
    )


def two_site_trace():
    """submit -> work hop to site1 -> result hop back -> complete."""
    return [
        ev(0.00, "site0", "submit", 1),
        ev(0.00, "site0", "send", 2, parent=1, msg="DerefRequest", dst="site1"),
        ev(0.05, "site1", "recv", 3, parent=2, msg="DerefRequest"),
        ev(0.07, "site1", "process", 4, parent=3, oid="x"),
        ev(0.07, "site1", "send", 5, parent=4, msg="ResultBatch", dst="site0"),
        ev(0.12, "site0", "recv", 6, parent=5, msg="ResultBatch"),
        ev(0.13, "site0", "complete", 7, parent=1, results=2),
    ]


class TestTreeReport:
    def test_connected_tree(self):
        report = tree_report(two_site_trace(), QID)
        assert report.connected
        assert report.events == 7
        assert report.root.kind == "submit"
        assert "span tree OK" in report.describe()

    def test_dangling_parent_detected(self):
        events = two_site_trace()
        events.append(ev(0.2, "site0", "recv", 8, parent=99))
        report = tree_report(events, QID)
        assert not report.connected
        assert [e.span for e in report.missing_parents] == [8]
        assert "dangling parent" in report.describe()

    def test_orphan_detected(self):
        events = two_site_trace()
        events.append(ev(0.2, "site1", "process", 8, parent=None))
        report = tree_report(events, QID)
        assert not report.connected
        assert [e.span for e in report.orphans] == [8]

    def test_extra_root_detected(self):
        events = two_site_trace()
        events.append(ev(0.2, "site0", "submit", 8))
        report = tree_report(events, QID)
        assert not report.connected
        assert [e.span for e in report.extra_roots] == [8]

    def test_missing_submit(self):
        events = [e for e in two_site_trace() if e.kind != "submit"]
        report = tree_report(events, QID)
        assert report.root is None and not report.connected
        assert "no submit" in report.describe()

    def test_other_queries_filtered_out(self):
        events = two_site_trace() + [
            TraceEvent(time=0.5, site="site2", kind="process", qid="q2@site2", span=50)
        ]
        assert tree_report(events, QID).events == 7


class TestCriticalPath:
    def test_path_walks_submit_to_complete(self):
        path = critical_path(two_site_trace(), QID)
        assert [s.site for s in path.steps] == ["site0", "site1", "site1", "site0", "site0"]
        assert [s.via for s in path.steps] == [
            "start", "message", "message", "message", "cpu",
        ]
        assert path.steps[0].kinds == ("submit", "send")
        assert path.steps[-1].kinds == ("complete",)

    def test_deltas_telescope_to_duration(self):
        path = critical_path(two_site_trace(), QID)
        assert path.duration == pytest.approx(0.13)
        assert sum(s.delta for s in path.steps) == pytest.approx(path.duration)
        assert path.message_hops == 3

    def test_latest_finishing_predecessor_wins(self):
        # Two work sends; the path must follow the slower branch (site2).
        events = [
            ev(0.00, "site0", "submit", 1),
            ev(0.00, "site0", "send", 2, parent=1, dst="site1"),
            ev(0.00, "site0", "send", 3, parent=1, dst="site2"),
            ev(0.05, "site1", "recv", 4, parent=2),
            ev(0.30, "site2", "recv", 5, parent=3),
            ev(0.06, "site1", "send", 6, parent=4, dst="site0"),
            ev(0.31, "site2", "send", 7, parent=5, dst="site0"),
            ev(0.11, "site0", "recv", 8, parent=6),
            ev(0.36, "site0", "recv", 9, parent=7),
            ev(0.37, "site0", "complete", 10, parent=1),
        ]
        path = critical_path(events, QID)
        sites = [s.site for s in path.steps]
        assert "site2" in sites and "site1" not in sites

    def test_unterminated_trace_profiles_to_last_event(self):
        events = [e for e in two_site_trace() if e.kind != "complete"]
        path = critical_path(events, QID)
        assert path.steps[-1].time == pytest.approx(0.12)
        assert path.steps[-1].kinds == ("recv",)

    def test_empty_trace(self):
        path = critical_path([], QID)
        assert path.steps == [] and path.duration == 0.0
        assert "no critical path" in path.render()

    def test_render_mentions_every_step(self):
        text = critical_path(two_site_trace(), QID).render()
        assert "critical path for q1@site0" in text
        assert "message hops" in text
        assert text.count("\n") == len(critical_path(two_site_trace(), QID).steps) + 1


class TestCreditAudit:
    def test_delivered_and_lost_credits(self):
        events = [
            ev(0.00, "site0", "submit", 1),
            ev(0.00, "site0", "send", 2, parent=1, msg="DerefRequest",
               dst="site1", credit="1/2"),
            ev(0.05, "site1", "recv", 3, parent=2, msg="DerefRequest"),
            ev(0.06, "site0", "send", 4, parent=1, msg="DerefRequest",
               dst="site2", credit="1/4"),
            # span 4 never lands anywhere: its quarter credit is lost.
        ]
        audit = credit_audit(events, QID)
        assert audit.total_sent == Fraction(3, 4)
        assert audit.lost == Fraction(1, 4)
        by_span = {e.span: e for e in audit.entries}
        assert by_span[2].delivered and not by_span[4].delivered
        assert "LOST" in audit.render()

    def test_dup_suppression_counts_as_delivered(self):
        # A reliable-channel dup means the original already arrived.
        events = [
            ev(0.00, "site0", "send", 2, msg="DerefRequest", dst="site1", credit="1/8"),
            ev(0.05, "site1", "dup", 3, parent=2),
        ]
        audit = credit_audit(events, QID)
        assert audit.lost == 0 and audit.entries[0].delivered

    def test_sends_without_credit_ignored(self):
        events = [
            ev(0.00, "site0", "send", 2, msg="PurgeContext", dst="site1"),
        ]
        assert credit_audit(events, QID).entries == []

    def test_timeout_flagged(self):
        events = [ev(0.5, "site0", "timeout", 9, abandoned=3)]
        assert credit_audit(events, QID).timed_out


class TestRenderProfile:
    def test_combines_sections(self):
        events = two_site_trace()
        events[1] = ev(0.00, "site0", "send", 2, parent=1, msg="DerefRequest",
                       dst="site1", credit="1/2")
        text = render_profile(events, QID)
        assert "span tree OK" in text
        assert "critical path" in text
        assert "credit audit" in text

    def test_empty_profile(self):
        text = render_profile([], QID)
        assert "no submit" in text and "critical path" not in text
