"""Tests for the telemetry registry (counters, gauges, histograms)."""

import json
from dataclasses import fields

import pytest

from repro.metrics.registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.server.stats import NodeStats


class TestCounter:
    def test_inc_accumulates(self):
        c = MetricsRegistry().counter("x_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot_shape(self):
        c = MetricsRegistry().counter("x_total")
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(7)
        g.add(-2)
        assert g.value == 5
        assert g.snapshot()["type"] == "gauge"


class TestHistogram:
    def test_bucketing_is_inclusive_upper_bound(self):
        h = Histogram("lat_s", (), buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.01, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        counts = {b["le"]: b["count"] for b in snap["buckets"]}
        assert counts == {0.01: 2, 0.1: 1, 1.0: 1, "inf": 1}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5.565)

    def test_mean(self):
        h = Histogram("lat_s", (), buckets=(1.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)

    def test_bounds_sorted_regardless_of_input(self):
        h = Histogram("x", (), buckets=(1.0, 0.1, 0.5))
        assert h.bounds == (0.1, 0.5, 1.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", (), buckets=())

    def test_default_buckets_cover_cost_model_scale(self):
        # Paper costs are 0.5ms..50ms; wall-clock runs are µs..s.
        assert DEFAULT_BUCKETS[0] <= 0.0001 and DEFAULT_BUCKETS[-1] >= 10.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total", site="s0") is reg.counter("a_total", site="s0")

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a_total", site="s0").inc()
        reg.counter("a_total", site="s1").inc(5)
        assert reg.value("a_total", site="s0") == 1
        assert reg.value("a_total", site="s1") == 5
        assert reg.value("a_total") is None  # no unlabeled instrument

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", site="s0", kind="k")
        b = reg.gauge("g", kind="k", site="s0")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_histogram_get_or_create(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_s", buckets=(1.0, 2.0))
        assert reg.histogram("lat_s") is h

    def test_snapshot_is_sorted_and_jsonable(self):
        reg = MetricsRegistry()
        reg.counter("z_total").inc()
        reg.gauge("a_depth", site="s1").set(3)
        reg.histogram("m_lat_s").observe(0.01)
        snap = reg.snapshot()
        names = [m["name"] for m in snap["metrics"]]
        assert names == sorted(names)
        json.dumps(snap)  # must not raise


class TestPublishNodeStats:
    def test_every_stats_field_is_published(self):
        reg = MetricsRegistry()
        stats = NodeStats(bytes_sent=128)
        # Dict fields only surface populated keys; give each one entry so
        # absence below can only mean publish_node_stats skipped a field.
        for f in fields(NodeStats):
            if isinstance(getattr(stats, f.name), dict):
                setattr(stats, f.name, {"DerefRequest": 3})
        reg.publish_node_stats("site0", stats)
        published = {m["name"] for m in reg.snapshot()["metrics"]}
        for f in fields(NodeStats):
            assert f"node.{f.name}" in published, f"field {f.name} not mirrored"

    def test_dict_fields_flatten_into_kind_label(self):
        reg = MetricsRegistry()
        stats = NodeStats(messages_received={"ResultBatch": 2, "DerefRequest": 7})
        reg.publish_node_stats("site1", stats)
        assert reg.value("node.messages_received", site="site1", kind="ResultBatch") == 2
        assert reg.value("node.messages_received", site="site1", kind="DerefRequest") == 7

    def test_republish_overwrites(self):
        reg = MetricsRegistry()
        reg.publish_node_stats("s", NodeStats(bytes_sent=10))
        reg.publish_node_stats("s", NodeStats(bytes_sent=25))
        assert reg.value("node.bytes_sent", site="s") == 25
