"""Tests for measurement collection and report rendering."""

import pytest

from repro.metrics.collect import Recorder, Series
from repro.metrics.report import format_value, render_comparison, render_recorder, render_table


class TestSeries:
    def test_summary_statistics(self):
        s = Series("rt")
        s.extend([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.count == 4
        assert s.stdev > 0

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            Series("empty").mean

    def test_single_value_has_zero_spread(self):
        s = Series("one")
        s.add(5)
        assert s.stdev == 0.0
        assert s.confidence_halfwidth() == 0.0

    def test_confidence_interval_shrinks_with_samples(self):
        few, many = Series("few"), Series("many")
        few.extend([1, 2, 3, 4])
        many.extend([1, 2, 3, 4] * 25)
        assert many.confidence_halfwidth() < few.confidence_halfwidth()

    def test_summary_dict(self):
        s = Series("x")
        s.extend([2.0, 4.0])
        summary = s.summary()
        assert summary["count"] == 2 and summary["mean"] == 3.0


class TestRecorder:
    def test_record_and_filter(self):
        rec = Recorder("figure4")
        rec.record(machines=3, p_local=0.95, mean_rt=1.1)
        rec.record(machines=9, p_local=0.95, mean_rt=1.0)
        assert len(rec) == 2
        assert rec.column("machines") == [3, 9]
        assert rec.filtered(machines=9)[0]["mean_rt"] == 1.0

    def test_single_enforces_uniqueness(self):
        rec = Recorder("x")
        rec.record(a=1)
        rec.record(a=1)
        with pytest.raises(ValueError):
            rec.single(a=1)
        assert rec.single(a=2) if False else True


class TestRendering:
    def test_format_value_ranges(self):
        assert format_value(0.0) == "0"
        assert format_value(1234.5) == "1234"
        assert format_value(2.5) == "2.50"
        assert format_value(0.0123) == "0.0123"
        assert format_value("text") == "text"

    def test_render_table_alignment(self):
        rows = [{"name": "chain", "rt": 15.0}, {"name": "tree", "rt": 1.5}]
        text = render_table(rows, title="results")
        lines = text.splitlines()
        assert lines[0] == "results"
        assert "chain" in text and "tree" in text
        assert len({line.index("rt") for line in lines[1:2]}) == 1

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="nothing")

    def test_render_recorder(self):
        rec = Recorder("exp")
        rec.record(a=1, b=2)
        assert "== exp ==" in render_recorder(rec)

    def test_render_comparison(self):
        text = render_comparison(
            "E2", {"single-site": 2.7}, {"single-site": 2.71}, unit="s"
        )
        assert "2.70" in text and "2.71" in text and "E2" in text

    def test_render_comparison_missing_measurement(self):
        text = render_comparison("E2", {"x": 1.0}, {})
        assert "-" in text
