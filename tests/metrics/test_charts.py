"""Tests for the ASCII chart renderer."""

import pytest

from repro.metrics.charts import render_chart


class TestRenderChart:
    def test_basic_structure(self):
        text = render_chart(
            [0, 1, 2],
            {"a": [0.0, 1.0, 2.0], "b": [2.0, 1.0, 0.0]},
            width=20,
            height=5,
            title="demo",
            x_label="x",
            y_label="y",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "o=a" in text and "x=b" in text
        assert "x: x   y: y" in text
        # axis row present
        assert any(set(line.strip()) <= {"+", "-"} and "+" in line for line in lines)

    def test_extremes_labelled(self):
        text = render_chart([0, 1], {"a": [3.5, 7.25]}, width=10, height=4)
        assert "7.25" in text and "3.50" in text

    def test_markers_placed_at_corners(self):
        text = render_chart([0, 1], {"a": [0.0, 10.0]}, width=11, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")   # max value, rightmost column
        assert rows[-1].split("|")[1][0] == "o"  # min value, leftmost column

    def test_flat_series_does_not_divide_by_zero(self):
        text = render_chart([0, 1, 2], {"a": [5.0, 5.0, 5.0]}, width=12, height=4)
        assert "o" in text

    def test_single_point(self):
        text = render_chart([1], {"a": [2.0]}, width=10, height=4)
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_chart([], {"a": []})
        with pytest.raises(ValueError):
            render_chart([0, 1], {"a": [1.0]})
        with pytest.raises(ValueError):
            render_chart([0], {str(i): [0.0] for i in range(20)})

    def test_interpolation_dots_between_points(self):
        text = render_chart([0, 10], {"a": [0.0, 10.0]}, width=30, height=10)
        assert "." in text  # the connecting line
