"""Tests for store snapshots (archival persistence)."""

import io

import pytest

from repro.core.tuples import blob_tuple, keyword_tuple, number_tuple, pointer_tuple, string_tuple
from repro.net.codec import CodecError
from repro.storage.memstore import MemStore
from repro.storage.snapshot import load_store, save_store, snapshot_round_trip_equal
from repro.workload import WorkloadSpec, build_graph, materialize


class TestRoundTrip:
    def test_empty_store(self, tmp_path):
        store = MemStore("archive")
        path = tmp_path / "empty.hfsnap"
        assert save_store(store, path) == 0
        restored = load_store(path)
        assert restored.site == "archive" and len(restored) == 0

    def test_all_tuple_kinds_survive(self, tmp_path):
        store = MemStore("s1")
        target = store.create([keyword_tuple("t")])
        store.create(
            [
                string_tuple("Title", "A Paper"),
                number_tuple("Year", 1991),
                number_tuple("Score", 2.5),
                keyword_tuple("Distributed", "weight-3"),
                pointer_tuple("Ref", target.oid),
                blob_tuple("Image", b"\x00\x01\xfe\xff"),
            ]
        )
        path = tmp_path / "store.hfsnap"
        save_store(store, path)
        restored = load_store(path)
        assert snapshot_round_trip_equal(store, restored)

    def test_workload_round_trip(self, tmp_path, small_spec, small_graph):
        store = MemStore("solo")
        materialize(small_spec, [store], graph=small_graph)
        path = tmp_path / "workload.hfsnap"
        count = save_store(store, path)
        assert count == small_spec.n_objects
        restored = load_store(path)
        assert snapshot_round_trip_equal(store, restored)

    def test_queries_agree_after_restore(self, tmp_path, small_spec, small_graph):
        from repro.core.program import compile_query
        from repro.engine.local import run_local
        from repro.workload import closure_query

        store = MemStore("solo")
        workload = materialize(small_spec, [store], graph=small_graph)
        program = compile_query(closure_query("Tree", "Rand10p", 5))
        before = run_local(program, [workload.root], store.get)

        path = tmp_path / "workload.hfsnap"
        save_store(store, path)
        restored = load_store(path)
        after = run_local(program, [workload.root], restored.get)
        assert before.oid_keys() == after.oid_keys()

    def test_allocator_position_preserved(self, tmp_path):
        store = MemStore("s1")
        store.create([])
        store.create([])
        path = tmp_path / "s.hfsnap"
        save_store(store, path)
        restored = load_store(path)
        fresh = restored.create([])
        assert fresh.oid.local_id == 2  # no id reuse after restore

    def test_file_like_objects(self):
        store = MemStore("s1")
        store.create([keyword_tuple("K")])
        buffer = io.BytesIO()
        save_store(store, buffer)
        buffer.seek(0)
        restored = load_store(buffer)
        assert snapshot_round_trip_equal(store, restored)


class TestRobustness:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"NOTASNAPSHOT")
        with pytest.raises(CodecError, match="magic"):
            load_store(path)

    def test_truncated_snapshot(self, tmp_path):
        store = MemStore("s1")
        store.create([keyword_tuple("K"), string_tuple("Title", "x" * 100)])
        path = tmp_path / "s.hfsnap"
        save_store(store, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        with pytest.raises(CodecError):
            load_store(path)

    def test_trailing_garbage(self, tmp_path):
        store = MemStore("s1")
        store.create([keyword_tuple("K")])
        path = tmp_path / "s.hfsnap"
        save_store(store, path)
        path.write_bytes(path.read_bytes() + b"\x00\x00")
        with pytest.raises(CodecError, match="trailing"):
            load_store(path)

    def test_unsupported_version(self, tmp_path):
        store = MemStore("s1")
        path = tmp_path / "s.hfsnap"
        save_store(store, path)
        data = bytearray(path.read_bytes())
        data[6] = 99  # version byte
        path.write_bytes(bytes(data))
        with pytest.raises(CodecError, match="version"):
            load_store(path)
