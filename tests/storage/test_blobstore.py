"""Tests for large-item segregation (paper's blob/disk split)."""

import pytest

from repro.core.objects import HFObject
from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, text_tuple
from repro.engine.local import run_local
from repro.errors import ObjectNotFound
from repro.storage.blobstore import BlobRef, BlobStore, resolve_value, spill_large_tuples
from repro.storage.memstore import MemStore


@pytest.fixture
def blobs():
    return BlobStore("s1")


class TestSpill:
    def test_large_payload_replaced_by_ref(self, blobs):
        obj = HFObject(Oid("s1", 0), [text_tuple("Body", "x" * 1000), keyword_tuple("K")])
        spilled = spill_large_tuples(obj, blobs, threshold=256)
        body = spilled.first("Text", "Body")
        assert isinstance(body.data, BlobRef)
        assert body.data.size == 1000

    def test_small_values_stay_inline(self, blobs):
        obj = HFObject(Oid("s1", 0), [text_tuple("Body", "short"), keyword_tuple("K")])
        spilled = spill_large_tuples(obj, blobs, threshold=256)
        assert spilled.first("Text", "Body").data == "short"
        assert len(blobs) == 0

    def test_unchanged_object_returned_as_is(self, blobs):
        obj = HFObject(Oid("s1", 0), [keyword_tuple("K")])
        assert spill_large_tuples(obj, blobs) is obj

    def test_pointers_never_spilled(self, blobs):
        from repro.core.tuples import pointer_tuple

        obj = HFObject(Oid("s1", 0), [pointer_tuple("Ref", Oid("s1", 1))])
        spilled = spill_large_tuples(obj, blobs, threshold=0)
        assert spilled.pointers() == [Oid("s1", 1)]


class TestReadBack:
    def test_resolve_round_trip(self, blobs):
        payload = "y" * 2000
        obj = HFObject(Oid("s1", 0), [text_tuple("Body", payload)])
        spilled = spill_large_tuples(obj, blobs)
        ref = spilled.first("Text", "Body").data
        assert resolve_value(ref, blobs) == payload

    def test_disk_access_counted(self, blobs):
        obj = HFObject(Oid("s1", 0), [text_tuple("Body", "z" * 500)])
        ref = spill_large_tuples(obj, blobs).first("Text", "Body").data
        assert blobs.disk_reads == 0
        blobs.get(ref)
        blobs.get(ref)
        assert blobs.disk_reads == 2
        assert blobs.disk_writes == 1

    def test_plain_values_pass_through_resolve(self, blobs):
        assert resolve_value("inline", blobs) == "inline"
        assert resolve_value("inline", None) == "inline"

    def test_missing_blob(self, blobs):
        ghost = BlobRef(Oid("s1", 9), "Body", 10)
        with pytest.raises(ObjectNotFound):
            blobs.get(ghost)


class TestQueriesAvoidDisk:
    def test_filtering_never_touches_blobs(self, blobs):
        # The paper's design point: searches run on in-memory search
        # information; disk is only for retrieving large items.
        store = MemStore("s1")
        obj = store.create([keyword_tuple("Interesting"), text_tuple("Body", "b" * 4096)])
        store.replace(spill_large_tuples(store.get(obj.oid), blobs))
        program = compile_query(parse_query('S (Keyword, "Interesting", ?) -> T'))
        result = run_local(program, [obj.oid], store.get)
        assert len(result.oids) == 1
        assert blobs.disk_reads == 0

    def test_retrieval_ships_the_ref_not_the_bits(self, blobs):
        store = MemStore("s1")
        obj = store.create([text_tuple("Body", "b" * 4096)])
        store.replace(spill_large_tuples(store.get(obj.oid), blobs))
        program = compile_query(parse_query('S (Text, "Body", ->body) -> T'))
        result = run_local(program, [obj.oid], store.get)
        (ref,) = result.retrieved["body"]
        assert isinstance(ref, BlobRef)
        assert blobs.disk_reads == 0  # only the application's resolve reads
        assert resolve_value(ref, blobs) == "b" * 4096
        assert blobs.disk_reads == 1
