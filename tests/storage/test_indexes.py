"""Tests for inverted tuple indexes."""

import pytest

from repro.core.tuples import keyword_tuple, string_tuple, tuple_of
from repro.storage.indexes import TupleIndex, build_index
from repro.storage.memstore import MemStore


@pytest.fixture
def indexed_store():
    store = MemStore("s1")
    a = store.create([keyword_tuple("Distributed"), string_tuple("Author", "Clifton")])
    b = store.create([keyword_tuple("Distributed"), string_tuple("Author", "Garcia-Molina")])
    c = store.create([keyword_tuple("Hypertext")])
    return store, build_index(store), (a.oid, b.oid, c.oid)


class TestLookup:
    def test_find_by_type_and_key(self, indexed_store):
        _, index, (a, b, c) = indexed_store
        found = index.find("Keyword", "Distributed")
        assert {o.key() for o in found} == {a.key(), b.key()}

    def test_find_missing_key(self, indexed_store):
        _, index, _ = indexed_store
        assert index.find("Keyword", "Nonexistent") == []

    def test_find_keys_form(self, indexed_store):
        _, index, (a, _, _) = indexed_store
        assert a.key() in index.find_keys("Keyword", "Distributed")

    def test_postings_histogram(self, indexed_store):
        _, index, _ = indexed_store
        hist = index.postings("Keyword")
        assert hist == {"Distributed": 2, "Hypertext": 1}


class TestMaintenance:
    def test_add_after_build(self, indexed_store):
        store, index, _ = indexed_store
        d = store.create([keyword_tuple("Distributed")])
        index.add_object(store.get(d.oid))
        assert len(index.find("Keyword", "Distributed")) == 3

    def test_remove_object(self, indexed_store):
        store, index, (a, _, _) = indexed_store
        index.remove_object(store.get(a))
        assert {o.key() for o in index.find("Keyword", "Distributed")} != {a.key()}
        assert len(index.find("Keyword", "Distributed")) == 1

    def test_empty_buckets_deleted(self, indexed_store):
        store, index, (_, _, c) = indexed_store
        before = len(index)
        index.remove_object(store.get(c))
        assert len(index) == before - 1


class TestScoping:
    def test_type_restriction(self):
        store = MemStore("s1")
        store.create([keyword_tuple("K"), string_tuple("Author", "X")])
        index = build_index(store, indexed_types=["Keyword"])
        assert index.find("Keyword", "K")
        assert index.find("String", "Author") == []

    def test_unhashable_keys_skipped(self):
        index = TupleIndex()
        store = MemStore("s1")
        obj = store.create([tuple_of("Odd", ["un", "hashable"], "data"), keyword_tuple("K")])
        index.add_object(store.get(obj.oid))  # must not raise
        assert index.find("Keyword", "K")

    def test_lookup_counter(self, indexed_store):
        _, index, _ = indexed_store
        before = index.lookups
        index.find("Keyword", "Distributed")
        assert index.lookups == before + 1
