"""Tests for the index-aware query planner."""

import pytest

from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.engine.local import run_local
from repro.storage.memstore import MemStore
from repro.storage.planner import QueryPlanner
from repro.workload import closure_query, materialize


def prog(text):
    return compile_query(parse_query(text))


@pytest.fixture
def planner_setup(small_spec, small_graph):
    store = MemStore("solo")
    workload = materialize(small_spec, [store], graph=small_graph)
    return store, workload, QueryPlanner([store])


class TestRouting:
    def test_canonical_shape_goes_to_index(self, planner_setup):
        _, workload, planner = planner_setup
        program = compile_query(closure_query("Tree", "Rand10p", 5))
        assert planner.plan(program) == "index"
        planner.execute(program, [workload.root])
        assert planner.index_answers == 1 and planner.engine_answers == 0

    def test_other_shapes_fall_back_to_engine(self, planner_setup):
        _, workload, planner = planner_setup
        program = prog('S [ (Pointer,"Tree",?X) ^^X ]^3 (Rand10p, 5, ?) -> T')
        assert planner.plan(program) == "engine"
        planner.execute(program, [workload.root])
        assert planner.engine_answers == 1

    def test_both_routes_agree(self, planner_setup):
        store, workload, planner = planner_setup
        program = compile_query(closure_query("Chain", "Rand100p", 17))
        via_planner = planner.execute(program, [workload.root])
        via_engine = run_local(program, [workload.root], store.get)
        assert via_planner.oid_keys() == via_engine.oid_keys()


class TestMaintenance:
    def test_update_invalidates(self):
        store = MemStore("s1")
        b = store.create([keyword_tuple("K")])
        store.replace(store.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        a = store.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
        planner = QueryPlanner([store])
        program = prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T')
        first = planner.execute(program, [a.oid])
        assert len(first.oids) == 2

        # Grow the graph: b -> c.
        c = store.create([keyword_tuple("K")])
        store.replace(store.get(c.oid).with_tuple(pointer_tuple("Ref", c.oid)))
        store.replace(store.get(b.oid).with_tuple(pointer_tuple("Ref", c.oid)))
        planner.notify_update(b.oid)
        planner.notify_update(c.oid)
        second = planner.execute(program, [a.oid])
        assert len(second.oids) == 3

    def test_invalidate_all_rebuilds(self, planner_setup):
        store, workload, planner = planner_setup
        program = compile_query(closure_query("Tree", "Rand10p", 5))
        first = planner.execute(program, [workload.root])
        planner.invalidate_all()
        second = planner.execute(program, [workload.root])
        assert first.oid_keys() == second.oid_keys()

    def test_lazy_per_key_reachability(self, planner_setup):
        _, workload, planner = planner_setup
        planner.execute(compile_query(closure_query("Tree", "Rand10p", 5)), [workload.root])
        assert set(planner._reach) == {"Tree"}
        planner.execute(compile_query(closure_query("Chain", "Rand10p", 5)), [workload.root])
        assert set(planner._reach) == {"Tree", "Chain"}


class TestEpochInvalidation:
    """Satellite regression (PR 4): a MemStore mutated *without*
    ``notify_update`` used to leave the lazily-built indexes stale, so
    index answers diverged from engine traversal."""

    CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'

    def _chain(self, store, n=3):
        oids = [store.create([keyword_tuple("K")]).oid for _ in range(n)]
        for i in range(n - 1):
            store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
        store.replace(store.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
        return oids

    def test_mutate_then_query_sees_new_objects(self):
        store = MemStore("s1")
        oids = self._chain(store)
        planner = QueryPlanner([store])
        program = prog(self.CLOSURE)
        assert len(planner.execute(program, [oids[0]]).oids) == 3

        # Mutate behind the planner's back: extend the chain by one.
        d = store.create([keyword_tuple("K")])
        store.replace(store.get(d.oid).with_tuple(pointer_tuple("Ref", d.oid)))
        store.replace(store.get(oids[-1]).with_tuple(pointer_tuple("Ref", d.oid)))

        via_planner = planner.execute(program, [oids[0]])
        via_engine = run_local(program, [oids[0]], store.get)
        assert via_planner.oid_keys() == via_engine.oid_keys()
        assert len(via_planner.oids) == 4

    def test_removal_invalidates(self):
        store = MemStore("s1")
        oids = self._chain(store)
        planner = QueryPlanner([store])
        program = prog(self.CLOSURE)
        assert len(planner.execute(program, [oids[0]]).oids) == 3
        store.remove(oids[2])
        via_planner = planner.execute(program, [oids[0]])
        via_engine = run_local(program, [oids[0]], store.get)
        assert via_planner.oid_keys() == via_engine.oid_keys()
        assert len(via_planner.oids) == 2

    def test_notify_update_keeps_indexes_incremental(self):
        # The incremental path must still work: a single mutation that
        # *is* reported through notify_update does not force a rebuild.
        store = MemStore("s1")
        oids = self._chain(store)
        planner = QueryPlanner([store])
        program = prog(self.CLOSURE)
        planner.execute(program, [oids[0]])
        before = planner._tuple_index
        d = store.create([keyword_tuple("K"), pointer_tuple("Ref", oids[0])])
        planner.notify_update(d.oid)
        planner.execute(program, [oids[0]])
        assert planner._tuple_index is before  # no drop-and-rebuild

    def test_unmutated_store_does_not_invalidate(self):
        store = MemStore("s1")
        oids = self._chain(store)
        planner = QueryPlanner([store])
        program = prog(self.CLOSURE)
        planner.execute(program, [oids[0]])
        before = planner._tuple_index
        planner.execute(program, [oids[0]])
        assert planner._tuple_index is before
