"""Tests for the per-site main-memory store."""

import pytest

from repro.core.objects import HFObject
from repro.core.oid import Oid
from repro.core.tuples import keyword_tuple, string_tuple
from repro.errors import DuplicateObject, ObjectNotFound
from repro.storage.memstore import MemStore, UnionStore


class TestCreateAndGet:
    def test_create_allocates_local_ids(self, store):
        a = store.create([keyword_tuple("A")])
        b = store.create([keyword_tuple("B")])
        assert a.oid.birth_site == "s1" and b.oid.local_id == a.oid.local_id + 1

    def test_get_round_trip(self, store):
        obj = store.create([string_tuple("Title", "x")])
        assert store.get(obj.oid) is obj

    def test_get_missing_raises(self, store):
        with pytest.raises(ObjectNotFound):
            store.get(Oid("s1", 42))

    def test_get_is_hint_insensitive(self, store):
        obj = store.create([])
        assert store.get(obj.oid.with_hint("elsewhere")) is obj

    def test_fetch_counter(self, store):
        obj = store.create([])
        before = store.fetch_count
        store.get(obj.oid)
        store.get(obj.oid)
        assert store.fetch_count == before + 2


class TestPutReplaceRemove:
    def test_put_foreign_object(self, store):
        foreign = HFObject(Oid("other", 7), [keyword_tuple("K")])
        store.put(foreign)
        assert store.get(foreign.oid) is foreign

    def test_put_duplicate_rejected(self, store):
        obj = store.create([])
        with pytest.raises(DuplicateObject):
            store.put(HFObject(obj.oid, []))

    def test_put_overwrite_flag(self, store):
        obj = store.create([])
        replacement = HFObject(obj.oid, [keyword_tuple("New")])
        store.put(replacement, overwrite=True)
        assert store.get(obj.oid) is replacement

    def test_replace_requires_existing(self, store):
        with pytest.raises(ObjectNotFound):
            store.replace(HFObject(Oid("s1", 77), []))

    def test_remove_returns_object(self, store):
        obj = store.create([])
        removed = store.remove(obj.oid)
        assert removed is obj
        assert not store.contains(obj.oid)

    def test_remove_missing(self, store):
        with pytest.raises(ObjectNotFound):
            store.remove(Oid("s1", 5))


class TestIterationAndScan:
    def test_oids_in_insertion_order(self, store):
        created = [store.create([]).oid for _ in range(3)]
        assert store.oids() == created

    def test_scan_with_predicate(self, store):
        store.create([keyword_tuple("Match")])
        store.create([keyword_tuple("Other")])
        hits = list(store.scan(lambda obj: obj.first("Keyword", "Match") is not None))
        assert len(hits) == 1

    def test_len_and_contains(self, store):
        obj = store.create([])
        assert len(store) == 1
        assert obj.oid in store
        assert Oid("s1", 99) not in store
        assert "not-an-oid" not in store


class TestUnionStore:
    def test_reads_across_sites(self):
        s0, s1 = MemStore("s0"), MemStore("s1")
        a = s0.create([keyword_tuple("A")])
        b = s1.create([keyword_tuple("B")])
        union = UnionStore([s0, s1])
        assert union.get(a.oid) is a
        assert union.get(b.oid) is b
        assert len(union) == 2
        assert {o.key() for o in union.oids()} == {a.oid.key(), b.oid.key()}

    def test_missing_everywhere(self):
        union = UnionStore([MemStore("s0")])
        with pytest.raises(ObjectNotFound):
            union.get(Oid("s0", 1))
