"""Tests for reachability indexes (paper ref [4] facilities)."""

import pytest

from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.engine.local import run_local
from repro.storage.indexes import build_index
from repro.storage.memstore import MemStore
from repro.storage.reachability import (
    answer_closure_query,
    build_reachability,
    match_closure_shape,
)
from repro.workload import WorkloadSpec, build_graph, closure_query, materialize


def prog(text):
    return compile_query(parse_query(text))


class TestClosureComputation:
    @pytest.fixture
    def diamond(self):
        store = MemStore("s1")
        d = store.create([keyword_tuple("K")])
        b = store.create([pointer_tuple("Ref", d.oid)])
        c = store.create([pointer_tuple("Ref", d.oid)])
        a = store.create([pointer_tuple("Ref", b.oid), pointer_tuple("Ref", c.oid)])
        return store, (a.oid, b.oid, c.oid, d.oid)

    def test_closure_includes_roots(self, diamond):
        store, (a, b, c, d) = diamond
        reach = build_reachability([store], "Ref")
        assert reach.closure([a]) == {a.key(), b.key(), c.key(), d.key()}

    def test_closure_from_interior(self, diamond):
        store, (a, b, c, d) = diamond
        reach = build_reachability([store], "Ref")
        assert reach.closure([b]) == {b.key(), d.key()}

    def test_closure_handles_cycles(self):
        store = MemStore("s1")
        a = store.create([])
        b = store.create([pointer_tuple("Ref", a.oid)])
        store.replace(store.get(a.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        reach = build_reachability([store], "Ref")
        assert reach.closure([a.oid]) == {a.oid.key(), b.oid.key()}

    def test_single_root_closure_is_cached(self, diamond):
        store, (a, *_rest) = diamond
        reach = build_reachability([store], "Ref")
        first = reach.closure([a])
        assert reach.closure([a]) is first

    def test_cache_invalidated_by_updates(self, diamond):
        store, (a, b, c, d) = diamond
        reach = build_reachability([store], "Ref")
        reach.closure([a])
        e = store.create([])
        store.replace(store.get(d).with_tuple(pointer_tuple("Ref", e.oid)))
        reach.add_object(store.get(d))
        reach.add_object(store.get(e.oid))
        assert e.oid.key() in reach.closure([a])


class TestShapeDetection:
    def test_canonical_shape_matches(self):
        p = prog('Root [ (Pointer, "Tree", ?X) ^^X ]* (Rand10p, 5, ?) -> T')
        assert match_closure_shape(p) == ("Tree", "Rand10p", 5)

    @pytest.mark.parametrize(
        "text",
        [
            'Root [ (Pointer,"Tree",?X) ^^X ]^3 (Rand10p,5,?) -> T',   # bounded
            'Root [ (Pointer,"Tree",?X) ^X ]* (Rand10p,5,?) -> T',     # drops source
            'Root (Rand10p,5,?) -> T',                                  # no loop
            'Root [ (Pointer,"Tree",?X) ^^X ]* (Rand10p,?,?) -> T',     # non-literal key
            'Root [ (Pointer,"Tree",?X) ^^X ]* (Rand10p,5,?) (Common,0,?) -> T',  # extra filter
        ],
    )
    def test_non_canonical_shapes_rejected(self, text):
        assert match_closure_shape(prog(text)) is None


class TestEngineEquivalence:
    def test_index_answer_matches_engine_on_workload(self, single_site_workload):
        store, workload = single_site_workload
        reach = build_reachability([store], "Tree")
        tuples = build_index(store)
        for value in (1, 5, 10):
            program = compile_query(closure_query("Tree", "Rand10p", value))
            engine = run_local(program, [workload.root], store.get)
            indexed = answer_closure_query(program, [workload.root], reach, tuples)
            assert indexed is not None
            assert indexed.oid_keys() == engine.oid_keys(), f"value={value}"

    def test_leaf_drop_replicated(self):
        # A reached leaf without outgoing pointers is excluded by the
        # engine (it fails the iterator body) — the index-based answer
        # must replicate that.
        store = MemStore("s1")
        leaf = store.create([keyword_tuple("K")])
        root = store.create([pointer_tuple("Ref", leaf.oid), keyword_tuple("K")])
        program = prog('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T')
        reach = build_reachability([store], "Ref")
        tuples = build_index(store)
        engine = run_local(program, [root.oid], store.get)
        indexed = answer_closure_query(program, [root.oid], reach, tuples)
        assert indexed.oid_keys() == engine.oid_keys() == {root.oid.key()}

    def test_wrong_pointer_key_returns_none(self, single_site_workload):
        store, workload = single_site_workload
        reach = build_reachability([store], "Chain")
        tuples = build_index(store)
        program = compile_query(closure_query("Tree", "Rand10p", 5))
        assert answer_closure_query(program, [workload.root], reach, tuples) is None
