"""Direct tests of the per-site query context (flush cursors, partitions)."""

import pytest

from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, string_tuple
from repro.engine.local import QueryExecution
from repro.net.messages import QueryId
from repro.server.context import QueryContext
from repro.storage.memstore import MemStore
from repro.termination.weights import WeightedStrategy


def make_context(store, text='S (Keyword,"K",?) (String,"Title",->title) -> T'):
    program = compile_query(parse_query(text))
    execution = QueryExecution(program, store.get)
    strategy = WeightedStrategy()
    return QueryContext(
        qid=QueryId(1, "site0"),
        execution=execution,
        is_originator=False,
        term_state=strategy.new_state("site1", False),
    )


class TestFlushCursors:
    def test_take_unflushed_returns_only_new_results(self, store):
        a = store.create([keyword_tuple("K"), string_tuple("Title", "A")])
        b = store.create([keyword_tuple("K"), string_tuple("Title", "B")])
        ctx = make_context(store)

        ctx.execution.seed([a.oid])
        while ctx.execution.has_work:
            ctx.execution.step()
        oids, emissions = ctx.take_unflushed()
        assert [o.key() for o in oids] == [a.oid.key()]
        assert emissions == (("title", "A"),)

        # Nothing new: a second drain ships nothing.
        assert ctx.take_unflushed() == ((), ())

        # More work arrives; only the delta is flushed.
        ctx.execution.seed([b.oid])
        while ctx.execution.has_work:
            ctx.execution.step()
        oids, emissions = ctx.take_unflushed()
        assert [o.key() for o in oids] == [b.oid.key()]
        assert emissions == (("title", "B"),)

    def test_multiple_targets_tracked_independently(self, store):
        obj = store.create([keyword_tuple("K"), string_tuple("Title", "T"),
                            string_tuple("Author", "A")])
        ctx = make_context(
            store,
            'S (Keyword,"K",?) (String,"Title",->t) (String,"Author",->a) -> T',
        )
        ctx.execution.seed([obj.oid])
        while ctx.execution.has_work:
            ctx.execution.step()
        _, emissions = ctx.take_unflushed()
        assert set(emissions) == {("t", "T"), ("a", "A")}
        assert ctx.take_unflushed() == ((), ())


class TestBusyAndPartition:
    def test_busy_tracks_working_set(self, store):
        obj = store.create([keyword_tuple("K")])
        ctx = make_context(store, 'S (Keyword,"K",?) -> T')
        assert not ctx.busy
        ctx.execution.seed([obj.oid])
        assert ctx.busy
        ctx.execution.step()
        assert not ctx.busy

    def test_local_partition_accumulates_across_drains(self, store):
        a = store.create([keyword_tuple("K")])
        b = store.create([keyword_tuple("K")])
        ctx = make_context(store, 'S (Keyword,"K",?) -> T')
        for oid in (a.oid, b.oid):
            ctx.execution.seed([oid])
            while ctx.execution.has_work:
                ctx.execution.step()
            ctx.take_unflushed()
        assert [o.key() for o in ctx.local_partition()] == [a.oid.key(), b.oid.key()]
