"""NodeStats merge semantics — field-driven, so nothing can be forgotten."""

from dataclasses import fields

from repro.server.stats import NodeStats


def _filled(offset: int) -> NodeStats:
    """A NodeStats with a distinct nonzero value in *every* field."""
    stats = NodeStats()
    for i, f in enumerate(fields(NodeStats)):
        current = getattr(stats, f.name)
        if isinstance(current, dict):
            setattr(stats, f.name, {"A": offset + i, "B": 1})
        elif isinstance(current, float):
            setattr(stats, f.name, float(offset + i) + 0.5)
        else:
            setattr(stats, f.name, offset + i)
    return stats


class TestMerge:
    def test_merge_covers_every_field(self):
        # The point of the fields()-driven merge: a counter added to the
        # dataclass is merged without touching merge() — this test fails
        # the moment any field stops accumulating.
        a, b = _filled(100), _filled(1000)
        a.merge(b)
        for i, f in enumerate(fields(NodeStats)):
            merged = getattr(a, f.name)
            if isinstance(merged, dict):
                assert merged == {"A": 1100 + 2 * i, "B": 2}, f.name
            elif isinstance(merged, float):
                assert merged == (100 + i + 0.5) + (1000 + i + 0.5), f.name
            else:
                assert merged == 1100 + 2 * i, f.name

    def test_dict_merge_adds_per_key(self):
        a = NodeStats(messages_sent={"DerefRequest": 2})
        b = NodeStats(messages_sent={"DerefRequest": 3, "ResultBatch": 1})
        a.merge(b)
        assert a.messages_sent == {"DerefRequest": 5, "ResultBatch": 1}

    def test_merge_into_empty(self):
        a = NodeStats()
        a.merge(_filled(10))
        assert a.bytes_sent == getattr(_filled(10), "bytes_sent")

    def test_merge_leaves_other_untouched(self):
        a, b = NodeStats(bytes_sent=1), NodeStats(bytes_sent=2)
        a.merge(b)
        assert b.bytes_sent == 2 and a.bytes_sent == 3

    def test_totals_follow_merged_dicts(self):
        a = NodeStats(messages_sent={"X": 1}, messages_received={"Y": 4})
        a.merge(NodeStats(messages_sent={"X": 1}))
        assert a.total_sent == 2 and a.total_received == 4
