"""Tests for the server node (per-site algorithm of paper §3.2)."""

import pytest

from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.errors import HyperFileError
from repro.naming.directory import ForwardingTable
from repro.net.messages import DerefRequest, Envelope, QueryId, ResultBatch
from repro.server.node import ServerNode
from repro.sim.costs import PAPER_COSTS
from repro.storage.memstore import MemStore
from repro.termination.weights import WeightedStrategy


def prog(text='S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'):
    return compile_query(parse_query(text))


def make_node(site="site0", **kwargs):
    store = MemStore(site)
    node = ServerNode(site, store, **kwargs)
    return node, store


class TestLocate:
    def test_local_object(self):
        node, store = make_node()
        obj = store.create([])
        assert node.locate(obj.oid) == "site0"

    def test_forwarding_entry_wins_over_hint(self):
        table = ForwardingTable("site0")
        store = MemStore("site0")
        node = ServerNode("site0", store, forwarding=table)
        oid = Oid("site0", 5, presumed_site="site0")
        table.record(oid, "site2")
        assert node.locate(oid) == "site2"

    def test_birth_here_unknown_is_local_miss(self):
        node, _ = make_node()
        assert node.locate(Oid("site0", 99)) == "site0"

    def test_foreign_hint_used(self):
        node, _ = make_node()
        assert node.locate(Oid("site1", 3, presumed_site="site2")) == "site2"

    def test_stale_self_hint_falls_back_to_birth(self):
        node, _ = make_node()
        # Hint says "here" but the object is not here: ask the birth site.
        assert node.locate(Oid("site1", 3, presumed_site="site0")) == "site1"


class TestLocalOnlyQuery:
    def test_submit_and_drain_completes(self):
        completions = []
        store = MemStore("site0")
        node = ServerNode("site0", store, on_query_complete=lambda q, r: completions.append((q, r)))
        a = store.create([keyword_tuple("K")])
        store.replace(store.get(a.oid).with_tuple(pointer_tuple("Ref", a.oid)))
        qid = QueryId(1, "site0")
        node.submit(qid, prog(), [a.oid])
        node.run_to_idle()
        assert len(completions) == 1
        _, result = completions[0]
        assert result.oids.as_key_set() == {a.oid.key()}

    def test_empty_initial_set_terminates_immediately(self):
        completions = []
        store = MemStore("site0")
        node = ServerNode("site0", store, on_query_complete=lambda q, r: completions.append(r))
        node.submit(QueryId(1, "site0"), prog(), [])
        assert len(completions) == 1
        assert len(completions[0].oids) == 0

    def test_submit_at_wrong_site_rejected(self):
        node, _ = make_node("site0")
        with pytest.raises(HyperFileError):
            node.submit(QueryId(1, "site9"), prog(), [])


class TestRemoteInteraction:
    def test_remote_seed_produces_deref_request(self):
        node, _ = make_node("site0")
        qid = QueryId(1, "site0")
        remote_oid = Oid("site1", 0)
        report = node.submit(qid, prog(), [remote_oid])
        kinds = [type(env.payload).__name__ for env in report.outgoing]
        assert "DerefRequest" in kinds
        deref = next(e for e in report.outgoing if isinstance(e.payload, DerefRequest))
        assert deref.dst == "site1"
        assert deref.payload.item.start == 1

    def test_incoming_deref_processed_and_results_returned(self):
        node, store = make_node("site1")
        obj = store.create([keyword_tuple("K"), ])
        store.replace(store.get(obj.oid).with_tuple(pointer_tuple("Ref", obj.oid)))
        qid = QueryId(1, "site0")
        strategy = WeightedStrategy()
        orig_state = strategy.new_state("site0", True)
        strategy.on_start(orig_state)
        attach = strategy.on_send_work(orig_state)
        from repro.engine.items import WorkItem

        msg = DerefRequest(qid, prog(), WorkItem(obj.oid), dict(attach))
        node.on_message(Envelope("site0", "site1", msg))
        report = node.run_to_idle()
        batches = [e for e in report.outgoing if isinstance(e.payload, ResultBatch)]
        assert len(batches) == 1
        batch = batches[0].payload
        assert batch.oids[0].key() == obj.oid.key()
        assert batch.term["credit"] == attach["credit"]  # full credit returned
        assert batches[0].dst == "site0"

    def test_context_reused_across_drains(self):
        # "the setup cost associated with the query is only required once"
        node, store = make_node("site1")
        o1 = store.create([keyword_tuple("K"), pointer_tuple("Ref", Oid("site1", 0))])
        strategy = WeightedStrategy()
        orig_state = strategy.new_state("site0", True)
        strategy.on_start(orig_state)
        qid = QueryId(1, "site0")
        from repro.engine.items import WorkItem

        for _ in range(2):
            attach = strategy.on_send_work(orig_state)
            node.on_message(
                Envelope("site0", "site1", DerefRequest(qid, prog(), WorkItem(o1.oid), dict(attach)))
            )
            node.run_to_idle()
        assert node.stats.contexts_created == 1
        assert node.stats.drains == 2

    def test_results_for_unknown_query_rejected(self):
        node, _ = make_node("site0")
        node.on_message(Envelope("site1", "site0", ResultBatch(QueryId(9, "site0"))))
        with pytest.raises(HyperFileError):
            node.run_to_idle()

    def test_down_site_send_dropped_and_counted(self):
        store = MemStore("site0")
        node = ServerNode("site0", store, is_site_up=lambda s: s == "site0",
                          on_query_complete=lambda q, r: None)
        node.submit(QueryId(1, "site0"), prog(), [Oid("site1", 0)])
        report = node.run_to_idle()
        assert node.stats.failed_sends == 1
        assert report.outgoing == []


class TestCostAccounting:
    def test_object_step_costs_8ms(self):
        node, store = make_node("site0")
        a = store.create([keyword_tuple("K")])
        node.submit(QueryId(1, "site0"), prog('S (Keyword,"K",?) -> T'), [a.oid])
        report = node.step()
        assert report.elapsed == pytest.approx(
            PAPER_COSTS.object_process_s + PAPER_COSTS.result_insert_s
        )

    def test_marked_skip_is_cheap(self):
        node, store = make_node("site0")
        a = store.create([keyword_tuple("K")])
        node.submit(QueryId(1, "site0"), prog('S (Keyword,"K",?) -> T'), [a.oid, a.oid])
        node.step()
        report = node.step()  # duplicate admission
        assert report.elapsed == pytest.approx(PAPER_COSTS.mark_check_s)

    def test_validation_of_result_mode(self):
        with pytest.raises(ValueError):
            ServerNode("site0", MemStore("site0"), result_mode="zip")
