"""Regression tests: deadline expiry vs. in-flight credit, and query-id
reuse (PR 4 satellite).

The contract under test: once ``WeightedStrategy.on_deadline`` forced
``recovered = 1`` at the originator, a result message that still carries
credit from the written-off run must be *ignored* by the node — counted
as late, never fed to ``on_result`` (which would raise the over-recovery
:class:`~repro.errors.TerminationProtocolError`).  The same must hold
when the expired query id is reused for a fresh run: the straggler
belongs to incarnation 1, the new context to incarnation 2.
"""

from fractions import Fraction

import pytest

from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.core.tuples import keyword_tuple, pointer_tuple
from repro.errors import HyperFileError
from repro.net.messages import DerefRequest, Envelope, QueryId, ResultBatch
from repro.server.node import ServerNode
from repro.storage.memstore import MemStore

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def prog(text=CLOSURE):
    return compile_query(parse_query(text))


def originator_with_remote_work(qid):
    """A site0 node whose submitted query immediately ships work to site1."""
    completions = []
    store = MemStore("site0")
    node = ServerNode(
        "site0", store, on_query_complete=lambda q, r: completions.append((q, r))
    )
    root = store.create([keyword_tuple("K"), pointer_tuple("Ref", Oid("site1", 1))])
    report = node.submit(qid, prog(), [root.oid])
    report2 = node.run_to_idle()
    sent = report.outgoing + report2.outgoing
    assert any(isinstance(env.payload, DerefRequest) for env in sent)
    return node, store, root, completions, sent


class TestLateResultAfterDeadline:
    def test_late_credit_ignored_not_over_recovered(self):
        qid = QueryId(1, "site0")
        node, _, root, completions, sent = originator_with_remote_work(qid)
        ctx = node.contexts[qid]
        in_flight = next(
            env.payload.term["credit"]
            for env in sent
            if isinstance(env.payload, DerefRequest)
        )
        assert in_flight > 0

        node.expire_query(qid)
        assert ctx.done
        assert ctx.term_state.recovered == Fraction(1)
        assert completions and completions[0][1].partial

        before = node.stats.late_messages
        # The written-off credit finally comes home: must not raise.
        late = ResultBatch(qid, oids=(Oid("site1", 1),), term={"credit": in_flight})
        node.on_message(Envelope("site1", "site0", late))
        node.run_to_idle()
        assert node.stats.late_messages == before + 1
        assert ctx.term_state.recovered == Fraction(1)  # unchanged
        # The client's (partial) answer was not mutated behind its back.
        assert Oid("site1", 1).key() not in completions[0][1].oids.as_key_set()

    def test_duplicate_late_results_all_ignored(self):
        qid = QueryId(1, "site0")
        node, _, _, _, sent = originator_with_remote_work(qid)
        node.expire_query(qid)
        late = ResultBatch(qid, term={"credit": Fraction(1, 2)})
        for _ in range(3):
            node.on_message(Envelope("site1", "site0", late))
        node.run_to_idle()
        assert node.stats.late_messages == 3
        assert node.contexts[qid].term_state.recovered == Fraction(1)


class TestReusedQueryId:
    def test_straggler_from_previous_incarnation_ignored(self):
        qid = QueryId(1, "site0")
        node, store, root, completions, sent = originator_with_remote_work(qid)
        in_flight = next(
            env.payload.term["credit"]
            for env in sent
            if isinstance(env.payload, DerefRequest)
        )
        node.expire_query(qid)

        # Re-run the query under the *same id*, this time fully local.
        local = store.create([keyword_tuple("K")])
        store.replace(store.get(local.oid).with_tuple(pointer_tuple("Ref", local.oid)))
        node.submit(qid, prog(), [local.oid])
        ctx = node.contexts[qid]
        assert ctx.incarnation == 2

        # The first run's straggler arrives mid-flight: its credit must
        # not leak into the new run's ledger (that would over-recover
        # once the new run also drains).
        late = ResultBatch(
            qid, oids=(Oid("site1", 1),), term={"credit": in_flight}
        )
        node.on_message(Envelope("site1", "site0", late))
        node.run_to_idle()  # must terminate cleanly, no protocol error
        assert node.stats.late_messages == 1
        assert len(completions) == 2
        final = completions[1][1]
        assert not final.partial
        assert final.oids.as_key_set() == {local.oid.key()}

    def test_resubmit_in_flight_rejected(self):
        qid = QueryId(1, "site0")
        node, store, root, _, _ = originator_with_remote_work(qid)
        with pytest.raises(HyperFileError):
            node.submit(qid, prog(), [root.oid])

    def test_worker_drops_stale_incarnation_work(self):
        # A non-originator holding incarnation-2 state drops incarnation-1
        # work instead of running it (its credit was already written off).
        store = MemStore("site1")
        node = ServerNode("site1", store)
        obj = store.create([keyword_tuple("K")])
        store.replace(store.get(obj.oid).with_tuple(pointer_tuple("Ref", obj.oid)))
        qid = QueryId(7, "site0")
        item_args = dict(oid=obj.oid, start=1)
        from repro.engine.items import WorkItem

        fresh = DerefRequest(
            qid, prog(), WorkItem(**item_args),
            {"credit": Fraction(1, 4), "#inc": 2},
        )
        node.on_message(Envelope("site0", "site1", fresh))
        report = node.run_to_idle()
        assert node.contexts[qid].incarnation == 2
        drained = [
            env.payload for env in report.outgoing
            if isinstance(env.payload, ResultBatch)
        ]
        # The drain returns exactly the received credit, stamped with the
        # incarnation so the originator's rerun context accepts it.
        assert sum(b.term["credit"] for b in drained) == Fraction(1, 4)
        assert all(b.term["#inc"] == 2 for b in drained)

        before = node.stats.late_messages
        stale = DerefRequest(
            qid, prog(), WorkItem(**item_args), {"credit": Fraction(1, 8)}
        )
        node.on_message(Envelope("site0", "site1", stale))
        report = node.run_to_idle()
        assert node.stats.late_messages == before + 1
        # Stale credit never entered the incarnation-2 ledger: nothing
        # was processed, nothing drained back.
        assert not any(isinstance(env.payload, ResultBatch) for env in report.outgoing)
        assert node.contexts[qid].term_state.credit == Fraction(0)

    def test_newer_incarnation_retires_stale_worker_state(self):
        # The reverse race: the worker still holds incarnation-1 state
        # when incarnation-2 work arrives — old state is retired first.
        store = MemStore("site1")
        node = ServerNode("site1", store)
        obj = store.create([keyword_tuple("K")])
        store.replace(store.get(obj.oid).with_tuple(pointer_tuple("Ref", obj.oid)))
        qid = QueryId(7, "site0")
        from repro.engine.items import WorkItem

        old = DerefRequest(
            qid, prog(), WorkItem(oid=obj.oid, start=1), {"credit": Fraction(1, 4)}
        )
        node.on_message(Envelope("site0", "site1", old))
        node.run_to_idle()
        assert node.contexts[qid].incarnation == 1

        new = DerefRequest(
            qid, prog(), WorkItem(oid=obj.oid, start=1),
            {"credit": Fraction(1, 2), "#inc": 2},
        )
        node.on_message(Envelope("site0", "site1", new))
        report = node.run_to_idle()
        ctx = node.contexts[qid]
        assert ctx.incarnation == 2
        drained = [
            env.payload for env in report.outgoing
            if isinstance(env.payload, ResultBatch)
        ]
        assert sum(b.term["credit"] for b in drained) == Fraction(1, 2)
        assert all(b.term["#inc"] == 2 for b in drained)


class TestClusterDeadline:
    def test_late_result_over_slow_link_ignored_end_to_end(self):
        from repro.cluster import SimCluster

        cluster = SimCluster(2)
        s0, s1 = (cluster.store(s) for s in cluster.sites)
        remote = s1.create([keyword_tuple("K")])
        s1.replace(s1.get(remote.oid).with_tuple(pointer_tuple("Ref", remote.oid)))
        root = s0.create([keyword_tuple("K"), pointer_tuple("Ref", remote.oid)])

        # The reply path is far slower than the deadline: the remote
        # site's results (and their credit) arrive after expiry.
        cluster.set_link_latency("site0", "site1", 30.0)
        qid = cluster.submit(CLOSURE, [root.oid], deadline_s=5.0)
        outcome = cluster.wait(qid)
        assert outcome.result.partial
        assert remote.oid.key() not in outcome.result.oids.as_key_set()

        cluster.run()  # deliver the stragglers — must not raise
        assert cluster.node("site0").stats.late_messages >= 1

        # The cluster is still healthy: a fresh query completes fully.
        cluster.set_link_latency("site0", "site1", 0.0)
        outcome2 = cluster.run_query(CLOSURE, [root.oid])
        assert not outcome2.result.partial
        assert outcome2.result.oids.as_key_set() == {root.oid.key(), remote.oid.key()}
