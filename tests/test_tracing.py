"""Tests for the query-tracing facility."""

import json

import pytest

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.tracing import QueryTracer, validate_chrome_trace

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


@pytest.fixture
def traced_run():
    cluster = SimCluster(3)
    s0, s1, s2 = (cluster.store(s) for s in cluster.sites)
    d = s0.create([keyword_tuple("K")])
    s0.replace(s0.get(d.oid).with_tuple(pointer_tuple("Ref", d.oid)))
    c = s2.create([pointer_tuple("Ref", d.oid)])
    b = s1.create([pointer_tuple("Ref", c.oid), keyword_tuple("K")])
    a = s0.create([pointer_tuple("Ref", b.oid), keyword_tuple("K")])
    tracer = QueryTracer()
    cluster.attach_tracer(tracer)
    outcome = cluster.run_query(CLOSURE, [a.oid])
    return cluster, tracer, outcome


class TestRecording:
    def test_lifecycle_events_present(self, traced_run):
        _, tracer, outcome = traced_run
        assert tracer.count("submit") == 1
        assert tracer.count("complete") == 1
        assert tracer.count("process") == 4  # a, b, c, d
        assert tracer.count("send") >= 3     # the three remote hops
        assert tracer.count("drain") >= 3

    def test_events_timestamped_monotonically(self, traced_run):
        _, tracer, _ = traced_run
        times = [e.time for e in tracer.events]
        assert times == sorted(times)
        assert times[-1] > 0

    def test_sites_touched_in_hop_order(self, traced_run):
        _, tracer, outcome = traced_run
        touched = tracer.sites_touched(outcome.qid)
        assert touched[0] == "site0"
        assert set(touched) == {"site0", "site1", "site2"}

    def test_completion_time_matches_outcome(self, traced_run):
        _, tracer, outcome = traced_run
        assert tracer.completion_time(outcome.qid) == pytest.approx(
            outcome.completed_at, abs=0.05
        )

    def test_busy_intervals(self, traced_run):
        _, tracer, _ = traced_run
        busy = tracer.busy_intervals()
        assert busy == {"site0": 2, "site1": 1, "site2": 1}

    def test_skip_events_for_suppressed_admissions(self, traced_run):
        _, tracer, _ = traced_run
        # d's self-pointer spawn gets suppressed by the mark table.
        assert tracer.count("skip") >= 1


class TestControls:
    def test_kind_filter(self):
        tracer = QueryTracer(kinds=["send", "recv"])
        tracer.emit("site0", "process", "q1", oid="x")
        tracer.emit("site0", "send", "q1", msg="DerefRequest")
        assert len(tracer) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            QueryTracer(kinds=["teleport"])

    def test_capacity_cap(self):
        tracer = QueryTracer(capacity=3)
        for i in range(5):
            tracer.emit("site0", "process", "q1", i=i)
        assert len(tracer) == 3 and tracer.dropped == 2
        assert "dropped" in tracer.render()

    def test_clear(self, traced_run):
        _, tracer, _ = traced_run
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_render_is_readable(self, traced_run):
        _, tracer, _ = traced_run
        text = tracer.render(limit=5)
        assert "submit" in text.splitlines()[0]
        assert "more events" in text

    def test_detach_stops_recording(self, traced_run):
        cluster, tracer, outcome = traced_run
        before = len(tracer)
        cluster.detach_tracer()
        store = cluster.store("site0")
        extra = store.create([keyword_tuple("K")])
        cluster.run_query('S (Keyword,"K",?) -> T', [extra.oid])
        assert len(tracer) == before

    def test_untraced_cluster_unaffected(self):
        cluster = SimCluster(1)
        store = cluster.store("site0")
        obj = store.create([keyword_tuple("K")])
        outcome = cluster.run_query('S (Keyword,"K",?) -> T', [obj.oid])
        assert len(outcome.result.oids) == 1


class TestSpanAllocation:
    def test_emit_returns_unique_increasing_spans(self):
        tracer = QueryTracer()
        spans = [tracer.emit("site0", "process", "q1", i=i) for i in range(5)]
        assert spans == sorted(spans) and len(set(spans)) == 5

    def test_parent_recorded(self):
        tracer = QueryTracer()
        root = tracer.emit("site0", "submit", "q1")
        child = tracer.emit("site1", "recv", "q1", parent=root)
        assert tracer.by_span()[child].parent == root

    def test_filtered_kind_returns_none(self):
        tracer = QueryTracer(kinds=["send"])
        assert tracer.emit("site0", "process", "q1") is None

    def test_events_from_traced_run_form_a_tree(self, traced_run):
        _, tracer, outcome = traced_run
        spans = {e.span for e in tracer.events}
        for e in tracer.events:
            assert e.span > 0
            if e.kind != "submit":
                assert e.parent in spans, f"{e.kind} has dangling parent {e.parent}"


class TestExporters:
    def test_jsonl_round_trips_every_event(self, traced_run):
        _, tracer, outcome = traced_run
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == len(tracer.events)
        first = json.loads(lines[0])
        assert first["kind"] == "submit" and first["span"] > 0
        assert {"t", "site", "kind", "qid", "span", "parent"} <= set(first)

    def test_jsonl_filters_by_qid(self, traced_run):
        _, tracer, outcome = traced_run
        assert tracer.to_jsonl(qid="nope") == ""
        assert tracer.to_jsonl(qid=outcome.qid).count("\n") == len(tracer.events)

    def test_write_jsonl(self, traced_run, tmp_path):
        _, tracer, _ = traced_run
        path = tmp_path / "events.jsonl"
        n = tracer.write_jsonl(str(path))
        assert n == len(tracer.events)
        assert len(path.read_text().splitlines()) == n

    def test_chrome_trace_schema(self, traced_run):
        _, tracer, outcome = traced_run
        doc = tracer.to_chrome_trace(qid=outcome.qid)
        counts = validate_chrome_trace(doc)
        assert counts["instants"] == len(tracer.for_query(outcome.qid))
        assert counts["metadata"] >= 4  # process + 3 site threads
        # Cross-site parent edges become flow pairs.
        assert counts["flows"] > 0 and counts["flows"] % 2 == 0

    def test_chrome_trace_names_every_site_lane(self, traced_run):
        _, tracer, _ = traced_run
        doc = tracer.to_chrome_trace()
        lanes = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lanes == {"site0", "site1", "site2"}

    def test_write_chrome_trace_is_loadable_json(self, traced_run, tmp_path):
        _, tracer, _ = traced_run
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        validate_chrome_trace(json.loads(path.read_text()))

    def test_validator_rejects_bad_documents(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"nope": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})  # no ph
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "i", "ts": -1, "pid": 1, "tid": 1}]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "??", "ts": 0, "pid": 1, "tid": 1}]}
            )


class TestSwimLanes:
    def test_lanes_show_every_site(self, traced_run):
        _, tracer, _ = traced_run
        text = tracer.render_lanes(buckets=30)
        for site in ("site0", "site1", "site2"):
            assert site in text
        assert "Q" in text and "C" in text and "#" in text

    def test_empty_tracer_lanes(self):
        assert "(no events recorded)" in QueryTracer().render_lanes()

    def test_lane_width_respected(self, traced_run):
        _, tracer, _ = traced_run
        lines = tracer.render_lanes(buckets=20).splitlines()
        lane_lines = [l for l in lines if "|" in l]
        assert all(l.count("|") == 2 for l in lane_lines)
        widths = {len(l.split("|")[1]) for l in lane_lines}
        assert widths == {20}
