"""Tests for the power-law document corpus generator."""

import pytest

from repro.cluster import SimCluster
from repro.core.program import compile_query
from repro.engine.local import run_local
from repro.storage.memstore import MemStore
from repro.workload import closure_query
from repro.workload.corpus import DEFAULT_TOPICS, Corpus, CorpusSpec, build_corpus


@pytest.fixture(scope="module")
def corpus_and_store():
    store = MemStore("solo")
    spec = CorpusSpec(n_docs=200)
    corpus = build_corpus(spec, [store])
    return corpus, store


class TestStructure:
    def test_every_document_materialised(self, corpus_and_store):
        corpus, store = corpus_and_store
        assert len(store) == 200
        for i, oid in enumerate(corpus.oids):
            obj = store.get(oid)
            assert obj.first("String", "Title") is not None
            assert obj.tuples_of_type("Keyword")

    def test_citations_point_backwards(self, corpus_and_store):
        corpus, _ = corpus_and_store
        for i, targets in enumerate(corpus.cites):
            assert all(j < i for j in targets)

    def test_leaf_rule_every_doc_has_outgoing_cites(self, corpus_and_store):
        corpus, store = corpus_and_store
        for oid in corpus.oids:
            assert store.get(oid).pointers(key="Cites")

    def test_keyword_popularity_is_skewed(self, corpus_and_store):
        # Zipf draw: the most popular keyword appears far more often than
        # the median one.
        corpus, _ = corpus_and_store
        counts = {}
        for kws in corpus.keywords_of:
            for kw in kws:
                counts[kw] = counts.get(kw, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] >= 3 * ranked[len(ranked) // 2]

    def test_citation_indegree_is_heavy_tailed(self, corpus_and_store):
        corpus, _ = corpus_and_store
        hubs = corpus.hubs(top=3)
        indegree = {}
        for targets in corpus.cites:
            for t in targets:
                indegree[t] = indegree.get(t, 0) + 1
        total = sum(indegree.values())
        hub_share = sum(indegree[h] for h in hubs) / total
        assert hub_share > 0.08  # 3 documents draw a clearly outsized share

    def test_determinism(self):
        a = build_corpus(CorpusSpec(n_docs=60), [MemStore("x")])
        b = build_corpus(CorpusSpec(n_docs=60), [MemStore("x")])
        assert a.cites == b.cites and a.keywords_of == b.keywords_of


class TestPlacement:
    def test_topics_map_to_sites(self):
        cluster = SimCluster(3)
        spec = CorpusSpec(n_docs=120)
        corpus = build_corpus(spec, [cluster.store(s) for s in cluster.sites])
        for i, oid in enumerate(corpus.oids):
            expected = cluster.sites[corpus.topic_of[i] % 3]
            assert cluster.store(expected).contains(oid)

    def test_cross_topic_fraction_controls_locality(self):
        low = build_corpus(
            CorpusSpec(n_docs=150, cross_topic_fraction=0.05),
            [MemStore(f"s{i}") for i in range(3)],
        )
        high = build_corpus(
            CorpusSpec(n_docs=150, cross_topic_fraction=0.6),
            [MemStore(f"s{i}") for i in range(3)],
        )
        assert low.measured_locality() > high.measured_locality()

    def test_incompatible_site_count_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            build_corpus(CorpusSpec(n_docs=30), [MemStore(f"s{i}") for i in range(4)])


class TestQueriesOverCorpus:
    def test_citation_closure_from_hub(self, corpus_and_store):
        corpus, store = corpus_and_store
        recent = corpus.oids[-1]
        program = compile_query(closure_query("Cites", "Keyword", "distributed"))
        result = run_local(program, [recent], store.get)
        expected = set(corpus.docs_with_keyword("distributed"))
        found = {corpus.oids.index(next(o for o in corpus.oids if o.key() == k))
                 for k in result.oid_keys()}
        assert found <= expected  # every hit truly carries the keyword

    def test_distributed_equals_local_on_corpus(self):
        spec = CorpusSpec(n_docs=120)
        solo_store = MemStore("solo")
        solo = build_corpus(spec, [solo_store])
        program = compile_query(closure_query("Cites", "Keyword", "survey"))
        expected = run_local(program, [solo.oids[-1]], solo_store.get)
        expected_idx = sorted(
            next(i for i, o in enumerate(solo.oids) if o.key() == k)
            for k in expected.oid_keys()
        )

        cluster = SimCluster(3)
        dist = build_corpus(spec, [cluster.store(s) for s in cluster.sites])
        outcome = cluster.run_query(program, [dist.oids[-1]])
        got_idx = sorted(
            next(i for i, o in enumerate(dist.oids) if o.key() == k)
            for k in outcome.result.oid_keys()
        )
        assert got_idx == expected_idx
