"""Tests for the experimental query builders (paper §5 methodology)."""

from repro.core.ast import Iterate, Query
from repro.core.program import compile_query
from repro.core.validate import validate_query
from repro.workload import (
    COMMON_TYPE,
    UNIQUE_TYPE,
    WorkloadSpec,
    bounded_query,
    closure_query,
    query_script,
    traversal_only_query,
    unique_query,
)


class TestQueryShapes:
    def test_closure_query_matches_paper_example(self):
        q = closure_query("Tree", "Rand10p", 5)
        assert isinstance(q, Query) and q.source == "Root" and q.result == "T"
        loop = q.filters[0]
        assert isinstance(loop, Iterate) and loop.is_closure
        assert validate_query(q).ok

    def test_bounded_query_depth(self):
        q = bounded_query("Chain", 3, "Rand10p", 5)
        assert q.filters[0].count == 3

    def test_traversal_only_selects_common(self):
        q = traversal_only_query("Tree")
        sel = q.filters[1]
        assert sel.type_pattern.value == COMMON_TYPE  # type: ignore[attr-defined]

    def test_unique_query(self):
        q = unique_query("Tree", 42)
        sel = q.filters[1]
        assert sel.type_pattern.value == UNIQUE_TYPE  # type: ignore[attr-defined]
        assert sel.key_pattern.value == 42  # type: ignore[attr-defined]

    def test_all_shapes_compile(self):
        for q in (
            closure_query("Tree", "Rand10p", 5),
            bounded_query("Chain", 2, "Common", 0),
            traversal_only_query("Rand95"),
            unique_query("Chain", 0),
        ):
            assert compile_query(q).size == 4


class TestQueryScript:
    def test_hundred_comparable_queries(self):
        script = query_script("Tree", "Rand10p", count=100, seed=3)
        assert len(script) == 100
        keys = {q.filters[1].key_pattern.value for q in script}  # type: ignore[attr-defined]
        assert len(keys) > 1  # "randomly varied the key searched for"
        assert all(1 <= k <= 10 for k in keys)

    def test_script_is_deterministic_per_seed(self):
        a = query_script("Tree", "Rand10p", count=10, seed=3)
        b = query_script("Tree", "Rand10p", count=10, seed=3)
        assert [str(q) for q in a] == [str(q) for q in b]

    def test_common_script_uses_single_value(self):
        script = query_script("Tree", COMMON_TYPE, count=5)
        keys = {q.filters[1].key_pattern.value for q in script}  # type: ignore[attr-defined]
        assert keys == {0}

    def test_unique_script_respects_spec_size(self):
        spec = WorkloadSpec(n_objects=30)
        script = query_script("Tree", UNIQUE_TYPE, count=50, seed=1, spec=spec)
        keys = [q.filters[1].key_pattern.value for q in script]  # type: ignore[attr-defined]
        assert all(0 <= k < 30 for k in keys)
