"""Tests for the synthetic pointer-graph generator (paper §5)."""

import pytest

from repro.workload.graphs import build_graph


@pytest.fixture(scope="module")
def graph():
    return build_graph(n=270)


class TestPartition:
    def test_round_robin_grouping(self, graph):
        assert graph.group_of[0] == 0
        assert graph.group_of[10] == 1
        assert graph.groups == 9

    def test_even_division(self, graph):
        # "divided evenly among three machines and among nine machines"
        sizes = {}
        for i in range(graph.n):
            sizes[graph.group_of[i]] = sizes.get(graph.group_of[i], 0) + 1
        assert set(sizes.values()) == {30}

    def test_site_mapping_consistency(self, graph):
        # Group -> site mapping nests: objects on one 9-way site share a
        # 3-way site (groups g and g+3k collapse together mod 3).
        for i in range(graph.n):
            assert graph.site_of(i, 9) % 3 == graph.site_of(i, 3)
            assert graph.site_of(i, 1) == 0

    def test_requires_group_multiple_of_three(self):
        with pytest.raises(ValueError):
            build_graph(n=30, groups=4)

    def test_requires_enough_objects(self):
        with pytest.raises(ValueError):
            build_graph(n=5, groups=9)


class TestChain:
    def test_chain_is_a_single_cycle(self, graph):
        seen = set()
        node = 0
        for _ in range(graph.n):
            seen.add(node)
            node = graph.chain_next[node]
        assert node == 0 and len(seen) == graph.n

    def test_chain_hops_always_remote(self, graph):
        # "these pointers were always to a remote machine"
        for machines in (3, 9):
            for i in range(graph.n):
                assert graph.is_remote(i, graph.chain_next[i], machines)


class TestTree:
    def test_tree_spans_everything(self, graph):
        reached = set()
        frontier = [0]
        while frontier:
            node = frontier.pop()
            if node in reached:
                continue
            reached.add(node)
            frontier.extend(c for c in graph.tree_children[node] if c != node)
        assert reached == set(range(graph.n))

    def test_root_fans_out_to_every_other_group(self, graph):
        root_children = graph.tree_children[0]
        child_groups = {graph.group_of[c] for c in root_children if graph.group_of[c] != 0}
        assert child_groups == set(range(1, 9))

    def test_non_root_tree_edges_are_group_local(self, graph):
        for i in range(1, graph.n):
            for child in graph.tree_children[i]:
                assert graph.group_of[child] == graph.group_of[i]

    def test_every_object_has_outgoing_tree_pointer(self, graph):
        # Leaves self-point so closure queries can still check them
        # (the strict iterator-body semantics documented in the module).
        for i in range(graph.n):
            assert graph.tree_children[i]

    def test_each_node_has_at_most_arity_children(self, graph):
        for i in range(graph.n):
            real = [c for c in graph.tree_children[i] if c != i]
            limit = 2 + (8 if i == 0 else 0)  # root also links group roots
            assert len(real) <= limit


class TestRandomPointers:
    def test_all_locality_classes_present(self, graph):
        assert set(graph.random_targets) == {0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95}

    def test_two_pointers_per_object(self, graph):
        for targets in graph.random_targets[0.50]:
            assert len(targets) == 2

    @pytest.mark.parametrize("p", [0.05, 0.50, 0.95])
    def test_locality_fraction_near_nominal(self, graph, p):
        for machines in (3, 9):
            measured = graph.locality_fraction(p, machines)
            assert measured == pytest.approx(p, abs=0.05)

    @pytest.mark.parametrize("p", [0.05, 0.50, 0.95])
    def test_locality_identical_under_3_and_9(self, graph, p):
        # The construction guarantees local/remote is invariant across
        # machine mappings — not merely similar.
        assert graph.locality_fraction(p, 3) == graph.locality_fraction(p, 9)

    def test_local_pointers_share_group_remote_cross_residue(self, graph):
        for p, per_object in graph.random_targets.items():
            for i, targets in enumerate(per_object):
                for t in targets:
                    same_group = graph.group_of[i] == graph.group_of[t]
                    same_residue = graph.group_of[i] % 3 == graph.group_of[t] % 3
                    assert same_group or not same_residue


class TestDeterminism:
    def test_same_seed_same_graph(self):
        g1, g2 = build_graph(n=45, seed=7), build_graph(n=45, seed=7)
        assert g1.chain_next == g2.chain_next
        assert g1.random_targets == g2.random_targets

    def test_different_seed_different_random_pointers(self):
        g1, g2 = build_graph(n=45, seed=7), build_graph(n=45, seed=8)
        assert g1.random_targets != g2.random_targets
        assert g1.chain_next == g2.chain_next  # structural parts are fixed
