"""Tests for workload materialisation into stores (paper §5 schema)."""

import pytest

from repro.cluster import SimCluster
from repro.storage.memstore import MemStore
from repro.workload import (
    CHAIN_KEY,
    COMMON_TYPE,
    COMMON_VALUE,
    RAND10_TYPE,
    RAND100_TYPE,
    RAND1000_TYPE,
    TREE_KEY,
    UNIQUE_TYPE,
    WorkloadSpec,
    build_graph,
    generate_into_cluster,
    materialize,
    pointer_key_for,
)


@pytest.fixture(scope="module")
def loaded():
    spec = WorkloadSpec(n_objects=90)
    graph = build_graph(n=90)
    store = MemStore("solo")
    workload = materialize(spec, [store], graph=graph)
    return spec, graph, store, workload


class TestObjectSchema:
    def test_five_search_key_tuples(self, loaded):
        _, _, store, workload = loaded
        obj = store.get(workload.oids[7])
        for key_type in (UNIQUE_TYPE, COMMON_TYPE, RAND10_TYPE, RAND100_TYPE, RAND1000_TYPE):
            assert obj.tuples_of_type(key_type), key_type

    def test_unique_key_is_unique(self, loaded):
        _, _, store, workload = loaded
        seen = set()
        for oid in workload.oids:
            (t,) = store.get(oid).tuples_of_type(UNIQUE_TYPE)
            assert t.key not in seen
            seen.add(t.key)

    def test_common_key_in_all_objects(self, loaded):
        _, _, store, workload = loaded
        for oid in workload.oids:
            (t,) = store.get(oid).tuples_of_type(COMMON_TYPE)
            assert t.key == COMMON_VALUE

    def test_key_spaces_respected(self, loaded):
        _, _, store, workload = loaded
        for oid in workload.oids:
            (t10,) = store.get(oid).tuples_of_type(RAND10_TYPE)
            assert 1 <= t10.key <= 10
            (t1000,) = store.get(oid).tuples_of_type(RAND1000_TYPE)
            assert 1 <= t1000.key <= 1000

    def test_chain_and_tree_pointers_present(self, loaded):
        _, _, store, workload = loaded
        for oid in workload.oids:
            obj = store.get(oid)
            assert len(obj.pointers(key=CHAIN_KEY)) == 1
            assert len(obj.pointers(key=TREE_KEY)) >= 1

    def test_fourteen_random_pointers(self, loaded):
        spec, _, store, workload = loaded
        # 7 classes x 2 pointers; duplicates (same class, same target)
        # collapse under set semantics, so count distinct keys instead.
        obj = store.get(workload.oids[3])
        keys = {pointer_key_for(p) for p in spec.locality_classes}
        for key in keys:
            assert 1 <= len(obj.pointers(key=key)) <= 2

    def test_body_payload_present(self, loaded):
        spec, _, store, workload = loaded
        obj = store.get(workload.oids[0])
        (body,) = obj.tuples_of_type("Text")
        assert len(body.data) == spec.payload_bytes


class TestPlacement:
    def test_even_placement_across_cluster(self):
        spec = WorkloadSpec(n_objects=90)
        cluster = SimCluster(3)
        generate_into_cluster(cluster, spec)
        sizes = [len(cluster.store(s)) for s in cluster.sites]
        assert sizes == [30, 30, 30]

    def test_object_site_matches_graph_mapping(self):
        spec = WorkloadSpec(n_objects=90)
        graph = build_graph(n=90)
        cluster = SimCluster(9)
        workload = generate_into_cluster(cluster, spec, graph)
        for i, oid in enumerate(workload.oids):
            expected_site = cluster.sites[graph.site_of(i, 9)]
            assert cluster.store(expected_site).contains(oid)
            assert workload.site_of(i) == expected_site

    def test_incompatible_machine_count_rejected(self):
        spec = WorkloadSpec(n_objects=90)
        stores = [MemStore(f"s{i}") for i in range(4)]
        with pytest.raises(ValueError, match="divide"):
            materialize(spec, stores)

    def test_no_stores_rejected(self):
        with pytest.raises(ValueError):
            materialize(WorkloadSpec(n_objects=90), [])


class TestGroundTruth:
    def test_indices_with_key_matches_stored_tuples(self, loaded):
        _, _, store, workload = loaded
        for value in (1, 5, 10):
            expected = set(workload.indices_with_key(RAND10_TYPE, value))
            actual = {
                i
                for i, oid in enumerate(workload.oids)
                if store.get(oid).first(RAND10_TYPE, value) is not None
            }
            assert expected == actual

    def test_common_ground_truth(self, loaded):
        _, _, _, workload = loaded
        assert workload.indices_with_key(COMMON_TYPE, COMMON_VALUE) == list(range(90))
        assert workload.indices_with_key(COMMON_TYPE, 1) == []


class TestSpecHelpers:
    def test_scaled_changes_size_only(self):
        spec = WorkloadSpec()
        half = spec.scaled(135)
        assert half.n_objects == 135
        assert half.seed == spec.seed and half.groups == spec.groups

    def test_pointer_key_naming(self):
        assert pointer_key_for(0.05) == "Rand05"
        assert pointer_key_for(0.95) == "Rand95"
