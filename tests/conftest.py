"""Shared fixtures for the HyperFile reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import keyword_tuple, pointer_tuple, string_tuple
from repro.core.oid import Oid
from repro.core.parser import parse_query
from repro.core.program import compile_query
from repro.storage.memstore import MemStore
from repro.workload import WorkloadSpec, build_graph, materialize


@pytest.fixture
def store():
    """An empty single-site store."""
    return MemStore("s1")


@pytest.fixture
def chain_store():
    """A store holding the paper's worked example: A -> B -> C -> D.

    A, B and D carry the keyword ``Distributed``; C does not.  D (the
    chain's leaf) carries a self-referential pointer so closure queries
    can check it (see the leaf-drop subtlety in repro.workload.graphs).
    """
    store = MemStore("s1")
    d = store.create([keyword_tuple("Distributed")])
    store.replace(store.get(d.oid).with_tuple(pointer_tuple("Reference", d.oid)))
    c = store.create([pointer_tuple("Reference", d.oid)])
    b = store.create([pointer_tuple("Reference", c.oid), keyword_tuple("Distributed")])
    a = store.create([pointer_tuple("Reference", b.oid), keyword_tuple("Distributed")])
    store.chain = {"a": a.oid, "b": b.oid, "c": c.oid, "d": d.oid}  # type: ignore[attr-defined]
    return store


@pytest.fixture
def closure_program():
    """``S [ (Pointer,"Reference",?X) | ^^X ]* (Keyword,"Distributed",?) -> T``"""
    return compile_query(
        parse_query('S [ (Pointer, "Reference", ?X) | ^^X ]* (Keyword, "Distributed", ?) -> T')
    )


@pytest.fixture
def depth3_program():
    """Same traversal bounded at three levels (the paper's ^3 example)."""
    return compile_query(
        parse_query('S [ (Pointer, "Reference", ?X) | ^^X ]^3 (Keyword, "Distributed", ?) -> T')
    )


@pytest.fixture(scope="session")
def small_graph():
    """A small (n=90) instance of the paper's synthetic pointer graph."""
    return build_graph(n=90)


@pytest.fixture(scope="session")
def small_spec():
    return WorkloadSpec(n_objects=90)


@pytest.fixture
def single_site_workload(small_spec, small_graph):
    """The small workload materialised into one store."""
    store = MemStore("solo")
    workload = materialize(small_spec, [store], graph=small_graph)
    return store, workload


def oid_indices(workload, oid_keys):
    """Map a set of oid identity keys back to abstract object indices."""
    lookup = {oid.key(): i for i, oid in enumerate(workload.oids)}
    return sorted(lookup[k] for k in oid_keys)
