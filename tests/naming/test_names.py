"""Tests for migration under birth-site naming (paper §4)."""

import pytest

from repro.core.oid import Oid
from repro.core.tuples import keyword_tuple
from repro.errors import ObjectNotFound
from repro.naming.directory import ForwardingTable
from repro.naming.names import find_holder, migrate_object, resolution_path
from repro.storage.memstore import MemStore


@pytest.fixture
def three_sites():
    stores = {name: MemStore(name) for name in ("s0", "s1", "s2")}
    forwarding = {name: ForwardingTable(name) for name in stores}
    obj = stores["s0"].create([keyword_tuple("K")])
    return stores, forwarding, obj.oid


class TestMigration:
    def test_object_moves(self, three_sites):
        stores, forwarding, oid = three_sites
        migrate_object(oid, stores, forwarding, "s1")
        assert find_holder(oid, stores) == "s1"
        assert not stores["s0"].contains(oid)

    def test_departed_site_forwards(self, three_sites):
        stores, forwarding, oid = three_sites
        migrate_object(oid, stores, forwarding, "s1")
        assert forwarding["s0"].lookup(oid) == "s1"

    def test_birth_site_tracks_across_multiple_moves(self, three_sites):
        stores, forwarding, oid = three_sites
        migrate_object(oid, stores, forwarding, "s1")
        migrate_object(oid, stores, forwarding, "s2")
        # Birth site (s0) is the final arbiter and must know the truth.
        assert forwarding["s0"].lookup(oid) == "s2"

    def test_returned_hint_points_at_new_home(self, three_sites):
        stores, forwarding, oid = three_sites
        hinted = migrate_object(oid, stores, forwarding, "s2")
        assert hinted.hint == "s2"
        assert hinted == oid  # identity unchanged

    def test_move_home_again_clears_forward(self, three_sites):
        stores, forwarding, oid = three_sites
        migrate_object(oid, stores, forwarding, "s1")
        migrate_object(oid, stores, forwarding, "s0")
        assert forwarding["s0"].lookup(oid) is None
        assert find_holder(oid, stores) == "s0"

    def test_no_op_move(self, three_sites):
        stores, forwarding, oid = three_sites
        migrate_object(oid, stores, forwarding, "s0")
        assert find_holder(oid, stores) == "s0"

    def test_missing_object(self, three_sites):
        stores, forwarding, _ = three_sites
        with pytest.raises(ObjectNotFound):
            migrate_object(Oid("s0", 999), stores, forwarding, "s1")

    def test_unknown_destination(self, three_sites):
        stores, forwarding, oid = three_sites
        with pytest.raises(KeyError):
            migrate_object(oid, stores, forwarding, "nowhere")


class TestResolution:
    def test_direct_hit(self, three_sites):
        stores, forwarding, oid = three_sites
        assert resolution_path(oid, "s0", stores, forwarding) == ["s0"]

    def test_stale_hint_resolves_via_forward(self, three_sites):
        stores, forwarding, oid = three_sites
        migrate_object(oid, stores, forwarding, "s1")
        migrate_object(oid, stores, forwarding, "s2")
        # A requester still hinted at s1 chases the forward in one hop.
        stale = oid.with_hint("s1")
        path = resolution_path(stale, "s1", stores, forwarding)
        assert path[-1] == "s2"
        assert len(path) <= 3

    def test_fallback_to_birth_site(self, three_sites):
        stores, forwarding, oid = three_sites
        migrate_object(oid, stores, forwarding, "s2")
        # Requester at s1 with no hint knowledge: s1 -> birth (s0) -> s2.
        path = resolution_path(oid.without_hint(), "s1", stores, forwarding)
        assert path[-1] == "s2"

    def test_nonexistent_object_stops_at_birth_site(self, three_sites):
        stores, forwarding, _ = three_sites
        ghost = Oid("s0", 999)
        path = resolution_path(ghost, "s1", stores, forwarding)
        assert path[-1] == "s0"  # arbiter consulted, object absent


class TestForwardingTable:
    def test_record_and_lookup(self):
        table = ForwardingTable("s0")
        oid = Oid("s0", 1)
        table.record(oid, "s1")
        assert table.lookup(oid) == "s1"
        assert len(table) == 1

    def test_record_home_removes_entry(self):
        table = ForwardingTable("s0")
        oid = Oid("s0", 1)
        table.record(oid, "s1")
        table.record(oid, "s0")
        assert table.lookup(oid) is None

    def test_drop(self):
        table = ForwardingTable("s0")
        oid = Oid("s0", 1)
        table.record(oid, "s1")
        table.drop(oid)
        assert table.lookup(oid) is None

    def test_hit_counters(self):
        table = ForwardingTable("s0")
        oid = Oid("s0", 1)
        table.record(oid, "s1")
        table.lookup(oid)
        table.lookup(Oid("s0", 2))
        assert table.lookups >= 2 and table.hits == 1
