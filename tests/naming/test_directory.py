"""Replica directory: authoritative holder lists + per-object versions."""

import pytest

from repro.core.oid import Oid
from repro.naming.directory import ReplicaDirectory, ReplicaEntry


def oid(n=1, site="site0"):
    return Oid(birth_site=site, local_id=n, presumed_site=site)


class TestRecordAndLookup:
    def test_unknown_object_is_unreplicated(self):
        directory = ReplicaDirectory()
        assert directory.sites_of(oid()) == ()
        assert directory.version_of(oid()) == 0
        assert not directory.holds("site0", oid())
        assert len(directory) == 0

    def test_record_installs_placement_ordered_holders(self):
        directory = ReplicaDirectory()
        directory.record(oid(), ("site1", "site0"))
        assert directory.sites_of(oid()) == ("site1", "site0")
        assert directory.holds("site1", oid())
        assert directory.holds("site0", oid())
        assert not directory.holds("site2", oid())

    def test_new_entry_starts_at_version_one(self):
        directory = ReplicaDirectory()
        directory.record(oid(), ("site0", "site1"))
        assert directory.version_of(oid()) == 1

    def test_replacement_preserves_the_version(self):
        directory = ReplicaDirectory()
        directory.record(oid(), ("site0", "site1"))
        directory.bump_version(oid())
        directory.record(oid(), ("site0", "site2"))  # re-place, not a write
        assert directory.version_of(oid()) == 2
        assert directory.sites_of(oid()) == ("site0", "site2")

    def test_empty_holder_list_rejected(self):
        with pytest.raises(ValueError):
            ReplicaDirectory().record(oid(), ())

    def test_duplicate_holder_rejected(self):
        with pytest.raises(ValueError):
            ReplicaDirectory().record(oid(), ("site0", "site0"))


class TestVersions:
    def test_bump_counts_writes(self):
        directory = ReplicaDirectory()
        directory.record(oid(), ("site0", "site1"))
        assert directory.bump_version(oid()) == 2
        assert directory.bump_version(oid()) == 3
        assert directory.version_of(oid()) == 3

    def test_bump_of_unreplicated_object_raises(self):
        with pytest.raises(KeyError):
            ReplicaDirectory().bump_version(oid())


class TestDropAndIntrospection:
    def test_drop_forgets_the_entry(self):
        directory = ReplicaDirectory()
        directory.record(oid(), ("site0", "site1"))
        directory.drop(oid())
        assert directory.sites_of(oid()) == ()
        directory.drop(oid())  # idempotent

    def test_entries_lists_records_in_order(self):
        directory = ReplicaDirectory()
        directory.record(oid(1), ("site0",))
        directory.record(oid(2), ("site1", "site2"))
        keys = [key for key, _ in directory.entries()]
        assert keys == [oid(1).key(), oid(2).key()]
        assert all(isinstance(e, ReplicaEntry) for _, e in directory.entries())
