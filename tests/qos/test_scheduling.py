"""Behavioural tests of weighted-fair drain and backpressure.

These run whole queries through :class:`~repro.cluster.SimCluster` so
the scheduler is exercised exactly as deployed — the WFQ credits, the
hysteresis and the envelope piggybacking are internal to the node, and
what must hold externally is service order and result transparency.
"""

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.net.batching import BatchConfig
from repro.qos import QoSConfig

CLOSURE = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'


def build_chain(cluster, length=30, sites=None):
    stores = [cluster.store(s) for s in (sites or cluster.sites)]
    oids = []
    for i in range(length):
        oids.append(stores[i % len(stores)].create([keyword_tuple("K")]).oid)
    for i in range(length - 1):
        store = stores[i % len(stores)]
        store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
    last = stores[(length - 1) % len(stores)]
    last.replace(last.get(oids[-1]).with_tuple(pointer_tuple("Ref", oids[-1])))
    return oids


class TestWeightedFairDrain:
    def test_interactive_overtakes_batch_under_contention(self):
        """A batch query submitted *first* still finishes after an
        interactive one of identical shape: the 4:1 drain share, not
        arrival order, decides who gets the CPU."""
        cluster = SimCluster(1, qos=QoSConfig())
        chain_a = build_chain(cluster, 40)
        chain_b = build_chain(cluster, 40)
        batch_qid = cluster.submit(CLOSURE, [chain_a[0]], priority="batch")
        inter_qid = cluster.submit(CLOSURE, [chain_b[0]], priority="interactive")
        batch_out = cluster.wait(batch_qid)
        inter_out = cluster.wait(inter_qid)
        assert inter_out.completed_at < batch_out.completed_at
        assert not batch_out.result.partial  # deprioritised, never dropped

    def test_batch_only_workload_is_work_conserving(self):
        """With no interactive work present, batch queries use the whole
        CPU — the interactive class forfeits its unused credits."""
        cluster = SimCluster(1, qos=QoSConfig())
        oids = build_chain(cluster, 20)
        out = cluster.run_query(CLOSURE, [oids[0]], priority="batch")
        assert out.result.oid_keys() == {o.key() for o in oids}

        baseline = SimCluster(1)
        oids = build_chain(baseline, 20)
        base = baseline.run_query(CLOSURE, [oids[0]])
        assert out.response_time == base.response_time

    def test_single_class_matches_legacy_round_robin(self):
        """Two same-class queries interleave exactly as the legacy
        scheduler interleaved them (bit-identical timing)."""
        timings = []
        for qos in (None, QoSConfig()):
            cluster = SimCluster(1, qos=qos)
            chain_a = build_chain(cluster, 25)
            chain_b = build_chain(cluster, 25)
            qid_a = cluster.submit(CLOSURE, [chain_a[0]])
            qid_b = cluster.submit(CLOSURE, [chain_b[0]])
            timings.append((cluster.wait(qid_a).completed_at, cluster.wait(qid_b).completed_at))
        assert timings[0] == timings[1]


def build_star(cluster, children=24):
    """A root at site0 fanning out to self-looped kids on the other sites."""
    stores = {s: cluster.store(s) for s in cluster.sites}
    kids = []
    for i in range(children):
        site = cluster.sites[1 + i % (len(cluster.sites) - 1)]
        kid = stores[site].create([keyword_tuple("K")])
        stores[site].replace(kid.with_tuple(pointer_tuple("Ref", kid.oid)))
        kids.append(kid.oid)
    root = stores[cluster.sites[0]].create(
        [keyword_tuple("K")] + [pointer_tuple("Ref", k) for k in kids]
    ).oid
    return root, kids


class TestBackpressure:
    def test_pressure_signals_and_results_unchanged(self):
        """Tight watermarks make the fan-in sites signal pressure — but
        the result set never changes (backpressure shapes traffic, it
        never drops work)."""
        qos = QoSConfig(high_watermark=1, low_watermark=0)
        cluster = SimCluster(3, qos=qos, batching=BatchConfig(max_batch=2))
        root, kids = build_star(cluster)
        out = cluster.run_query(CLOSURE, [root])
        assert len(out.result.oid_keys()) == len(kids) + 1
        assert not out.result.partial
        stats = cluster.total_stats()
        assert stats.backpressure_transitions > 0
        assert stats.work_shed == 0

    def test_throttled_sends_counted(self):
        """A sender that knows its destinations are pressured defers the
        size flush by ``pressure_batch_factor`` and counts the holds."""
        qos = QoSConfig(high_watermark=1, low_watermark=0, pressure_batch_factor=8)
        cluster = SimCluster(3, qos=qos, batching=BatchConfig(max_batch=2))
        root, kids = build_star(cluster)
        # White-box: the origin has already heard pressure bits from both
        # peers (as it would mid-overload); its fan-out must then hold
        # work in 8x batches instead of flushing every 2 items.
        cluster.nodes[cluster.sites[0]]._pressured = set(cluster.sites[1:])
        out = cluster.run_query(CLOSURE, [root])
        assert len(out.result.oid_keys()) == len(kids) + 1
        assert not out.result.partial
        assert cluster.total_stats().sends_throttled > 0
