"""Unit tests of the per-client token-bucket admission limiter."""

import pytest

from repro.qos import ClientLimiter, QoSConfig


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_bounce(self):
        clock = FakeClock()
        limiter = ClientLimiter(qps=1.0, burst=3, now_fn=clock)
        assert [limiter.try_acquire("a") for _ in range(4)] == [True, True, True, False]

    def test_refill_at_qps(self):
        clock = FakeClock()
        limiter = ClientLimiter(qps=2.0, burst=1, now_fn=clock)
        assert limiter.try_acquire("a")
        assert not limiter.try_acquire("a")
        clock.advance(0.5)  # exactly one token at 2 qps
        assert limiter.try_acquire("a")
        assert not limiter.try_acquire("a")

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        limiter = ClientLimiter(qps=100.0, burst=2, now_fn=clock)
        clock.advance(60.0)  # a long idle period never banks > burst
        assert [limiter.try_acquire("a") for _ in range(3)] == [True, True, False]

    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = ClientLimiter(qps=1.0, burst=1, now_fn=clock)
        assert limiter.try_acquire("a")
        assert not limiter.try_acquire("a")
        assert limiter.try_acquire("b")

    def test_retry_after_names_the_gap_to_one_token(self):
        clock = FakeClock()
        limiter = ClientLimiter(qps=4.0, burst=1, now_fn=clock)
        limiter.try_acquire("a")
        assert limiter.retry_after_s("a") == pytest.approx(0.25)
        clock.advance(0.125)
        assert limiter.retry_after_s("a") == pytest.approx(0.125)


class TestConfigValidation:
    def test_defaults_disable_everything(self):
        config = QoSConfig()
        assert not config.rate_limiting
        assert not config.backpressure
        assert not config.shedding

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_limit_qps": 0.0},
            {"rate_limit_qps": -1.0},
            {"rate_burst": 0},
            {"high_watermark": -1},
            {"high_watermark": 2, "low_watermark": 3},
            {"low_watermark": -1},
            {"shed_watermark": -1},
            {"pressure_batch_factor": 0},
            {"interactive_weight": 0},
            {"batch_weight": 0},
            {"default_priority": "bulk"},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QoSConfig(**kwargs)
