"""Tests for the tuple model and typed constructors (paper §2)."""

import pytest

from repro.core.oid import Oid
from repro.core.tuples import (
    HFTuple,
    blob_tuple,
    keyword_tuple,
    number_tuple,
    pointer_tuple,
    string_tuple,
    text_tuple,
    tuple_of,
)


class TestHFTuple:
    def test_fields(self):
        t = HFTuple("String", "Title", "Main Program")
        assert (t.type, t.key, t.data) == ("String", "Title", "Main Program")

    def test_is_immutable(self):
        t = HFTuple("String", "Title", "x")
        with pytest.raises(AttributeError):
            t.data = "y"  # type: ignore[misc]

    def test_rejects_empty_type(self):
        with pytest.raises(ValueError):
            HFTuple("", "k", "v")

    def test_rejects_non_string_type(self):
        with pytest.raises(ValueError):
            HFTuple(7, "k", "v")  # type: ignore[arg-type]

    def test_value_semantics(self):
        assert HFTuple("A", "k", 1) == HFTuple("A", "k", 1)
        assert HFTuple("A", "k", 1) != HFTuple("A", "k", 2)

    def test_is_pointer_flag(self):
        assert pointer_tuple("Ref", Oid("s1", 1)).is_pointer
        assert not string_tuple("Title", "x").is_pointer

    def test_str_rendering(self):
        assert "Title" in str(string_tuple("Title", "x"))


class TestTypedConstructors:
    def test_string_tuple_checks_type(self):
        with pytest.raises(TypeError):
            string_tuple("Title", 42)  # type: ignore[arg-type]

    def test_number_tuple_accepts_int_and_float(self):
        assert number_tuple("Clock", 25).data == 25
        assert number_tuple("Clock", 2.5).data == 2.5

    def test_number_tuple_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            number_tuple("Clock", True)
        with pytest.raises(TypeError):
            number_tuple("Clock", "25")  # type: ignore[arg-type]

    def test_pointer_tuple_requires_oid(self):
        with pytest.raises(TypeError):
            pointer_tuple("Ref", "s1:1")  # type: ignore[arg-type]

    def test_blob_tuple_normalises_bytearray(self):
        t = blob_tuple("Image", bytearray(b"\x00\x01"))
        assert isinstance(t.data, bytes)

    def test_blob_tuple_rejects_str(self):
        with pytest.raises(TypeError):
            blob_tuple("Image", "not-bytes")  # type: ignore[arg-type]

    def test_keyword_goes_in_key_field(self):
        # Matching the paper's (keyword, "Distributed", ?) convention.
        t = keyword_tuple("Distributed")
        assert t.type == "Keyword"
        assert t.key == "Distributed"

    def test_application_defined_type(self):
        # The paper's Object_Code example: key = target machine.
        t = tuple_of("Object_Code", "vax", b"\x01\x02")
        assert t.type == "Object_Code"
        assert t.key == "vax"

    def test_text_tuple(self):
        assert text_tuple("Description", "some prose").type == "Text"
