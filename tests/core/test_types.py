"""Tests for the extensible tuple-type registry (paper §2)."""

import pytest

from repro.core.types import BUILTIN_TYPES, DEFAULT_REGISTRY, FieldKind, TupleType, TypeRegistry


class TestBuiltins:
    def test_builtins_registered(self):
        reg = TypeRegistry()
        for t in BUILTIN_TYPES:
            assert t.name in reg

    def test_pointer_type_recognised(self):
        assert TypeRegistry().is_pointer_type("Pointer")
        assert not TypeRegistry().is_pointer_type("String")

    def test_empty_registry_option(self):
        assert len(TypeRegistry(include_builtins=False)) == 0


class TestApplicationTypes:
    def test_define_new_type(self):
        # The paper's example: Object_Code with a string key (the target
        # machine) and arbitrary bits as data.
        reg = TypeRegistry()
        t = reg.define("Object_Code", FieldKind.STRING, FieldKind.OPAQUE)
        assert reg.get("Object_Code") == t

    def test_redefinition_identical_is_noop(self):
        reg = TypeRegistry()
        reg.define("X", FieldKind.STRING, FieldKind.NUMBER)
        reg.define("X", FieldKind.STRING, FieldKind.NUMBER)  # fine
        assert len([t for t in reg if t.name == "X"]) == 1

    def test_conflicting_redefinition_rejected(self):
        reg = TypeRegistry()
        reg.define("X", FieldKind.STRING, FieldKind.NUMBER)
        with pytest.raises(ValueError):
            reg.define("X", FieldKind.STRING, FieldKind.POINTER)

    def test_application_pointer_type(self):
        reg = TypeRegistry()
        reg.define("MyLink", FieldKind.STRING, FieldKind.POINTER)
        assert reg.is_pointer_type("MyLink")


class TestUnknownTypes:
    def test_unknown_type_is_opaque_not_error(self):
        # The server stores data it does not understand.
        reg = TypeRegistry()
        t = reg.lookup("NeverDefined")
        assert t.key_kind is FieldKind.OPAQUE
        assert t.data_kind is FieldKind.OPAQUE

    def test_get_returns_none_for_unknown(self):
        assert TypeRegistry().get("NeverDefined") is None


class TestTupleTypeValue:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            TupleType("", FieldKind.STRING, FieldKind.STRING)

    def test_default_registry_is_usable(self):
        assert "Pointer" in DEFAULT_REGISTRY
