"""Tests for HyperFile objects (sets of tuples, paper §2)."""

import pytest

from repro.core.objects import HFObject, make_set_object, set_members
from repro.core.oid import Oid
from repro.core.tuples import keyword_tuple, pointer_tuple, string_tuple, text_tuple

OID = Oid("s1", 0)
B = Oid("s1", 1)
C = Oid("s2", 0)


def sample():
    return HFObject(
        OID,
        [
            string_tuple("Title", "Main Program"),
            string_tuple("Author", "Joe Programmer"),
            pointer_tuple("Called Routine", B),
            pointer_tuple("Library", C),
        ],
    )


class TestConstruction:
    def test_requires_oid(self):
        with pytest.raises(TypeError):
            HFObject("s1:0", [])  # type: ignore[arg-type]

    def test_rejects_non_tuples(self):
        with pytest.raises(TypeError):
            HFObject(OID, ["not a tuple"])  # type: ignore[list-item]

    def test_set_semantics_collapse_duplicates(self):
        obj = HFObject(OID, [keyword_tuple("X"), keyword_tuple("X")])
        assert len(obj) == 1

    def test_preserves_first_seen_order(self):
        obj = sample()
        assert [t.key for t in obj] == ["Title", "Author", "Called Routine", "Library"]

    def test_empty_object_is_legal(self):
        assert len(HFObject(OID)) == 0


class TestAccessors:
    def test_tuples_of_type(self):
        assert len(sample().tuples_of_type("String")) == 2
        assert len(sample().tuples_of_type("Pointer")) == 2
        assert sample().tuples_of_type("Missing") == []

    def test_first(self):
        t = sample().first("String", "Title")
        assert t is not None and t.data == "Main Program"
        assert sample().first("String", "Nope") is None

    def test_values(self):
        assert sample().values("String", "Author") == ["Joe Programmer"]

    def test_pointers_all(self):
        assert set(sample().pointers()) == {B, C}

    def test_pointers_by_key(self):
        assert sample().pointers(key="Called Routine") == [B]

    def test_pointers_include_app_defined_pointer_types(self):
        from repro.core.tuples import tuple_of

        obj = HFObject(OID, [tuple_of("MyLink", "next", B)])
        assert obj.pointers() == [B]

    def test_contains(self):
        assert string_tuple("Title", "Main Program") in sample()


class TestFunctionalUpdates:
    def test_with_tuple_returns_new_object(self):
        obj = sample()
        updated = obj.with_tuple(keyword_tuple("Sort"))
        assert len(updated) == len(obj) + 1
        assert len(obj) == 4  # original untouched

    def test_without_by_type_and_key(self):
        updated = sample().without("Pointer", "Library")
        assert updated.pointers() == [B]

    def test_without_all_of_type(self):
        assert sample().without("Pointer").pointers() == []

    def test_relocated_changes_id_only(self):
        moved = sample().relocated(Oid("s9", 44))
        assert moved.oid == Oid("s9", 44)
        assert len(moved) == len(sample())


class TestEqualityAndSize:
    def test_equality_is_order_insensitive(self):
        t1, t2 = keyword_tuple("A"), keyword_tuple("B")
        assert HFObject(OID, [t1, t2]) == HFObject(OID, [t2, t1])

    def test_equality_requires_same_oid(self):
        assert HFObject(OID, []) != HFObject(B, [])

    def test_size_hint_wins(self):
        assert HFObject(OID, [], size_hint=12345).size_bytes == 12345

    def test_size_estimate_grows_with_payload(self):
        small = HFObject(OID, [text_tuple("Body", "x")])
        large = HFObject(OID, [text_tuple("Body", "x" * 10_000)])
        assert large.size_bytes > small.size_bytes + 9_000


class TestSetObjects:
    def test_round_trip(self):
        set_obj = make_set_object(OID, [B, C])
        assert set_members(set_obj) == [B, C]

    def test_custom_key(self):
        set_obj = make_set_object(OID, [B], key="Element")
        assert set_members(set_obj, key="Element") == [B]
        assert set_members(set_obj) == []  # default key finds nothing

    def test_set_object_is_an_ordinary_object(self):
        # Paper: "a set of objects is created using a basic object".
        set_obj = make_set_object(OID, [B, C])
        assert isinstance(set_obj, HFObject)
        assert len(set_obj.pointers()) == 2
