"""Tests for the fluent query builder."""

import pytest

from repro.core.builder import QueryBuilder
from repro.core.parser import parse_query


class TestBuilder:
    def test_equivalent_to_parser(self):
        built = (
            QueryBuilder("S")
            .begin_loop()
            .select("Pointer", "Reference", "?X")
            .deref_keep("X")
            .end_loop()
            .select("Keyword", "Distributed", "?")
            .into("T")
        )
        parsed = parse_query(
            'S [ (Pointer, "Reference", ?X) | ^^X ]* (Keyword, "Distributed", ?) -> T'
        )
        assert str(built) == str(parsed)

    def test_bounded_loop(self):
        q = (
            QueryBuilder("S")
            .begin_loop()
            .select("Pointer", "R", "?X")
            .deref("X")
            .end_loop(count=3)
            .into("T")
        )
        loop = q.filters[0]
        assert loop.count == 3
        assert loop.body[1].keep_source is False

    def test_follow_shorthand(self):
        q = QueryBuilder("S").follow("Reference", count=3).select("Keyword", "D").into("T")
        parsed = parse_query('S [ (Pointer, "Reference", ?X) ^^X ]^3 (Keyword, "D", ?) -> T')
        assert str(q) == str(parsed)

    def test_retrieve(self):
        q = QueryBuilder("S").retrieve("String", "Title", "title").into("T")
        assert q.retrieval_targets() == frozenset({"title"})

    def test_nested_loops(self):
        q = (
            QueryBuilder("S")
            .begin_loop()
            .begin_loop()
            .select("Pointer", "R", "?X")
            .deref_keep("X")
            .end_loop(count=2)
            .select("Pointer", "Q", "?Y")
            .deref_keep("Y")
            .end_loop(count=3)
            .into("T")
        )
        outer = q.filters[0]
        assert outer.count == 3 and outer.body[0].count == 2


class TestBuilderErrors:
    def test_unbalanced_end_loop(self):
        with pytest.raises(ValueError):
            QueryBuilder("S").end_loop()

    def test_open_scope_at_into(self):
        builder = QueryBuilder("S").begin_loop().select("Keyword", "A")
        with pytest.raises(ValueError, match="scope"):
            builder.into("T")

    def test_empty_query(self):
        with pytest.raises(ValueError):
            QueryBuilder("S").into("T")

    def test_empty_source(self):
        with pytest.raises(ValueError):
            QueryBuilder("")
