"""Tests for object identifiers (birth-site naming, paper §4)."""

import pytest

from repro.core.oid import Oid, OidAllocator


class TestOidIdentity:
    def test_equality_ignores_presumed_site(self):
        a = Oid("s1", 7, presumed_site="s2")
        b = Oid("s1", 7, presumed_site="s3")
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_requires_birth_site_and_id(self):
        assert Oid("s1", 7) != Oid("s2", 7)
        assert Oid("s1", 7) != Oid("s1", 8)

    def test_key_is_hint_insensitive(self):
        assert Oid("s1", 7, presumed_site="s9").key() == ("s1", 7)

    def test_usable_in_sets_across_hints(self):
        seen = {Oid("s1", 7, presumed_site="s2")}
        assert Oid("s1", 7, presumed_site="s5") in seen


class TestOidHint:
    def test_hint_defaults_to_birth_site(self):
        assert Oid("s1", 3).hint == "s1"

    def test_hint_prefers_presumed_site(self):
        assert Oid("s1", 3, presumed_site="s4").hint == "s4"

    def test_with_hint_round_trip(self):
        oid = Oid("s1", 3)
        hinted = oid.with_hint("s9")
        assert hinted.hint == "s9"
        assert hinted == oid
        assert hinted.without_hint().presumed_site is None


class TestOidValidation:
    def test_rejects_empty_birth_site(self):
        with pytest.raises(ValueError):
            Oid("", 1)

    def test_rejects_negative_local_id(self):
        with pytest.raises(ValueError):
            Oid("s1", -1)

    def test_rejects_non_int_local_id(self):
        with pytest.raises(ValueError):
            Oid("s1", "x")  # type: ignore[arg-type]


class TestOidText:
    def test_str_without_hint(self):
        assert str(Oid("s1", 5)) == "s1:5"

    def test_str_with_foreign_hint(self):
        assert str(Oid("s1", 5, presumed_site="s2")) == "s1:5@s2"

    def test_str_suppresses_hint_equal_to_birth(self):
        assert str(Oid("s1", 5, presumed_site="s1")) == "s1:5"

    def test_parse_round_trip(self):
        for oid in (Oid("s1", 5), Oid("s1", 5, presumed_site="s2")):
            parsed = Oid.parse(str(oid))
            assert parsed == oid
            assert parsed.hint == oid.hint

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Oid.parse("no-colon-here")


class TestOidAllocator:
    def test_allocates_sequential_ids(self):
        alloc = OidAllocator("s1")
        a, b, c = alloc.allocate(), alloc.allocate(), alloc.allocate()
        assert [a.local_id, b.local_id, c.local_id] == [0, 1, 2]
        assert len({a, b, c}) == 3

    def test_allocated_ids_carry_home_hint(self):
        oid = OidAllocator("s1").allocate()
        assert oid.birth_site == "s1"
        assert oid.hint == "s1"

    def test_peek_does_not_consume(self):
        alloc = OidAllocator("s1", start=10)
        assert alloc.peek() == 10
        assert alloc.peek() == 10
        assert alloc.allocate().local_id == 10
        assert alloc.peek() == 11

    def test_independent_sites_may_reuse_local_ids(self):
        a = OidAllocator("s1").allocate()
        b = OidAllocator("s2").allocate()
        assert a.local_id == b.local_id
        assert a != b
