"""Tests for the textual query-language parser."""

import pytest

from repro.core.ast import Deref, Iterate, Query, Retrieve, Select
from repro.core.parser import parse_filters, parse_query, tokenize
from repro.core.patterns import ANY, Bind, Literal, Range, Regex, Use
from repro.errors import QuerySyntaxError


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize('S ( , ) [ ] | * -> ^ ^^ ?X $Y "str" 42 /re/ ..5')]
        assert kinds == [
            "IDENT", "LPAREN", "COMMA", "RPAREN", "LBRACK", "RBRACK", "PIPE",
            "STAR", "ARROW", "CARET", "DDEREF", "QMARK", "DOLLAR", "STRING",
            "NUMBER", "REGEX", "DOTDOT", "NUMBER", "EOF",
        ]

    def test_string_escapes(self):
        tok = tokenize(r'"a\"b\\c\nd"')[0]
        assert tok.value == 'a"b\\c\nd'

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize('"never closed')

    def test_numbers(self):
        values = [t.value for t in tokenize("1 -2 3.5 -4.25") if t.kind == "NUMBER"]
        assert values == [1, -2, 3.5, -4.25]

    def test_range_not_confused_with_float(self):
        kinds = [t.kind for t in tokenize("1..10")]
        assert kinds == ["NUMBER", "DOTDOT", "NUMBER", "EOF"]

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("S @ T")


class TestParseQuery:
    def test_paper_example_closure(self):
        q = parse_query('S [ (Pointer, "Reference", ?X) | ^^X ]* (Keyword, "Distributed", ?) -> T')
        assert q.source == "S" and q.result == "T"
        loop, search = q.filters
        assert isinstance(loop, Iterate) and loop.is_closure
        sel, der = loop.body
        assert isinstance(sel, Select)
        assert isinstance(sel.key_pattern, Literal) and sel.key_pattern.value == "Reference"
        assert isinstance(sel.data_pattern, Bind) and sel.data_pattern.name == "X"
        assert isinstance(der, Deref) and der.keep_source
        assert isinstance(search, Select) and search.data_pattern is ANY

    def test_bounded_iterator(self):
        q = parse_query('S [ (Pointer, "R", ?X) ^X ]^3 -> T')
        loop = q.filters[0]
        assert isinstance(loop, Iterate) and loop.count == 3
        assert not loop.body[1].keep_source  # ^X drops the source

    def test_retrieval_filter(self):
        q = parse_query('S (String, "Title", ->title) -> T')
        ret = q.filters[0]
        assert isinstance(ret, Retrieve) and ret.target == "title"

    def test_default_result_name(self):
        q = parse_query('S (Keyword, "X", ?)')
        assert q.result == "_"

    def test_bare_identifiers_are_string_literals(self):
        q = parse_query("Root (Rand10p, 5, ?) -> T")
        sel = q.filters[0]
        assert sel.type_pattern == Literal("Rand10p")
        assert sel.key_pattern == Literal(5)

    def test_pattern_varieties(self):
        q = parse_query('S (Number, "Year", 1901..1902) (String, ?, /ab+/) (String, "Author", $X) -> T')
        year, rx, use = q.filters
        assert isinstance(year.data_pattern, Range)
        assert isinstance(rx.data_pattern, Regex)
        assert isinstance(use.data_pattern, Use) and use.data_pattern.name == "X"

    def test_open_ranges(self):
        q = parse_query("S (Number, ?, 5..) (Number, ?, ..9) -> T")
        assert q.filters[0].data_pattern == Range(5, None)
        assert q.filters[1].data_pattern == Range(None, 9)

    def test_pipes_are_decorative(self):
        a = parse_query('S [ (Pointer,"R",?X) | ^^X ]* -> T')
        b = parse_query('S [ (Pointer,"R",?X) ^^X ]* -> T')
        assert str(a) == str(b)

    def test_nested_iterators(self):
        q = parse_query('S [ [ (Pointer,"R",?X) ^^X ]^2 (Pointer,"Q",?Y) ^^Y ]^3 -> T')
        outer = q.filters[0]
        assert isinstance(outer, Iterate) and outer.count == 3
        inner = outer.body[0]
        assert isinstance(inner, Iterate) and inner.count == 2


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",                                   # no source
            "S [ ]* -> T",                        # empty iterator body
            "S [ (Keyword, \"X\", ?) ] -> T",     # iterator without * or ^k
            "S [ (Keyword, \"X\", ?) ]^2.5 -> T", # fractional count
            "S (Keyword, \"X\") -> T",            # two-field selection
            "S (Keyword, \"X\", ?) ->",           # dangling arrow
            "S ^ -> T",                           # deref without variable
            "S (Keyword, \"X\", ?) extra -> T garbage",  # trailing junk
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_query(text)

    def test_error_carries_position(self):
        try:
            parse_query('S [ (Keyword, "X", ?) ] -> T')
        except QuerySyntaxError as exc:
            assert exc.position >= 0
        else:
            pytest.fail("expected QuerySyntaxError")


class TestParseFilters:
    def test_bare_pipeline(self):
        filters = parse_filters('(Keyword, "A", ?) ^^X')
        assert len(filters) == 2

    def test_rejects_empty(self):
        with pytest.raises(QuerySyntaxError):
            parse_filters("   ")
