"""Tests for field patterns (paper §3.1's matching rules)."""

import pytest

from repro.core.oid import Oid
from repro.core.patterns import (
    ANY,
    Bind,
    Literal,
    OneOf,
    Range,
    Regex,
    Use,
    as_pattern,
)

NO_VARS = {}


def matched(pattern, value, mvars=NO_VARS):
    ok, _bindings = pattern.match(value, mvars)
    return ok


class TestAny:
    @pytest.mark.parametrize("value", ["x", 0, None, b"\x00", Oid("s1", 1)])
    def test_matches_everything(self, value):
        assert matched(ANY, value)

    def test_never_binds(self):
        assert ANY.match("x", NO_VARS)[1] == ()


class TestLiteral:
    def test_string_equality(self):
        assert matched(Literal("abc"), "abc")
        assert not matched(Literal("abc"), "abd")

    def test_numeric_cross_type(self):
        assert matched(Literal(5), 5.0)

    def test_bool_is_not_int(self):
        assert not matched(Literal(1), True)
        assert not matched(Literal(True), 1)

    def test_oid_hint_insensitive(self):
        assert matched(Literal(Oid("s1", 1, presumed_site="s2")), Oid("s1", 1, presumed_site="s3"))

    def test_no_bindings(self):
        assert Literal("x").match("x", NO_VARS)[1] == ()


class TestRegex:
    def test_fullmatch_semantics(self):
        assert matched(Regex("ab+"), "abbb")
        assert not matched(Regex("ab+"), "xabbb")  # not a substring search

    def test_non_string_never_matches(self):
        assert not matched(Regex(".*"), 42)

    def test_invalid_regex_fails_fast(self):
        with pytest.raises(Exception):
            Regex("(unclosed")


class TestRange:
    def test_closed_range(self):
        r = Range(1901, 1902)
        assert matched(r, 1901) and matched(r, 1902) and matched(r, 1901.5)
        assert not matched(r, 1900) and not matched(r, 1903)

    def test_open_ends(self):
        assert matched(Range(lo=10, hi=None), 1e9)
        assert matched(Range(lo=None, hi=10), -1e9)

    def test_rejects_unbounded_both_sides(self):
        with pytest.raises(ValueError):
            Range(None, None)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            Range(5, 4)

    def test_non_numeric_never_matches(self):
        assert not matched(Range(0, 10), "5")
        assert not matched(Range(0, 10), True)  # bools excluded


class TestOneOf:
    def test_membership(self):
        p = OneOf(["a", "b"])
        assert matched(p, "a") and not matched(p, "c")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OneOf([])


class TestBind:
    def test_matches_anything_and_binds(self):
        ok, bindings = Bind("X").match("value", NO_VARS)
        assert ok and bindings == (("X", "value"),)

    def test_requires_name(self):
        with pytest.raises(ValueError):
            Bind("")

    def test_reports_bound_variable(self):
        assert Bind("X").variables_bound() == frozenset({"X"})


class TestUse:
    def test_matches_against_bindings(self):
        mvars = {"X": {"a", "b"}}
        assert matched(Use("X"), "a", mvars)
        assert not matched(Use("X"), "c", mvars)

    def test_unbound_variable_never_matches(self):
        assert not matched(Use("X"), "anything", NO_VARS)

    def test_oid_bindings_hint_insensitive(self):
        mvars = {"X": {Oid("s1", 1, presumed_site="s2")}}
        assert matched(Use("X"), Oid("s1", 1, presumed_site="s9"), mvars)

    def test_reports_used_variable(self):
        assert Use("X").variables_used() == frozenset({"X"})


class TestAsPattern:
    def test_question_mark_is_any(self):
        assert as_pattern("?") is ANY

    def test_question_name_is_bind(self):
        p = as_pattern("?X")
        assert isinstance(p, Bind) and p.name == "X"

    def test_dollar_name_is_use(self):
        p = as_pattern("$X")
        assert isinstance(p, Use) and p.name == "X"

    def test_plain_values_become_literals(self):
        assert isinstance(as_pattern("abc"), Literal)
        assert isinstance(as_pattern(42), Literal)

    def test_existing_patterns_pass_through(self):
        p = Range(0, 1)
        assert as_pattern(p) is p
