"""Tests for static query validation."""

import pytest

from repro.core.parser import parse_query
from repro.core.validate import MAX_NESTING_DEPTH, validate_query
from repro.errors import QueryValidationError


def check(text, strict=True):
    return validate_query(parse_query(text), strict=strict)


class TestValidQueries:
    @pytest.mark.parametrize(
        "text",
        [
            'S (Keyword, "A", ?) -> T',
            'S [ (Pointer, "R", ?X) ^^X ]* (Keyword, "A", ?) -> T',
            'S (Pointer, "R", ?X) ^X -> T',
            'S (String, "Author", ?A) (String, "Maintainer", $A) -> T',
            'S (String, "Title", ->title) -> T',
        ],
    )
    def test_accepts(self, text):
        assert check(text).ok


class TestVariableChecks:
    def test_deref_of_never_bound_variable(self):
        with pytest.raises(QueryValidationError, match="dereference"):
            check("S ^^X -> T")

    def test_use_of_never_bound_variable(self):
        with pytest.raises(QueryValidationError, match="use of variable"):
            check('S (String, "Author", $X) -> T')

    def test_use_before_binding_in_sequence(self):
        # $A appears before ?A can have bound anything.
        with pytest.raises(QueryValidationError):
            check('S (String, "Maintainer", $A) (String, "Author", ?A) -> T')

    def test_loop_body_binding_counts_for_whole_body(self):
        # Inside an iterator the deref may run on a later pass, after the
        # selection bound X — legal even though ^^X precedes nothing here.
        assert check('S [ ^^X (Pointer, "R", ?X) ]* -> T', strict=False).ok

    def test_binding_from_enclosing_scope_visible_inside_loop(self):
        assert check('S (Pointer, "R", ?X) [ ^^X (Pointer, "R", ?X) ]^2 -> T').ok


class TestLimits:
    def test_nesting_limit(self):
        inner = '(Pointer, "R", ?X) ^^X'
        text = inner
        for _ in range(MAX_NESTING_DEPTH + 1):
            text = f"[ {text} ]^2"
        with pytest.raises(QueryValidationError, match="nesting"):
            check(f"S {text} -> T")

    def test_huge_iteration_count(self):
        with pytest.raises(QueryValidationError, match="sanity"):
            check('S [ (Pointer, "R", ?X) ^^X ]^999999 -> T')


class TestNonStrictMode:
    def test_reports_instead_of_raising(self):
        report = check("S ^^X -> T", strict=False)
        assert not report.ok
        assert any("X" in p for p in report.problems)

    def test_raise_if_invalid(self):
        report = check("S ^^X -> T", strict=False)
        with pytest.raises(QueryValidationError):
            report.raise_if_invalid()
