"""Tests for the query AST and its helper constructors."""

import pytest

from repro.core.ast import (
    Deref,
    Iterate,
    Query,
    Retrieve,
    Select,
    closure,
    deref,
    deref_keep,
    iterate,
    retrieve,
    select,
)
from repro.core.patterns import ANY, Bind


class TestSelect:
    def test_of_coerces_patterns(self):
        s = Select.of("Keyword", "Distributed", "?X")
        assert s.data_pattern == Bind("X")
        assert s.key_pattern.value == "Distributed"  # type: ignore[attr-defined]

    def test_defaults_are_wildcards(self):
        s = select("Keyword")
        assert s.key_pattern is ANY and s.data_pattern is ANY


class TestDeref:
    def test_helpers_set_keep_source(self):
        assert deref("X").keep_source is False
        assert deref_keep("X").keep_source is True

    def test_requires_variable(self):
        with pytest.raises(ValueError):
            Deref("")

    def test_str_forms(self):
        assert str(deref("X")) == "^X"
        assert str(deref_keep("X")) == "^^X"


class TestIterate:
    def test_closure_flag(self):
        assert closure(select("K")).is_closure
        assert not iterate(select("K"), count=3).is_closure

    def test_rejects_empty_body(self):
        with pytest.raises(ValueError):
            Iterate((), 3)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            iterate(select("K"), count=0)

    def test_walk_visits_nested(self):
        node = iterate(iterate(select("K"), count=2), deref_keep("X"), count=3)
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Iterate", "Iterate", "Select", "Deref"]


class TestRetrieve:
    def test_requires_target(self):
        with pytest.raises(ValueError):
            Retrieve(ANY, ANY, "")

    def test_of_coerces(self):
        r = retrieve("String", "Title", "title")
        assert r.target == "title"


class TestQuery:
    def build(self):
        return Query(
            "S",
            (
                closure(select("Pointer", "Reference", "?X"), deref_keep("X")),
                select("Keyword", "Distributed"),
                retrieve("String", "Title", "title"),
            ),
            "T",
        )

    def test_requires_source(self):
        with pytest.raises(ValueError):
            Query("", (select("K"),))

    def test_rejects_nested_query(self):
        with pytest.raises(ValueError):
            Query("S", (self.build(),))

    def test_variables_bound(self):
        assert self.build().variables_bound() == frozenset({"X"})

    def test_retrieval_targets(self):
        assert self.build().retrieval_targets() == frozenset({"title"})

    def test_str_round_trips_through_parser(self):
        from repro.core.parser import parse_query

        q = self.build()
        # str() renders with repr'd literals; the parse of that string
        # must produce a structurally identical query.
        reparsed = parse_query(str(q))
        assert str(reparsed) == str(q)
        assert reparsed.variables_bound() == q.variables_bound()
