"""Tests for query flattening (the indexed F_1..F_n form of paper §3)."""

import pytest

from repro.core.ast import closure, deref_keep, iterate, retrieve, select
from repro.core.ast import Query
from repro.core.parser import parse_query
from repro.core.program import DerefOp, LoopOp, Op, RetrieveOp, SelectOp, compile_query


def compile_text(text):
    return compile_query(parse_query(text))


class TestFlattening:
    def test_paper_layout(self):
        # [F1 F2]^3 F4 compiles to F1 F2 I_1^3 F4 — the example of §3.1.
        prog = compile_text('S [ (Pointer,"Reference",?X) ^^X ]^3 (Keyword,"Distributed",?) -> T')
        kinds = [type(op).__name__ for op in prog.ops]
        assert kinds == ["SelectOp", "DerefOp", "LoopOp", "SelectOp"]
        loop = prog.ops[2]
        assert loop.start == 1 and loop.count == 3

    def test_indices_are_one_based(self):
        prog = compile_text('S (Keyword,"A",?) (Keyword,"B",?) -> T')
        assert [op.index for op in prog.ops] == [1, 2]
        assert prog.op_at(1) is prog.ops[0]

    def test_size_matches_op_count(self):
        prog = compile_text('S [ (Pointer,"R",?X) ^^X ]* (Keyword,"D",?) -> T')
        assert prog.size == 4

    def test_closure_loop_has_no_count(self):
        prog = compile_text('S [ (Pointer,"R",?X) ^^X ]* -> T')
        assert prog.ops[2].count is None
        assert prog.ops[2].is_closure

    def test_retrieve_op(self):
        prog = compile_text('S (String,"Title",->title) -> T')
        op = prog.ops[0]
        assert isinstance(op, RetrieveOp) and op.target == "title"

    def test_source_and_result_carried_over(self):
        prog = compile_text('MySet (Keyword,"A",?) -> Out')
        assert prog.source == "MySet" and prog.result == "Out"


class TestEnclosingLoops:
    def test_top_level_ops_have_no_enclosing_loop(self):
        prog = compile_text('S (Keyword,"A",?) -> T')
        assert prog.innermost_loop(1) == 0
        assert prog.loops_enclosing(1) == ()

    def test_single_loop(self):
        prog = compile_text('S [ (Pointer,"R",?X) ^^X ]^3 (Keyword,"D",?) -> T')
        # F1, F2 and the marker F3 itself are inside loop 3.
        assert prog.loops_enclosing(1) == (3,)
        assert prog.loops_enclosing(2) == (3,)
        assert prog.loops_enclosing(3) == (3,)
        assert prog.loops_enclosing(4) == ()

    def test_nested_loops_outermost_first(self):
        prog = compile_text('S [ [ (Pointer,"R",?X) ^^X ]^2 (Pointer,"Q",?Y) ^^Y ]^3 -> T')
        # Layout: F1 Sel, F2 Deref, F3 inner marker, F4 Sel, F5 Deref, F6 outer marker.
        kinds = [type(op).__name__ for op in prog.ops]
        assert kinds == ["SelectOp", "DerefOp", "LoopOp", "SelectOp", "DerefOp", "LoopOp"]
        assert prog.loops_enclosing(1) == (6, 3)
        assert prog.innermost_loop(1) == 3
        assert prog.loops_enclosing(4) == (6,)
        assert prog.loops_enclosing(6) == (6,)
        inner, outer = prog.ops[2], prog.ops[5]
        assert inner.start == 1 and inner.count == 2
        assert outer.start == 1 and outer.count == 3

    def test_sequential_loops_do_not_nest(self):
        prog = compile_text('S [ (Pointer,"R",?X) ^^X ]^2 [ (Pointer,"Q",?Y) ^^Y ]^2 -> T')
        assert prog.loops_enclosing(1) == (3,)
        assert prog.loops_enclosing(4) == (6,)
        assert prog.ops[5].start == 4


class TestWireSize:
    def test_experiment_queries_are_small(self):
        # The paper reports ~40-byte query messages.
        prog = compile_text('Root [ (Pointer,"Tree",?X) ^^X ]* (Rand10p, 5, ?) -> T')
        assert prog.wire_size() < 120

    def test_wire_size_grows_with_filters(self):
        small = compile_text('S (Keyword,"A",?) -> T')
        big = compile_text('S (Keyword,"A",?) (Keyword,"B",?) (Keyword,"C",?) -> T')
        assert big.wire_size() > small.wire_size()
