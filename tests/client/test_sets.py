"""Tests for client-side set algebra."""

import pytest

from repro.client.sets import difference, intersection, union
from repro.cluster import SimCluster
from repro.client.session import Session
from repro.core import keyword_tuple
from repro.core.oid import Oid
from repro.errors import HyperFileError

A = Oid("s1", 0)
B = Oid("s1", 1)
C = Oid("s1", 2)
A_HINTED = Oid("s1", 0, presumed_site="s9")


class TestOperators:
    def test_union_dedupes_and_preserves_order(self):
        assert union([A, B], [B, C]) == [A, B, C]

    def test_union_is_hint_insensitive(self):
        assert union([A], [A_HINTED]) == [A]

    def test_intersection(self):
        assert intersection([A, B, C], [C, B]) == [B, C]
        assert intersection([A], [B]) == []

    def test_intersection_of_three(self):
        assert intersection([A, B, C], [B, C], [C]) == [C]

    def test_difference(self):
        assert difference([A, B, C], [B]) == [A, C]
        assert difference([A, B, C], [A], [C]) == [B]

    def test_single_operand_passthrough(self):
        assert union([A, B]) == [A, B]
        assert intersection([A, B]) == [A, B]
        assert difference([A, B]) == [A, B]


class TestSessionCombine:
    @pytest.fixture
    def session(self):
        cluster = SimCluster(1)
        store = cluster.store("site0")
        docs = {
            "red": store.create([keyword_tuple("red")]).oid,
            "blue": store.create([keyword_tuple("blue")]).oid,
            "both": store.create([keyword_tuple("red"), keyword_tuple("blue")]).oid,
        }
        session = Session(cluster)
        session.define_set("All", list(docs.values()))
        session.query('All (Keyword, "red", ?) -> Red')
        session.query('All (Keyword, "blue", ?) -> Blue')
        return session, docs

    def test_combine_union(self, session):
        session, docs = session
        result = session.combine("Either", "union", "Red", "Blue")
        assert {o.key() for o in result} == {d.key() for d in docs.values()}

    def test_combine_intersection_feeds_further_queries(self, session):
        session, docs = session
        session.combine("Both", "intersection", "Red", "Blue")
        found = session.query('Both (Keyword, "red", ?) -> Check')
        assert [o.key() for o in found] == [docs["both"].key()]

    def test_combine_difference(self, session):
        session, docs = session
        result = session.combine("OnlyRed", "difference", "Red", "Blue")
        assert [o.key() for o in result] == [docs["red"].key()]

    def test_unknown_operation(self, session):
        session, _ = session
        with pytest.raises(HyperFileError, match="unknown set operation"):
            session.combine("X", "xor", "Red", "Blue")

    def test_no_operands(self, session):
        session, _ = session
        with pytest.raises(HyperFileError, match="at least one"):
            session.combine("X", "union")
