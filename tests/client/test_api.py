"""Tests for the HyperFile convenience facade."""

import pytest

from repro.client import HyperFile
from repro.core import keyword_tuple, pointer_tuple, string_tuple
from repro.errors import HyperFileError


@pytest.fixture
def hf():
    service = HyperFile(sites=3)
    paper = service.create(
        "site0",
        string_tuple("Title", "HyperFile"),
        keyword_tuple("Distributed"),
    )
    other = service.create(
        "site1",
        string_tuple("Title", "Other Paper"),
        pointer_tuple("Reference", paper),
    )
    service.define_set("S", [other])
    return service, paper, other


class TestFacade:
    def test_create_and_get(self, hf):
        service, paper, _ = hf
        obj = service.get(paper)
        assert obj.first("String", "Title").data == "HyperFile"

    def test_query_text(self, hf):
        service, paper, other = hf
        result = service.query(
            'S (Pointer, "Reference", ?X) ^X (Keyword, "Distributed", ?) -> T'
        )
        assert [o.key() for o in result] == [paper.key()]
        assert [o.key() for o in service.members("T")] == [paper.key()]

    def test_retrieval(self, hf):
        service, _, _ = hf
        service.query('S (String, "Title", ->title) -> T')
        assert service.retrieve("title") == ["Other Paper"]

    def test_update_adds_tuples(self, hf):
        service, paper, _ = hf
        service.update(paper, keyword_tuple("Hypertext"))
        service.define_set("P", [paper])
        result = service.query('P (Keyword, "Hypertext", ?) -> U')
        assert len(result) == 1

    def test_migrate_preserves_queryability(self, hf):
        service, paper, other = hf
        service.migrate(paper, "site2")
        result = service.query('S (Pointer, "Reference", ?X) ^X -> T')
        assert [o.key() for o in result] == [paper.key()]

    def test_response_time_available(self, hf):
        service, _, _ = hf
        service.query('S (String, "Title", ?) -> T')
        assert service.last_response_time is not None and service.last_response_time > 0

    def test_sites_listing(self, hf):
        service, _, _ = hf
        assert service.sites == ["site0", "site1", "site2"]

    def test_unknown_set_query(self, hf):
        service, _, _ = hf
        with pytest.raises(HyperFileError):
            service.query('Missing (Keyword, "X", ?) -> T')
