"""Tests for the application session layer (embedded language, paper §2)."""

import pytest

from repro.client.session import Session
from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple, string_tuple
from repro.errors import HyperFileError


@pytest.fixture
def cluster_and_session():
    cluster = SimCluster(3)
    s0, s1 = cluster.store("site0"), cluster.store("site1")
    lib = s1.create([string_tuple("Title", "libc")])
    s1.replace(s1.get(lib.oid).with_tuple(pointer_tuple("Called Routine", lib.oid)))
    main = s0.create(
        [
            string_tuple("Author", "Joe Programmer"),
            string_tuple("Title", "Main Program"),
            pointer_tuple("Called Routine", lib.oid),
        ]
    )
    session = Session(cluster)
    session.define_set("S", [main.oid])
    return cluster, session, main.oid, lib.oid


class TestNamedSets:
    def test_define_and_read(self, cluster_and_session):
        _, session, main, _ = cluster_and_session
        assert session.set_members("S") == [main]
        assert session.has_set("S")
        assert session.count_set("S") == 1

    def test_unknown_set_rejected(self, cluster_and_session):
        _, session, _, _ = cluster_and_session
        with pytest.raises(HyperFileError):
            session.set_members("Nope")
        with pytest.raises(HyperFileError):
            session.query('Nope (String, "Author", ?) -> T')


class TestQueries:
    def test_result_set_usable_in_further_queries(self, cluster_and_session):
        _, session, main, lib = cluster_and_session
        session.query('S (Pointer, "Called Routine", ?X) ^^X -> T')
        assert session.count_set("T") == 2
        result = session.query('T (String, "Title", "libc") -> U')
        assert [o.key() for o in result] == [lib.key()]

    def test_retrieval_bindings(self, cluster_and_session):
        _, session, _, _ = cluster_and_session
        session.query('S (String, "Author", "Joe Programmer") (String, "Title", ->title) -> T')
        assert session.retrieve("title") == ["Main Program"]
        session.clear_bindings()
        assert session.retrieve("title") == []

    def test_response_time_recorded(self, cluster_and_session):
        _, session, _, _ = cluster_and_session
        session.query('S (String, "Author", ?) -> T')
        assert session.last_response_time is not None
        assert session.last_response_time > 0


class TestSetObjects:
    def test_materialize_and_load(self, cluster_and_session):
        cluster, session, main, lib = cluster_and_session
        session.define_set("Both", [main, lib])
        handle = session.materialize_set("Both")
        other = Session(cluster)
        other.load_set_object("Copy", handle)
        assert {o.key() for o in other.set_members("Copy")} == {main.key(), lib.key()}


class TestDistributedSets:
    def test_count_mode_keeps_ids_at_sites(self):
        cluster = SimCluster(3, result_mode="count")
        stores = [cluster.store(s) for s in cluster.sites]
        oids = []
        for store in stores:
            for _ in range(2):
                obj = store.create([keyword_tuple("K")])
                store.replace(store.get(obj.oid).with_tuple(pointer_tuple("Ref", obj.oid)))
                oids.append(obj.oid)
        for i, oid in enumerate(oids[:-1]):
            store = cluster.store(oid.birth_site)
            store.replace(store.get(oid).with_tuple(pointer_tuple("Ref", oids[i + 1])))
        session = Session(cluster)
        session.define_set("S", [oids[0]])
        session.query('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T')
        assert session.is_distributed("T")
        assert session.count_set("T") == len(oids)
        with pytest.raises(HyperFileError):
            session.set_members("T")

    def test_followup_query_over_distributed_set(self):
        cluster = SimCluster(3, result_mode="count")
        s0, s1 = cluster.store("site0"), cluster.store("site1")
        a = s0.create([keyword_tuple("K"), keyword_tuple("Blue")])
        b = s1.create([keyword_tuple("K")])
        s0.replace(s0.get(a.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        s1.replace(s1.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
        session = Session(cluster)
        session.define_set("S", [a.oid])
        session.query('S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T')
        assert session.count_set("T") == 2
        # Follow-up narrows the distributed set without moving ids.
        session.query('T (Keyword,"Blue",?) -> U')
        assert session.count_set("U") == 1
