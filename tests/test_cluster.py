"""Tests for the simulated cluster (assembly + end-to-end queries)."""

import pytest

from repro.cluster import QueryOutcome, SimCluster, site_name
from repro.core import keyword_tuple, pointer_tuple
from repro.core.oid import Oid
from repro.errors import HyperFileError, UnknownSite
from repro.sim.costs import PAPER_COSTS

CLOSURE = 'S [ (Pointer, "Reference", ?X) | ^^X ]* (Keyword, "Distributed", ?) -> T'


def build_cross_site_chain(cluster):
    """a(site0) -> b(site1) -> c(site2) -> d(site0); a, b, d keyworded."""
    s0, s1, s2 = (cluster.store(s) for s in cluster.sites[:3])
    d = s0.create([keyword_tuple("Distributed")])
    s0.replace(s0.get(d.oid).with_tuple(pointer_tuple("Reference", d.oid)))
    c = s2.create([pointer_tuple("Reference", d.oid)])
    b = s1.create([pointer_tuple("Reference", c.oid), keyword_tuple("Distributed")])
    a = s0.create([pointer_tuple("Reference", b.oid), keyword_tuple("Distributed")])
    return {"a": a.oid, "b": b.oid, "c": c.oid, "d": d.oid}


class TestAssembly:
    def test_site_count_form(self):
        assert SimCluster(3).sites == ["site0", "site1", "site2"]

    def test_named_sites_form(self):
        assert SimCluster(["alpha", "beta"]).sites == ["alpha", "beta"]

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            SimCluster(0)
        with pytest.raises(ValueError):
            SimCluster(["a", "a"])

    def test_unknown_site_accessors(self):
        cluster = SimCluster(1)
        with pytest.raises(UnknownSite):
            cluster.store("nope")
        with pytest.raises(UnknownSite):
            cluster.node("nope")

    def test_site_name_helper(self):
        assert site_name(4) == "site4"


class TestQueries:
    def test_cross_site_closure(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        out = cluster.run_query(CLOSURE, [ids["a"]])
        assert out.result.oid_keys() == {ids["a"].key(), ids["b"].key(), ids["d"].key()}

    def test_response_time_positive_and_reported(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        out = cluster.run_query(CLOSURE, [ids["a"]])
        assert out.response_time > 0
        assert out.completed_at >= out.submitted_at

    def test_accepts_text_ast_and_program(self):
        from repro.core.parser import parse_query
        from repro.core.program import compile_query

        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        query = parse_query(CLOSURE)
        for form in (CLOSURE, query, compile_query(query)):
            out = cluster.run_query(form, [ids["a"]])
            assert len(out.result.oids) == 3

    def test_rejects_invalid_query_type(self):
        with pytest.raises(TypeError):
            SimCluster(1).compile(42)  # type: ignore[arg-type]

    def test_invalid_query_rejected_before_execution(self):
        from repro.errors import QueryValidationError

        cluster = SimCluster(1)
        with pytest.raises(QueryValidationError):
            cluster.run_query("S ^^X -> T", [])

    def test_concurrent_queries(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        q1 = cluster.submit(CLOSURE, [ids["a"]])
        q2 = cluster.submit('S (Keyword, "Distributed", ?) -> T', [ids["c"], ids["d"]])
        cluster.run()
        out1, out2 = cluster.outcome(q1), cluster.outcome(q2)
        assert out1 is not None and len(out1.result.oids) == 3
        assert out2 is not None and out2.result.oid_keys() == {ids["d"].key()}

    def test_originator_choice(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        out = cluster.run_query(CLOSURE, [ids["a"]], originator="site2")
        assert len(out.result.oids) == 3
        assert out.qid.originator == "site2"

    def test_wait_raises_if_query_cannot_complete(self):
        cluster = SimCluster(2)
        # Submit against a down site: the seed send is dropped, so the
        # query still terminates (with empty results) — then assert a
        # query id that never existed raises.
        with pytest.raises(HyperFileError):
            cluster.wait(cluster._next_qid("site0"))


class TestStatsAggregation:
    def test_objects_processed_counted_across_sites(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        out = cluster.run_query(CLOSURE, [ids["a"]])
        assert out.result.stats.objects_processed == 4
        assert out.result.stats.remote_derefs == 3  # a->b, b->c, c->d hops

    def test_cluster_total_stats(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        cluster.run_query(CLOSURE, [ids["a"]])
        totals = cluster.total_stats()
        assert totals.messages_sent.get("DerefRequest") == 3
        assert totals.messages_sent.get("ResultBatch", 0) >= 2
        assert totals.bytes_sent > 0


class TestAvailability:
    def test_down_site_gives_partial_results(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        cluster.set_down("site2")
        out = cluster.run_query(CLOSURE, [ids["a"]])
        # c and d are beyond the downed site; a and b still found.
        assert out.result.oid_keys() == {ids["a"].key(), ids["b"].key()}
        assert cluster.total_stats().failed_sends == 1

    def test_recovered_site_participates_again(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        cluster.set_down("site2")
        cluster.run_query(CLOSURE, [ids["a"]])
        cluster.set_up("site2")
        out = cluster.run_query(CLOSURE, [ids["a"]])
        assert len(out.result.oids) == 3

    def test_down_originator_unusable_but_others_fine(self):
        # "If Node A is down, one should still be able to pose a query to
        # Node B."
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        cluster.set_down("site0")
        out = cluster.run_query(
            'S (Keyword, "Distributed", ?) -> T', [ids["b"]], originator="site1"
        )
        assert out.result.oid_keys() == {ids["b"].key()}


class TestMigrationIntegration:
    def test_query_follows_migrated_object(self):
        cluster = SimCluster(3)
        ids = build_cross_site_chain(cluster)
        cluster.migrate(ids["b"], "site2")
        out = cluster.run_query(CLOSURE, [ids["a"]])
        assert out.result.oid_keys() == {ids["a"].key(), ids["b"].key(), ids["d"].key()}
        assert cluster.total_stats().forwarded_requests >= 1

    def test_unknown_destination_rejected(self):
        cluster = SimCluster(2)
        ids = build_cross_site_chain(SimCluster(3))  # foreign oids
        with pytest.raises(KeyError):
            cluster.migrate(Oid("site0", 0), "site9")


class TestTerminationChoices:
    @pytest.mark.parametrize("strategy", ["weighted", "dijkstra-scholten"])
    def test_both_strategies_complete(self, strategy):
        cluster = SimCluster(3, termination=strategy)
        ids = build_cross_site_chain(cluster)
        out = cluster.run_query(CLOSURE, [ids["a"]])
        assert len(out.result.oids) == 3

    def test_ds_sends_control_messages_weighted_does_not(self):
        results = {}
        for strategy in ("weighted", "dijkstra-scholten"):
            cluster = SimCluster(3, termination=strategy)
            ids = build_cross_site_chain(cluster)
            cluster.run_query(CLOSURE, [ids["a"]])
            results[strategy] = cluster.total_stats().messages_sent.get("ControlMessage", 0)
        assert results["weighted"] == 0
        assert results["dijkstra-scholten"] >= 3
