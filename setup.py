"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file exists so
`pip install -e .` can fall back to the legacy develop path where PEP 660
editable wheels cannot be built (setuptools < 70 without `wheel`).
"""

from setuptools import setup

setup()
