"""Caching ablation — cross-query caches on the §5 dense workload.

The paper's browsing clients re-issue near-identical filtering queries
over a slowly-changing hyperdocument graph; its Figure-4 worst case
(5% pointer locality) is exactly where repeated traversals re-pay the
full message bill every time.  This experiment runs the same query
script *twice* over that workload with each cache layer (fragments,
whole-query results, Bloom reachability summaries) enabled separately
and together, and reports per config: mean response time, remote work
messages per query (DerefRequest + BatchedQuery), bytes on the wire,
and the cache counters that explain the savings.

Every configuration must return byte-identical result sets to the
uncached run — the caches may only remove work, never answers.

Acceptance (tracked in ``BENCH_caching.json`` at the repo root):

* ``full`` — at least 30% fewer remote work messages than uncached on
  the repeated script, identical result sets;
* ``off`` — the subsystem disables itself: message counts, bytes and
  virtual timings bit-identical to a cluster built without it.
"""

import json
import pathlib

from repro.cache import CacheConfig
from repro.metrics.collect import Series
from repro.workload import pointer_key_for, query_script

from .conftest import N_QUERIES, SPEC, make_cluster, report

#: Figure 4's leftmost locality class: 5% local pointers — the densest
#: cross-site message traffic the paper measures.
P_LOCAL = 0.05

#: The script is run this many times back to back ("repeated browsing").
REPEATS = 2

CONFIGS = (
    ("off", None),
    ("fragments", CacheConfig(query_cache=False, summaries=False)),
    ("summaries", CacheConfig(fragments=False, query_cache=False)),
    ("query-cache", CacheConfig(fragments=False, summaries=False)),
    ("full", CacheConfig()),
)

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_caching.json"


def _sum_metrics(snapshot, name, **labels):
    """Sum a metric's value across instruments matching the given labels."""
    total = 0.0
    for metric in snapshot["metrics"]:
        if metric["name"] != name:
            continue
        if all(metric["labels"].get(k) == v for k, v in labels.items()):
            total += metric["value"]
    return total


#: Fraction of objects destroyed after graph generation for the
#: dangling-fringe experiment (browsing an evolving hyperdocument:
#: links outlive their targets).
FRINGE_REMOVED = 0.15


def run_config(label, caching, paper_graph, removed=0.0):
    """The repeated script under one cache config.

    ``removed`` destroys that fraction of non-root objects up front,
    leaving their inbound pointers dangling.  Returns the measurement
    row and the per-query result fingerprints (oid keys + retrieved
    values), in script order.
    """
    import random

    cluster, workload = make_cluster(3, paper_graph, caching=caching)
    if removed:
        rng = random.Random(13)
        victims = rng.sample(list(workload.oids[1:]), int(removed * len(workload.oids)))
        for oid in victims:
            cluster.store(oid.birth_site).remove(oid)
    cluster.enable_metrics()
    series = Series(label)
    fingerprints = []
    for _ in range(REPEATS):
        for query in query_script(pointer_key_for(P_LOCAL), "Rand10p",
                                  count=N_QUERIES, seed=7, spec=SPEC):
            outcome = cluster.run_query(query, [workload.root])
            series.add(outcome.response_time)
            fingerprints.append(
                (
                    tuple(sorted(outcome.result.oid_keys())),
                    tuple(sorted(
                        (target, tuple(values))
                        for target, values in outcome.result.retrieved.items()
                    )),
                )
            )
    snapshot = cluster.metrics_snapshot()
    n_total = N_QUERIES * REPEATS
    work_messages = _sum_metrics(
        snapshot, "node.messages_sent", kind="DerefRequest"
    ) + _sum_metrics(snapshot, "node.messages_sent", kind="BatchedQuery")
    row = {
        "config": label,
        "mean_response_s": series.mean,
        "work_messages_per_query": work_messages / n_total,
        "messages_per_query": cluster.network.messages_delivered / n_total,
        "bytes_per_query": cluster.network.bytes_delivered / n_total,
        "fragment_hits": int(_sum_metrics(snapshot, "node.cache_hits")),
        "query_cache_hits": int(_sum_metrics(snapshot, "node.query_cache_hits")),
        "bloom_suppressed": int(_sum_metrics(snapshot, "node.sends_suppressed_bloom")),
        "summaries_sent": int(_sum_metrics(snapshot, "node.summaries_sent")),
    }
    return row, fingerprints


def test_caching_ablation(benchmark, paper_graph):
    def experiment():
        return [run_config(label, caching, paper_graph) for label, caching in CONFIGS]

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [row for row, _ in results]
    by_config = {row["config"]: row for row in rows}
    baseline_row, baseline_prints = results[0]
    assert baseline_row["config"] == "off"

    report(
        benchmark,
        f"Caching ablation: repeated script on the P(local)={P_LOCAL} workload",
        [
            {
                "config": r["config"],
                "mean_response_s": r["mean_response_s"],
                "work_msgs_per_query": r["work_messages_per_query"],
                "bytes_per_query": r["bytes_per_query"],
                "frag_hits": r["fragment_hits"],
                "query_hits": r["query_cache_hits"],
                "bloom_supp": r["bloom_suppressed"],
            }
            for r in rows
        ],
    )

    # The pristine locality-class graphs give the Bloom layer nothing to
    # bite on — every object exists and has outgoing pointers of every
    # class.  Its habitat is the *evolving* hyperdocument, where links
    # outlive their targets: destroy a fringe of objects and the
    # nonexistence rule prunes the dangling sends on every later query.
    fringe_off, fringe_off_prints = run_config(
        "fringe/off", None, paper_graph, removed=FRINGE_REMOVED
    )
    fringe_bloom, fringe_bloom_prints = run_config(
        "fringe/summaries", CacheConfig(fragments=False, query_cache=False),
        paper_graph, removed=FRINGE_REMOVED,
    )

    payload = {
        "experiment": "caching_ablation",
        "workload": {"p_local": P_LOCAL, "search_type": "Rand10p", "machines": 3,
                     "repeats": REPEATS},
        "n_queries": N_QUERIES,
        "configs": rows,
        "dangling_fringe": [fringe_off, fringe_bloom],
        "work_message_reduction_full": baseline_row["work_messages_per_query"]
        / by_config["full"]["work_messages_per_query"],
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Transparency: every config answers every query exactly like the
    # uncached cluster — same oids, same retrieved values, same order of
    # queries (byte-identical result sets).
    for row, prints in results[1:]:
        assert prints == baseline_prints, row["config"]

    # The uncached run must not touch a single cache code path.
    for counter in ("fragment_hits", "query_cache_hits", "bloom_suppressed",
                    "summaries_sent"):
        assert baseline_row[counter] == 0

    # Headline: >= 30% fewer remote work messages with the full config.
    assert (
        by_config["full"]["work_messages_per_query"]
        <= 0.7 * baseline_row["work_messages_per_query"]
    )
    # And the caches never *add* remote work, whatever the subset.  The
    # response-time tolerance covers the summary bytes: on a graph with
    # nothing to suppress they are pure (tiny) transfer overhead.
    for row in rows[1:]:
        assert row["work_messages_per_query"] <= baseline_row["work_messages_per_query"]
        assert row["mean_response_s"] <= baseline_row["mean_response_s"] * 1.001

    # Each layer's own evidence: the counters that justify its existence.
    assert by_config["query-cache"]["query_cache_hits"] >= N_QUERIES * (REPEATS - 1)
    assert by_config["fragments"]["fragment_hits"] > 0
    # Bloom pruning on the dangling fringe: real messages saved, same
    # answers.
    assert fringe_bloom_prints == fringe_off_prints
    assert fringe_bloom["bloom_suppressed"] > 0
    assert (
        fringe_bloom["work_messages_per_query"] < fringe_off["work_messages_per_query"]
    )


def test_caching_off_matches_uncached_exactly(paper_graph):
    """The degenerate config must not merely be close — message stream,
    byte counts and virtual timings are bit-identical."""
    plain_cluster, plain_workload = make_cluster(3, paper_graph)
    degen_cluster, degen_workload = make_cluster(
        3, paper_graph,
        caching=CacheConfig(fragments=False, query_cache=False, summaries=False),
    )

    def run(cluster, workload):
        times = []
        for query in query_script(pointer_key_for(P_LOCAL), "Rand10p",
                                  count=5, seed=7, spec=SPEC):
            times.append(cluster.run_query(query, [workload.root]).response_time)
        return times

    plain = run(plain_cluster, plain_workload)
    degen = run(degen_cluster, degen_workload)
    assert plain == degen
    assert plain_cluster.network.messages_delivered == degen_cluster.network.messages_delivered
    assert plain_cluster.network.bytes_delivered == degen_cluster.network.bytes_delivered
