"""A8 — organic workload ablation (extension).

Does the §5 locality finding hold when locality comes from a plausible
process (topic communities + preferential-attachment citations) instead
of per-edge coin flips?  We grow corpora with different cross-topic
citation rates, measure the locality that *emerges*, and check that the
distributed-vs-centralized verdict still follows the paper's rule.
"""

import pytest

from repro.baselines.centralized import run_centralized
from repro.cluster import SimCluster
from repro.core.program import compile_query
from repro.metrics.collect import Series
from repro.storage.memstore import MemStore
from repro.workload import closure_query
from repro.workload.corpus import CorpusSpec, build_corpus

from .conftest import N_QUERIES, report

KEYWORDS = ["distributed", "survey", "performance", "hypertext", "framework"]


def run_corpus(cross_topic: float):
    spec = CorpusSpec(n_docs=300, cross_topic_fraction=cross_topic)
    cluster = SimCluster(3)
    corpus = build_corpus(spec, [cluster.store(s) for s in cluster.sites])
    solo_store = MemStore("solo")
    solo = build_corpus(spec, [solo_store])

    distributed = Series("distributed")
    central = Series("central")
    for i in range(min(N_QUERIES, len(KEYWORDS) * 4)):
        keyword = KEYWORDS[i % len(KEYWORDS)]
        program = compile_query(closure_query("Cites", "Keyword", keyword))
        seed_index = len(corpus.oids) - 1 - (i % 10)
        outcome = cluster.run_query(program, [corpus.oids[seed_index]])
        distributed.add(outcome.response_time)
        central.add(
            run_centralized(program, [solo.oids[seed_index]], solo_store.get).response_time_s
        )
    return corpus.measured_locality(), distributed.mean, central.mean


def test_corpus_workload(benchmark):
    def experiment():
        return {cross: run_corpus(cross) for cross in (0.05, 0.30, 0.60)}

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "cross_topic_rate": cross,
            "emergent_locality": locality,
            "distributed_s": dist,
            "central_s": cent,
            "dist/central": dist / cent,
        }
        for cross, (locality, dist, cent) in measured.items()
    ]
    report(benchmark, "A8: organically-grown hypertext corpus (3 machines)", rows)

    # Emergent locality falls as communities cite outward...
    localities = [measured[c][0] for c in (0.05, 0.30, 0.60)]
    assert localities[0] > localities[1] > localities[2]
    # ...and the paper's rule carries over: the distributed/central ratio
    # worsens as locality drops.
    ratios = [measured[c][1] / measured[c][2] for c in (0.05, 0.30, 0.60)]
    assert ratios[0] < ratios[-1]
