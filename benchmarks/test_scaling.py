"""E6 — linearity in database size (§5).

    "As the algorithm is linear we expect using a different number of
    items in the query would result in a linear change in the response
    time.  We did construct a data set with half the number of items;
    this didn't quite cut the query time in half.  This is as we would
    expect (since there is some constant overhead associated with the
    query, regardless of size.)"
"""

import pytest

from repro.cluster import SimCluster
from repro.workload import WorkloadSpec, build_graph, generate_into_cluster

from .conftest import SPEC, report, run_script


def _mean_time(n_objects: int, machines: int) -> float:
    spec = SPEC.scaled(n_objects)
    graph = build_graph(n=n_objects)
    cluster = SimCluster(machines)
    workload = generate_into_cluster(cluster, spec, graph)
    return run_script(cluster, workload, "Tree", "Rand10p").mean


def test_scaling_linearity(benchmark):
    sizes = (68, 135, 270, 540)

    def experiment():
        return {
            (n, machines): _mean_time(n, machines)
            for n in sizes
            for machines in (1, 3)
        }

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "objects": n,
            "1_machine_s": measured[(n, 1)],
            "3_machines_s": measured[(n, 3)],
            "ratio_vs_270_1m": measured[(n, 1)] / measured[(270, 1)],
        }
        for n in sizes
    ]
    report(benchmark, "E6: response time vs database size (tree closure)", rows)

    half, full = measured[(135, 1)], measured[(270, 1)]
    # "didn't quite cut the query time in half": between 50% and ~65%.
    assert 0.50 < half / full < 0.68
    # Larger sizes keep scaling linearly (ratio ~2 for double size).
    assert measured[(540, 1)] / full == pytest.approx(2.0, rel=0.12)
    # Distributed runs scale linearly too.
    assert measured[(540, 3)] / measured[(270, 3)] == pytest.approx(2.0, rel=0.25)
