"""Overload experiment — open-loop heavy traffic with and without QoS.

The paper measures a lightly loaded prototype (one query script at a
time); a served deployment instead faces open-loop arrivals that do not
slow down when the service does.  This experiment drives the dense §5
workload (Figure 4's 5%-local pointer class) at multiples of the
cluster's measured capacity and compares an unprotected run against one
with the full QoS stack — per-tenant token-bucket admission, high/low
watermark backpressure, weighted-fair drain and batch-class shedding.

The claims under test (tracked in ``BENCH_overload.json``):

* with QoS, interactive p99 stays bounded at every overload multiple
  (the unprotected run's p99 grows with the backlog);
* batch traffic degrades *gracefully*: bounced at admission or shed
  with ``partial_reason == "shed"``, never wedged;
* shedding is credit-exact — ``credit_deficit == 0`` for every query
  that completes during overload, so termination detection never
  breaks under load.

Arrivals are scheduled on the simulator's virtual clock (open loop:
arrival times are fixed before the first query runs), seeded, and the
simulator is deterministic, so the figures are exactly reproducible.
"""

import bisect
import json
import math
import pathlib
import random

from repro.api import credit_deficit
from repro.errors import Overloaded
from repro.metrics.registry import SLO_BUCKETS
from repro.net.batching import BatchConfig
from repro.qos import QoSConfig
from repro.workload import pointer_key_for, query_script

from .conftest import N_QUERIES, SPEC, make_cluster, report, run_script

#: Figure 4's leftmost locality class (densest cross-site traffic).
P_LOCAL = 0.05

#: Open-loop arrival rate as a multiple of measured capacity.
MULTIPLES = (2, 4, 10)

#: Arrivals per overload run (per multiple, per configuration).
N_ARRIVALS = max(2 * N_QUERIES, 6)

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_overload.json"


def p99(values):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)]


def slo_bucket_index(value):
    """Which SLO histogram bucket a latency falls in (past-the-end =
    overflow) — the resolution at which telemetry and ad-hoc measurement
    can be expected to agree."""
    return bisect.bisect_left(SLO_BUCKETS, value)


def slo_agreement(slo_p99_s, adhoc_node_p99_s):
    """Telemetry vs ad-hoc: the histogram quantile is a bucket upper
    bound, and the two p99 order statistics may straddle a bucket edge,
    so agreement means landing in the same or an adjacent bucket."""
    if slo_p99_s is None or adhoc_node_p99_s is None:
        return slo_p99_s is None and adhoc_node_p99_s is None
    return abs(slo_bucket_index(slo_p99_s) - slo_bucket_index(adhoc_node_p99_s)) <= 1


def estimate_capacity(paper_graph):
    """Closed-loop calibration: mean response time of the dense workload
    with one query in flight; capacity is its reciprocal."""
    cluster, workload = make_cluster(3, paper_graph)
    series = run_script(cluster, workload, pointer_key_for(P_LOCAL), "Rand10p")
    return 1.0 / series.mean, series.mean


def overload_qos(capacity_qps):
    """The protection stack under test, sized against measured capacity:
    each tenant is admitted at 3/4 of what the whole cluster can serve
    (short bursts allowed), sites signal pressure early, and batch-class
    work sheds when a site's queue passes the shed watermark."""
    return QoSConfig(
        rate_limit_qps=0.75 * capacity_qps,
        rate_burst=2,
        high_watermark=8,
        low_watermark=4,
        shed_watermark=16,
    )


def run_open_loop(multiple, paper_graph, capacity_qps, qos):
    # Both configurations batch sends (max_batch=8 is the ablation's
    # sweet spot); with QoS on, pressured destinations defer the size
    # flush by pressure_batch_factor on top of it.
    cluster, workload = make_cluster(
        3, paper_graph, qos=qos, batching=BatchConfig(max_batch=8)
    )
    # QoS benchmarks read their p99s from telemetry: completion stamps
    # per-tenant/per-priority SLO histograms into this registry.
    registry = cluster.enable_metrics()
    rng = random.Random(1000 + multiple)
    queries = list(
        query_script(
            pointer_key_for(P_LOCAL), "Rand10p", count=N_ARRIVALS, seed=11, spec=SPEC
        )
    )
    submitted = []
    bounced = {"interactive": 0, "batch": 0}

    def arrive(query, priority):
        try:
            qid = cluster.submit(
                query, [workload.root], priority=priority, client=priority
            )
        except Overloaded:
            bounced[priority] += 1
        else:
            submitted.append((qid, priority))

    t = 0.0
    for i, query in enumerate(queries):
        t += rng.expovariate(multiple * capacity_qps)
        priority = "interactive" if i % 2 == 0 else "batch"
        cluster.sim.schedule_at(t, lambda q=query, p=priority: arrive(q, p))
    cluster.run()

    times = {"interactive": [], "batch": []}
    node_times = {"interactive": [], "batch": []}
    shed_partials = 0
    credit_ok = True
    for qid, priority in submitted:
        outcome = cluster.outcome(qid)
        assert outcome is not None, f"open-loop query {qid} never completed"
        times[priority].append(outcome.response_time)
        # The SLO histograms measure submit→complete on the originator's
        # clock; strip the client link so the ad-hoc numbers measure the
        # same interval for the telemetry comparison.
        node_times[priority].append(outcome.completed_at - outcome.submitted_at)
        if outcome.result.partial:
            assert outcome.partial_reason == "shed"
            shed_partials += 1
        deficit = credit_deficit(cluster.nodes, qid)
        if deficit is not None and deficit != 0:
            credit_ok = False
    stats = cluster.total_stats()
    slo = {}
    for cls in ("interactive", "batch"):
        # Without QoS the node leaves every query at the default service
        # class, so the histograms carry priority="interactive" for both
        # tenants; the tenant label still separates the series.
        effective_priority = cls if qos is not None else "interactive"
        slo_p99_s = registry.quantile(
            "slo.complete_s", 0.99, tenant=cls, priority=effective_priority
        )
        adhoc = p99(node_times[cls]) if node_times[cls] else None
        slo[cls] = {
            "slo_p99_s": slo_p99_s,
            "adhoc_node_p99_s": adhoc,
            "agrees": slo_agreement(slo_p99_s, adhoc),
        }
    return {
        "slo": slo,
        "served": {cls: len(vals) for cls, vals in times.items()},
        "bounced": dict(bounced),
        "shed_partials": shed_partials,
        "work_shed_items": stats.work_shed,
        "backpressure_transitions": stats.backpressure_transitions,
        "sends_throttled": stats.sends_throttled,
        "credit_ok": credit_ok,
        "interactive_p99_s": p99(times["interactive"]) if times["interactive"] else None,
        "batch_p99_s": p99(times["batch"]) if times["batch"] else None,
        "interactive_mean_s": (
            sum(times["interactive"]) / len(times["interactive"])
            if times["interactive"]
            else None
        ),
        "batch_mean_s": (
            sum(times["batch"]) / len(times["batch"]) if times["batch"] else None
        ),
    }


def test_overload_sweep(benchmark, paper_graph):
    def experiment():
        capacity_qps, base_mean = estimate_capacity(paper_graph)
        rows = []
        for multiple in MULTIPLES:
            rows.append(
                {
                    "multiple": multiple,
                    "unprotected": run_open_loop(multiple, paper_graph, capacity_qps, None),
                    "qos": run_open_loop(
                        multiple, paper_graph, capacity_qps, overload_qos(capacity_qps)
                    ),
                }
            )
        return {"capacity_qps": capacity_qps, "closed_loop_mean_s": base_mean, "rows": rows}

    data = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = data["rows"]

    report(
        benchmark,
        f"Open-loop overload: P(local)={P_LOCAL}, {N_ARRIVALS} arrivals per run",
        [
            {
                "multiple": r["multiple"],
                "raw_inter_p99_s": r["unprotected"]["interactive_p99_s"],
                "qos_inter_p99_s": r["qos"]["interactive_p99_s"],
                "qos_batch_p99_s": r["qos"]["batch_p99_s"],
                "bounced": sum(r["qos"]["bounced"].values()),
                "shed": r["qos"]["shed_partials"],
            }
            for r in rows
        ],
        capacity_qps=data["capacity_qps"],
    )

    payload = {
        "experiment": "open_loop_overload",
        "workload": {"p_local": P_LOCAL, "search_type": "Rand10p", "machines": 3},
        "n_arrivals": N_ARRIVALS,
        "capacity_qps": data["capacity_qps"],
        "closed_loop_mean_s": data["closed_loop_mean_s"],
        "qos_config": {
            "rate_limit_x_capacity": 0.75,
            "rate_burst": 2,
            "high_watermark": 8,
            "low_watermark": 4,
            "shed_watermark": 16,
        },
        "multiples": rows,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    base_mean = data["closed_loop_mean_s"]
    for row in rows:
        # Telemetry and ad-hoc measurement must tell the same story: the
        # p99 read from the SLO histograms agrees with the order-statistic
        # p99 over the outcomes, to histogram-bucket resolution, for every
        # configuration and service class that served traffic.
        for config_key in ("unprotected", "qos"):
            for cls, comparison in row[config_key]["slo"].items():
                assert comparison["agrees"], (config_key, cls, comparison)
        qos_run = row["qos"]
        # Termination detection survives overload exactly.
        assert qos_run["credit_ok"]
        # Admission control visibly engages at every overload multiple.
        assert sum(qos_run["bounced"].values()) > 0
        # Interactive latency stays bounded: within an order of magnitude
        # of the unloaded closed-loop mean, at every multiple.
        assert qos_run["interactive_p99_s"] is not None
        assert qos_run["interactive_p99_s"] <= 10 * base_mean

    # The unprotected run is why QoS exists: at the top multiple its
    # interactive p99 must exceed the protected run's (the backlog grows
    # with every arrival the admission control would have bounced).
    top = rows[-1]
    assert (
        top["unprotected"]["interactive_p99_s"] > top["qos"]["interactive_p99_s"]
    )
