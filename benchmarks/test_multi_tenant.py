"""A7 — multi-tenant service ablation (extension).

Paper §1: "HyperFile represents a shared resource so it is important to
offload as much work as possible."  The prototype's client ran one query
at a time; a shared back-end serves many applications concurrently.  We
measure how mean response time degrades as N identical tree-closure
queries run simultaneously against the same 3 sites — perfect sharing
would scale latency by the load factor (CPU-bound sites), and the
round-robin scheduler should keep the spread between the luckiest and
unluckiest query small (fairness).
"""

import pytest

from repro.workload import closure_query

from .conftest import make_cluster, report


def test_multi_tenant(benchmark, paper_graph):
    def experiment():
        measured = {}
        for load in (1, 2, 4, 8):
            cluster, workload = make_cluster(3, paper_graph)
            qids = [
                cluster.submit(closure_query("Tree", "Rand10p", 1 + (i % 10)), [workload.root])
                for i in range(load)
            ]
            cluster.run()
            times = [cluster.outcome(q).response_time for q in qids]
            measured[load] = times
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    base = sum(measured[1]) / len(measured[1])
    rows = [
        {
            "concurrent_queries": load,
            "mean_rt_s": sum(times) / len(times),
            "max_rt_s": max(times),
            "slowdown_vs_alone": (sum(times) / len(times)) / base,
            "fairness_spread": max(times) / min(times),
        }
        for load, times in measured.items()
    ]
    report(benchmark, "A7: concurrent queries on a 3-site service", rows)

    # Latency grows with load (shared CPUs)...
    means = [row["mean_rt_s"] for row in rows]
    assert means == sorted(means)
    # ...roughly proportionally (no super-linear interference)...
    assert rows[-1]["slowdown_vs_alone"] < 8 * 1.4
    # ...and the round-robin scheduler keeps queries within ~2x of each
    # other even at 8-way load.
    assert rows[-1]["fairness_spread"] < 2.0
