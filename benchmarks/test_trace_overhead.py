"""Span-shipping overhead: what does observability cost on a real wire?

The zero-observer-effect tests prove tracing changes no *result* — same
oids, same message counts — but spans still ride inside envelopes and,
in process mode, get JSON-encoded and shipped over the control channel.
This bench puts a number on that: throughput (queries/s) of the dense
closure workload on the asyncio transport, untraced vs fully observed
(tracer attached + metrics enabled), inline and with one OS process per
site.  Tracked in ``BENCH_trace_overhead.json``; the table lives in
EXPERIMENTS.md.
"""

import json
import pathlib
import time

from repro.config import ClusterConfig
from repro.core.program import compile_query
from repro.net.asyncio_cluster import AsyncCluster
from repro.tracing import QueryTracer
from repro.workload import WorkloadSpec, build_graph, closure_query, materialize

from .conftest import report

SPEC = WorkloadSpec(n_objects=90)
GRAPH = build_graph(n=90)
PROGRAM = compile_query(closure_query("Tree", "Rand10p", 5))

#: Timed queries per repeat (after warmup); best-of-``N_REPEATS`` wins.
N_TIMED = 15
N_REPEATS = 3

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_trace_overhead.json"


def measure(processes, traced, n=N_TIMED, repeats=N_REPEATS):
    """Queries/s over ``n`` back-to-back closure queries.

    Wall-clock single-shot timings on a shared host are noisy enough to
    flip the comparison's sign run to run, so this takes the classic
    best-of-``repeats`` elapsed time: external interference only ever
    slows a repeat down, so the minimum is the least-contaminated
    estimate of what the transport actually costs.
    """
    config = ClusterConfig(processes=True) if processes else None
    cluster = AsyncCluster(3, config=config)
    try:
        workload = materialize(
            SPEC, [cluster.store(s) for s in cluster.sites], graph=GRAPH
        )
        tracer = None
        if traced:
            tracer = QueryTracer(capacity=500_000)
            cluster.attach_tracer(tracer)
            cluster.enable_metrics()
        baseline = cluster.run_query(PROGRAM, [workload.root], timeout_s=60.0)
        assert len(baseline.result.oids) > 0
        for _ in range(2):  # warm caches, sockets, and (spawned) children
            cluster.run_query(PROGRAM, [workload.root], timeout_s=60.0)
        elapsed = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(n):
                outcome = cluster.run_query(PROGRAM, [workload.root], timeout_s=60.0)
                assert outcome.result.oid_keys() == baseline.result.oid_keys()
            elapsed = min(elapsed, time.perf_counter() - t0)
        if tracer is not None:
            # The shipped spans must actually be here — an "overhead"
            # number for a tracer that silently dropped its events would
            # flatter the wrong thing.
            assert {e.site for e in tracer.events} >= set(cluster.sites)
        total_queries = 3 + repeats * n  # baseline + warmup + timed
        return {
            "qps": n / elapsed,
            "mean_ms": 1000.0 * elapsed / n,
            "trace_events": (
                len(tracer.events) if tracer is not None else 0
            ),
            "events_per_query": (
                len(tracer.events) // total_queries if tracer is not None else 0
            ),
        }
    finally:
        cluster.close()


def test_span_shipping_overhead(benchmark):
    def experiment():
        rows = []
        for processes in (False, True):
            untraced = measure(processes, traced=False)
            traced = measure(processes, traced=True)
            rows.append(
                {
                    "mode": "async+processes" if processes else "async",
                    "untraced_qps": round(untraced["qps"], 1),
                    "traced_qps": round(traced["qps"], 1),
                    "untraced_mean_ms": round(untraced["mean_ms"], 2),
                    "traced_mean_ms": round(traced["mean_ms"], 2),
                    "overhead_pct": round(
                        100.0 * (untraced["qps"] / traced["qps"] - 1.0), 1
                    ),
                    "events_per_query": traced["events_per_query"],
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report(
        benchmark,
        f"Span-shipping overhead: {SPEC.n_objects} objects, {N_TIMED} timed queries",
        rows,
    )

    OUT_PATH.write_text(
        json.dumps(
            {
                "experiment": "span_shipping_overhead",
                "workload": {
                    "n_objects": SPEC.n_objects,
                    "query": "Tree/Rand10p closure",
                    "machines": 3,
                },
                "n_timed": N_TIMED,
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )

    # Wall-clock timings on shared CI hardware are noisy; the claim under
    # test is only that full observability is not catastrophic — traced
    # throughput stays within 3x of untraced on both modes.
    for row in rows:
        assert row["traced_qps"] > row["untraced_qps"] / 3.0, row
        assert row["events_per_query"] > 0, row
