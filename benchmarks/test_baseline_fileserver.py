"""A5 — HyperFile vs the file-server interface (paper §1, §5).

    "Performing similar queries in a distributed file system would
    require searching entire files; this in effect results in sending
    all data to a central site. ... Our messages send only the query
    (about 40 bytes) versus potentially huge messages required to send
    a complete file."

We run the same closure query three ways — HyperFile distributed,
HyperFile single-site, and a caching file-server client that must fetch
every object it inspects — and compare both response time and bytes
moved.
"""

import pytest

from repro.baselines.fileserver import FileServerBaseline
from repro.core.program import compile_query
from repro.storage.memstore import MemStore
from repro.workload import closure_query, materialize

from .conftest import SPEC, make_cluster, report, run_script


def test_fileserver_baseline(benchmark, paper_graph):
    program = compile_query(closure_query("Tree", "Rand10p", 5))

    def experiment():
        # HyperFile, distributed over 3 machines.
        cluster, workload = make_cluster(3, paper_graph)
        hyperfile = run_script(cluster, workload, "Tree", "Rand10p")
        hf_bytes = cluster.total_stats().bytes_sent

        # File-server client fetching whole objects.
        store = MemStore("solo")
        w1 = materialize(SPEC, [store], graph=paper_graph)
        fs = FileServerBaseline([store]).run(program, [w1.root])
        return hyperfile, hf_bytes, fs

    hyperfile, hf_bytes, fs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "system": "HyperFile (3 machines)",
            "mean_rt_s": hyperfile.mean,
            "bytes_moved": hf_bytes // max(hyperfile.count, 1),
        },
        {
            "system": "file server (whole-object fetch)",
            "mean_rt_s": fs.response_time_s,
            "bytes_moved": fs.bytes_transferred,
        },
    ]
    report(benchmark, "A5: send-the-query vs send-the-data", rows)

    # The paper's headline trade-off: HyperFile moves kilobytes of query
    # text; the file interface moves the database.
    assert fs.response_time_s > 3 * hyperfile.mean
    assert fs.bytes_transferred > 20 * (hf_bytes / hyperfile.count)
