"""E1 — the paper's "basic times" (§5).

    "Local processing of a single object took approximately 8 ms, plus
    another 20 ms to add the object to the result set (if necessary).
    The added time to process a remote pointer was roughly 50 ms ...
    About 50 ms was also required for each remote result message."

This bench verifies the simulator reproduces those constants as
*emergent* measurements (by regression over configurations), not just as
configuration values, and uses pytest-benchmark to measure the real
(host) per-object processing speed of the engine for context.
"""

import pytest

from repro.cluster import SimCluster
from repro.core import keyword_tuple, pointer_tuple
from repro.engine.local import run_local
from repro.sim.costs import PAPER_COSTS
from repro.storage.memstore import MemStore

from .conftest import report


def _single_site_time(n_objects: int, selective: bool) -> tuple:
    """Response time of a flat scan over n objects at one site."""
    cluster = SimCluster(1)
    store = cluster.store("site0")
    oids = [
        store.create([keyword_tuple("Hit" if selective else "Miss")]).oid
        for _ in range(n_objects)
    ]
    outcome = cluster.run_query('S (Keyword, "Hit", ?) -> T', oids)
    return outcome.response_time, len(outcome.result.oids)


def test_basic_costs(benchmark):
    # Derive the per-object and per-result costs by differencing.
    t100_miss, _ = _single_site_time(100, selective=False)
    t200_miss, _ = _single_site_time(200, selective=False)
    per_object = (t200_miss - t100_miss) / 100

    t100_hit, _ = _single_site_time(100, selective=True)
    per_result = (t100_hit - t100_miss) / 100

    # Remote pointer: a 2-site chain hop a(site0) -> b(site1).
    cluster = SimCluster(2)
    s0, s1 = cluster.store("site0"), cluster.store("site1")
    b = s1.create([keyword_tuple("Miss")])
    s1.replace(s1.get(b.oid).with_tuple(pointer_tuple("Ref", b.oid)))
    a = s0.create([pointer_tuple("Ref", b.oid)])
    remote = cluster.run_query(
        'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"Hit",?) -> T', [a.oid]
    )
    local_equiv = 2 * per_object  # the same two objects, no hop
    remote_pointer_cost = remote.response_time - local_equiv

    rows = [
        {"quantity": "process one object", "paper_ms": 8, "measured_ms": per_object * 1000},
        {"quantity": "insert one result", "paper_ms": 20, "measured_ms": per_result * 1000},
        {
            # The measured quantity is one remote dereference hop PLUS the
            # remote site's result-return message — the paper prices each
            # at ~50 ms, so the serial round trip is ~100 ms.
            "quantity": "remote hop + result message",
            "paper_ms": 50 + 50,
            "measured_ms": remote_pointer_cost * 1000,
        },
    ]

    assert per_object * 1000 == pytest.approx(8, abs=0.5)
    assert per_result * 1000 == pytest.approx(20, abs=1)
    assert remote_pointer_cost * 1000 == pytest.approx(100, rel=0.25)

    # Host-side speed of the core engine (real time, for context).
    store = MemStore("solo")
    oids = [store.create([keyword_tuple("Hit")]).oid for _ in range(500)]
    from repro.core.parser import parse_query
    from repro.core.program import compile_query

    program = compile_query(parse_query('S (Keyword, "Hit", ?) -> T'))
    result = benchmark(lambda: run_local(program, oids, store.get))
    assert len(result.oids) == 500

    report(benchmark, "E1: basic times (paper vs measured)", rows)
