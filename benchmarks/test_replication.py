"""Replication overhead/benefit: k=2 vs the replica-free build on the
Figure-4 dense (remote-heavy) workload.

Replication's write path is administrative (synchronous write-through,
outside the query cost model), so the interesting question is what the
*read* path pays for k=2 on a healthy cluster.  The answer is negative
overhead: read anycast prefers a local replica, so a share of the
remote dereferences of a dense workload become local admissions and the
dense configurations get *faster* — the denser the workload (lower
P(local)), the bigger the win.  EXPERIMENTS.md records the measured row.
"""

from repro.replication import ReplicationConfig
from repro.workload import pointer_key_for

from .conftest import make_cluster, report, run_script

#: The two densest Figure-4 locality classes — where remote pointers
#: dominate and replica-local serves have the most hops to save.
DENSE_CLASSES = (0.05, 0.20)


def test_replication_read_overhead(benchmark, paper_graph):
    def experiment():
        measured = {}
        for p in DENSE_CLASSES:
            for k in (1, 2):
                cluster, workload = make_cluster(
                    3, paper_graph, replication=ReplicationConfig(k=k)
                )
                cluster.replicate_all()
                series = run_script(cluster, workload, pointer_key_for(p), "Rand10p")
                measured[(p, k)] = series
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "p_local": p,
            "k1_s": measured[(p, 1)].mean,
            "k2_s": measured[(p, 2)].mean,
            "k2_vs_k1": measured[(p, 2)].mean / measured[(p, 1)].mean,
        }
        for p in DENSE_CLASSES
    ]
    report(benchmark, "replication: k=2 vs k=1 on the dense Figure-4 workload", rows)

    for p in DENSE_CLASSES:
        # Healthy-cluster reads must never regress: local-replica anycast
        # can only remove remote hops, not add them.
        assert measured[(p, 2)].mean <= measured[(p, 1)].mean * 1.01, p
    # And on the densest class the locality win must be material.
    assert measured[(0.05, 2)].mean < measured[(0.05, 1)].mean * 0.98
