"""A1 — mark-table design ablations.

Two design decisions around the mark table are quantified here:

1. **Local vs. global tables** (paper §3.2): "This method does allow
   messages requesting that already processed objects be processed.
   Eliminating the extra messages would require a global mark table.
   We believe the cost in communications and complexity of such a global
   table would outweigh the cost of the extra messages."  We measure the
   *duplicate* dereference messages the local-table design actually pays
   (requests whose work item the receiving site's table suppresses) —
   the quantity a global table would save — across pointer localities.

2. **Position-only vs. iteration-aware marks** (this reproduction's
   confluence fix, DESIGN.md finding 3): on the paper's closure
   workload, both granularities must do identical work — the fix is
   free where the paper's experiments live.
"""

import pytest

from repro.workload import pointer_key_for

from .conftest import make_cluster, report, run_script


def test_marktable_ablations(benchmark, paper_graph):
    def experiment():
        rows = []
        for p in (0.05, 0.50, 0.95):
            cluster, workload = make_cluster(3, paper_graph)
            series = run_script(cluster, workload, pointer_key_for(p), "Rand10p")
            stats = cluster.total_stats()
            deref_msgs = stats.messages_sent.get("DerefRequest", 0)
            rows.append(
                {
                    "p_local": p,
                    "deref_messages": deref_msgs,
                    "duplicate_requests": stats.duplicate_requests,
                    "wasted_fraction": stats.duplicate_requests / deref_msgs if deref_msgs else 0.0,
                    "mean_rt_s": series.mean,
                }
            )
        # Granularity comparison on the closure workload.
        gran = {}
        for granularity in ("position", "iteration"):
            cluster, workload = make_cluster(3, paper_graph, mark_granularity=granularity)
            series = run_script(cluster, workload, "Tree", "Rand10p")
            gran[granularity] = (series.mean, cluster.total_stats().objects_processed)
        return rows, gran

    rows, gran = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(benchmark, "A1a: duplicate messages a global mark table would save", rows)

    gran_rows = [
        {"granularity": g, "mean_rt_s": v[0], "objects_processed": v[1]}
        for g, v in gran.items()
    ]
    report(benchmark, "A1b: mark granularity on the closure workload", gran_rows)

    # The duplicate fraction is the exact saving a global table could
    # offer — a minority of messages at every locality, while a global
    # table would add coordination to every mark: the paper's design call
    # holds.
    for row in rows:
        assert row["wasted_fraction"] < 0.8

    # The confluence fix costs nothing on closure queries.
    assert gran["position"][0] == pytest.approx(gran["iteration"][0], rel=0.02)
    assert gran["position"][1] == gran["iteration"][1]
