"""Async transport throughput at saturation vs threaded and sockets.

The asyncio transport's pitch is cheap concurrency: one event loop
multiplexing every site and every inter-site link, persistent
connections, and a zero-copy framed codec (``preframe`` on the send
side, ``memoryview`` reassembly on the receive side) instead of one
thread per connection re-serialising per hop.  This bench saturates
each wall-clock transport with a window of concurrent closure queries
and reports queries/sec plus client-side p50/p99 latency.

The numbers land in ``BENCH_async.json`` at the repo root; the CI
``async-smoke`` job regenerates and uploads them.  The tracked claim:
**async throughput >= sockets throughput** — the event loop must never
be slower than thread-per-connection on the same frames.

Environment knobs:

* ``REPRO_BENCH_QUERIES`` — queries per transport (default 20).
* ``REPRO_BENCH_WINDOW``  — concurrent queries in flight (default 8).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.api import make_cluster
from repro.core.program import compile_query
from repro.workload import WorkloadSpec, build_graph, closure_query, materialize

from .conftest import report

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "20"))
WINDOW = int(os.environ.get("REPRO_BENCH_WINDOW", "8"))
MACHINES = 3
TRANSPORTS = ("threaded", "sockets", "async")

SPEC = WorkloadSpec(n_objects=90)
GRAPH = build_graph(n=90)
PROGRAM = compile_query(closure_query("Tree", "Rand10p", 5))

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_async.json"


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(int(fraction * (len(sorted_values) - 1) + 0.5), len(sorted_values) - 1)
    return sorted_values[index]


def saturate(transport: str, n_queries: int = N_QUERIES, window: int = WINDOW) -> dict:
    """Run ``n_queries`` closure queries with ``window`` always in flight."""
    cluster = make_cluster(transport, MACHINES)
    try:
        workload = materialize(SPEC, [cluster.store(s) for s in cluster.sites], graph=GRAPH)
        # Warm-up: populate caches/connections outside the timed region.
        cluster.run_query(PROGRAM, [workload.root], timeout_s=60.0)

        latencies = []
        inflight = []
        submitted = 0
        started = time.monotonic()
        while submitted < n_queries or inflight:
            while submitted < n_queries and len(inflight) < window:
                inflight.append(cluster.submit(PROGRAM, [workload.root]))
                submitted += 1
            outcome = cluster.wait(inflight.pop(0), timeout_s=120.0)
            assert len(outcome.result.oids) > 0
            latencies.append(outcome.response_time)
        elapsed = time.monotonic() - started

        latencies.sort()
        return {
            "queries": n_queries,
            "window": window,
            "elapsed_s": elapsed,
            "qps": n_queries / elapsed if elapsed > 0 else float("inf"),
            "p50_s": percentile(latencies, 0.50),
            "p99_s": percentile(latencies, 0.99),
            "bytes_on_wire": (
                cluster.bytes_on_the_wire() if hasattr(cluster, "bytes_on_the_wire") else None
            ),
        }
    finally:
        cluster.close()


@pytest.mark.benchmark(group="async-throughput")
def test_async_throughput_vs_other_transports(benchmark):
    def experiment():
        return {t: saturate(t) for t in TRANSPORTS}

    rows_by_transport = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report(
        benchmark,
        f"Saturated closure queries: {MACHINES} machines, window={WINDOW}, n={N_QUERIES}",
        [
            {
                "transport": t,
                "qps": round(r["qps"], 1),
                "p50_ms": round(r["p50_s"] * 1e3, 2),
                "p99_ms": round(r["p99_s"] * 1e3, 2),
            }
            for t, r in rows_by_transport.items()
        ],
    )

    payload = {
        "experiment": "async_transport_saturation",
        "workload": {
            "machines": MACHINES,
            "n_objects": SPEC.n_objects,
            "query": "closure Tree/Rand10p depth 5",
        },
        "n_queries": N_QUERIES,
        "window": WINDOW,
        "transports": rows_by_transport,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # The tracked claim: the event loop keeps up with (or beats) the
    # thread-per-connection transport on identical frames.
    assert rows_by_transport["async"]["qps"] >= rows_by_transport["sockets"]["qps"], (
        "async transport slower than sockets at saturation: "
        f"{rows_by_transport['async']['qps']:.1f} < {rows_by_transport['sockets']['qps']:.1f} qps"
    )
