"""E3/E4 — the two distribution extremes (§5).

    "In the worst case delay scenario (following chain pointers) in the
    distributed case (on either three or nine machines) the query took
    15 seconds. ... When we instead followed tree pointers a query
    averaged 1.5 seconds using three machines, and 1 second using nine
    machines."
"""

import pytest

from .conftest import make_cluster, report, run_script

PAPER = {
    ("Chain", 1): 2.7,
    ("Chain", 3): 15.0,
    ("Chain", 9): 15.0,
    ("Tree", 1): 2.7,
    ("Tree", 3): 1.5,
    ("Tree", 9): 1.0,
}


def test_chain_and_tree_extremes(benchmark, paper_graph):
    def experiment():
        measured = {}
        for machines in (1, 3, 9):
            cluster, workload = make_cluster(machines, paper_graph)
            for key in ("Chain", "Tree"):
                measured[(key, machines)] = run_script(cluster, workload, key, "Rand10p")
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "pointer": key,
            "machines": machines,
            "paper_s": PAPER[(key, machines)],
            "measured_s": measured[(key, machines)].mean,
            "stdev_s": measured[(key, machines)].stdev,
        }
        for key in ("Chain", "Tree")
        for machines in (1, 3, 9)
    ]
    report(benchmark, "E3/E4: chain (max delay) vs tree (max parallelism)", rows)

    chain1 = measured[("Chain", 1)].mean
    chain3 = measured[("Chain", 3)].mean
    chain9 = measured[("Chain", 9)].mean
    tree1 = measured[("Tree", 1)].mean
    tree3 = measured[("Tree", 3)].mean
    tree9 = measured[("Tree", 9)].mean

    # Shape assertions (paper's qualitative findings):
    # 1. the distributed chain pays every hop: ~5.5x the single site.
    assert chain3 > 4 * chain1
    # 2. the chain gains nothing from more machines.
    assert chain9 == pytest.approx(chain3, rel=0.15)
    # 3. the tree gains from parallelism: distributed beats single site...
    assert tree3 < tree1
    # 4. ...and nine machines do at least as well as three.
    assert tree9 <= tree3 * 1.05
