"""Shared infrastructure for the experiment benchmarks.

Each benchmark file regenerates one table or figure from paper §5 (see
DESIGN.md's per-experiment index).  The paper's methodology is followed
throughout: for each configuration we run a script of ``N_QUERIES``
comparable queries (same pointers, same search-key *type*, randomly
varied key *value*) and report the mean response time measured at the
client — virtual wall-clock from the simulator's cost model, which is
calibrated to the paper's measured constants (8/20/50/50 ms).

Environment knobs:

* ``REPRO_BENCH_QUERIES`` — queries per configuration (default 20; the
  paper used 100 — set it for full fidelity, runtime scales linearly).
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import SimCluster
from repro.metrics.collect import Series
from repro.workload import (
    WorkloadSpec,
    build_graph,
    generate_into_cluster,
    query_script,
)

#: Queries per configuration ("we timed 100 queries ...").
N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "20"))

#: The paper's database: 270 objects.
SPEC = WorkloadSpec()


@pytest.fixture(scope="session")
def paper_graph():
    """One pointer graph shared by every machine count (as in the paper)."""
    return build_graph(n=SPEC.n_objects)


def make_cluster(machines: int, paper_graph, **kwargs):
    """A loaded cluster of the given size over the shared graph."""
    cluster = SimCluster(machines, **kwargs)
    workload = generate_into_cluster(cluster, SPEC, paper_graph)
    return cluster, workload


def run_script(cluster, workload, pointer_key: str, search_type: str,
               n_queries: int = None, seed: int = 7) -> Series:
    """The paper's client: submit a script of queries, time each one."""
    n = n_queries if n_queries is not None else N_QUERIES
    series = Series(f"{pointer_key}/{search_type}")
    for query in query_script(pointer_key, search_type, count=n, seed=seed, spec=SPEC):
        outcome = cluster.run_query(query, [workload.root])
        series.add(outcome.response_time)
    return series


def measure(machines: int, paper_graph, pointer_key: str, search_type: str,
            n_queries: int = None, **cluster_kwargs) -> Series:
    """Convenience: fresh cluster + script, returning the timing series."""
    cluster, workload = make_cluster(machines, paper_graph, **cluster_kwargs)
    return run_script(cluster, workload, pointer_key, search_type, n_queries)


def report(benchmark, title: str, rows, columns=None, **extra):
    """Print a paper-style table and attach it to the benchmark record."""
    from repro.metrics.report import render_table

    text = render_table(rows, columns=columns, title=f"== {title} ==")
    print()
    print(text)
    benchmark.extra_info["table"] = rows
    for key, value in extra.items():
        benchmark.extra_info[key] = value
