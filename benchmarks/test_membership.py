"""Membership experiment — serving through a join + rebalance.

The paper's prototype had a fixed site set; the membership plane lets a
site join (or leave, or die) while queries are being served.  This
experiment measures what that costs: an open-loop query stream runs at
half the cluster's measured capacity, a fourth site joins halfway
through the horizon, and the stream's throughput and p99 response time
are reported for three phases — *before* the join, *during* it (queries
whose lifetime spans the view change and the settle window after it),
and *after* the cluster has settled on the grown ring.

The claims under test (tracked in ``BENCH_membership.json``):

* every query completes with the full (non-partial) result — the view
  change is invisible to correctness, before, during and after;
* termination stays credit-exact through the rebalance
  (``credit_deficit == 0`` for every query);
* the after-phase p99 stays within a small factor of the before-phase
  p99 — a join is a blip, not a regime change.

Arrivals are scheduled on the simulator's virtual clock (open loop,
fixed before the first query runs), seeded and deterministic, so the
figures are exactly reproducible.

Environment knobs: ``REPRO_BENCH_QUERIES`` scales the stream length
(arrivals = 6x queries-per-configuration, default 120).
"""

import json
import math
import pathlib
import random

from repro.api import credit_deficit
from repro.config import ClusterConfig
from repro.membership import MembershipConfig
from repro.replication import ReplicationConfig
from repro.workload import pointer_key_for, query_script

from .conftest import N_QUERIES, SPEC, make_cluster, report, run_script

#: Figure 4's leftmost locality class (densest cross-site traffic — the
#: placement change moves the most load).
P_LOCAL = 0.05

#: Open-loop arrivals across the whole horizon.
N_ARRIVALS = max(6 * N_QUERIES, 30)

#: Arrival rate as a fraction of measured closed-loop capacity: the
#: cluster is busy but not saturated, so p99 movement is attributable
#: to the rebalance, not to queueing collapse.
LOAD_FRACTION = 0.5

#: The settle window after the join, in closed-loop mean service times:
#: queries submitted inside it count as "during".
SETTLE_MEANS = 5.0

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_membership.json"


def p99(values):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)]


def phase_stats(rows, lo, hi):
    """Throughput and latency for queries submitted in [lo, hi)."""
    window = [r for r in rows if lo <= r["submitted_at"] < hi]
    times = [r["response_time"] for r in window]
    span = hi - lo
    return {
        "queries": len(window),
        "qps": (len(window) / span) if span > 0 else None,
        "p99_s": p99(times) if times else None,
        "mean_s": (sum(times) / len(times)) if times else None,
    }


def run_join_experiment(paper_graph, capacity_qps, base_mean):
    cluster, workload = make_cluster(
        3,
        paper_graph,
        config=ClusterConfig(
            replication=ReplicationConfig(k=2), membership=MembershipConfig()
        ),
    )
    cluster.replicate_all()

    rate = LOAD_FRACTION * capacity_qps
    rng = random.Random(4242)
    queries = list(
        query_script(
            pointer_key_for(P_LOCAL), "Rand10p", count=N_ARRIVALS, seed=13, spec=SPEC
        )
    )
    submitted = []

    def arrive(query):
        submitted.append(cluster.submit(query, [workload.root]))

    t = 0.0
    arrival_times = []
    for query in queries:
        t += rng.expovariate(rate)
        arrival_times.append(t)
        cluster.sim.schedule_at(t, lambda q=query: arrive(q))
    horizon = t
    t_join = horizon / 2.0
    cluster.sim.schedule_at(t_join, lambda: cluster.join_site("site3"))
    cluster.run()

    rows = []
    deficit_ok = True
    for qid in submitted:
        outcome = cluster.outcome(qid)
        assert outcome is not None, f"open-loop query {qid} never completed"
        assert not outcome.result.partial, f"{qid} went partial across the join"
        deficit = credit_deficit(cluster.nodes, qid)
        if deficit is not None and deficit != 0:
            deficit_ok = False
        rows.append(
            {
                "submitted_at": outcome.submitted_at,
                "response_time": outcome.response_time,
            }
        )

    settle = SETTLE_MEANS * base_mean
    phases = {
        "before": phase_stats(rows, 0.0, t_join),
        "during": phase_stats(rows, t_join, t_join + settle),
        "after": phase_stats(rows, t_join + settle, horizon),
    }
    joined_view = cluster.membership_view
    cluster.close()
    return {
        "phases": phases,
        "deficit_ok": deficit_ok,
        "t_join_s": t_join,
        "settle_window_s": settle,
        "horizon_s": horizon,
        "final_epoch": joined_view.epoch,
        "final_active": len(joined_view.active),
    }


def test_join_rebalance_under_load(benchmark, paper_graph):
    def experiment():
        cluster, workload = make_cluster(3, paper_graph)
        series = run_script(cluster, workload, pointer_key_for(P_LOCAL), "Rand10p")
        cluster.close()
        capacity_qps, base_mean = 1.0 / series.mean, series.mean
        data = run_join_experiment(paper_graph, capacity_qps, base_mean)
        data["capacity_qps"] = capacity_qps
        data["closed_loop_mean_s"] = base_mean
        return data

    data = benchmark.pedantic(experiment, rounds=1, iterations=1)
    phases = data["phases"]

    report(
        benchmark,
        f"Join + rebalance under load: P(local)={P_LOCAL}, {N_ARRIVALS} arrivals",
        [
            {"phase": name, **stats}
            for name, stats in phases.items()
        ],
        capacity_qps=data["capacity_qps"],
    )

    payload = {
        "experiment": "membership_join_rebalance",
        "workload": {"p_local": P_LOCAL, "search_type": "Rand10p", "machines": 3},
        "n_arrivals": N_ARRIVALS,
        "load_fraction": LOAD_FRACTION,
        **data,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert data["deficit_ok"], "a query crossed the join with missing credit"
    assert data["final_active"] == 4, "site3 never became active"
    before, after = phases["before"], phases["after"]
    assert before["queries"] > 0 and after["queries"] > 0
    # A join is a blip, not a regime change: once settled, the grown
    # cluster serves at least as predictably as the old one (generous
    # factor — the point is to catch a post-rebalance cliff, not noise).
    assert after["p99_s"] <= 3.0 * before["p99_s"], phases
