"""A3 — termination-detector ablation (paper §4).

The paper picks the weighted-messages algorithm as "particularly
appropriate to HyperFile": its credit rides on messages the query sends
anyway, so detection is free in message count.  The classic alternative,
Dijkstra–Scholten, acknowledges every work message.  We measure both
detectors' message overhead and response-time impact on the same
workloads.
"""

import pytest

from repro.workload import pointer_key_for

from .conftest import make_cluster, report, run_script


def test_termination_strategies(benchmark, paper_graph):
    def experiment():
        measured = {}
        for strategy in ("weighted", "dijkstra-scholten"):
            for pointer in ("Tree", pointer_key_for(0.50)):
                cluster, workload = make_cluster(3, paper_graph, termination=strategy)
                series = run_script(cluster, workload, pointer, "Rand10p")
                stats = cluster.total_stats()
                measured[(strategy, pointer)] = {
                    "rt": series.mean,
                    "work_msgs": stats.messages_sent.get("DerefRequest", 0)
                    + stats.messages_sent.get("ResultBatch", 0),
                    "control_msgs": stats.messages_sent.get("ControlMessage", 0),
                }
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "strategy": strategy,
            "pointer": pointer,
            "mean_rt_s": m["rt"],
            "work_messages": m["work_msgs"],
            "control_messages": m["control_msgs"],
            "overhead_pct": 100.0 * m["control_msgs"] / m["work_msgs"],
        }
        for (strategy, pointer), m in measured.items()
    ]
    report(benchmark, "A3: weighted credit vs Dijkstra-Scholten (3 machines)", rows)

    for pointer in ("Tree", pointer_key_for(0.50)):
        weighted = measured[("weighted", pointer)]
        ds = measured[("dijkstra-scholten", pointer)]
        # The weighted scheme adds zero control messages...
        assert weighted["control_msgs"] == 0
        # ...while Dijkstra-Scholten acks a large share of work messages...
        assert ds["control_msgs"] > 0
        # ...and is never faster.
        assert ds["rt"] >= weighted["rt"] * 0.999
