"""Batching ablation — remote-message coalescing on the §5 dense workload.

The paper's worst case (Figure 4, far left) is low pointer locality:
"the cases ... generate too much message traffic".  This experiment
reruns exactly that workload with the batching layer at increasing
thresholds and reports, per threshold: mean response time, remote work
messages per query (DerefRequest + BatchedQuery frames), total messages
and bytes on the wire, the flush-reason breakdown, and — from a traced
run — the critical-path split between waiting on messages and waiting
on CPU, which is where batching's win actually shows up.

All telemetry is read from the cluster's MetricsRegistry
(``enable_metrics`` / ``metrics_snapshot``) rather than ad-hoc NodeStats
field reads — the benchmarks consume the same surface the CLI and
operators do.

Acceptance (tracked in ``BENCH_batching.json`` at the repo root):

* threshold 1 — the subsystem disables itself; figures bit-identical to
  the unbatched reproduction;
* threshold >= 8 — at least a 2x reduction in remote work messages per
  query, with mean response time no worse than unbatched.
"""

import json
import pathlib

from repro.net.batching import BatchConfig
from repro.profiling import critical_path
from repro.tracing import QueryTracer
from repro.workload import pointer_key_for, query_script

from .conftest import N_QUERIES, SPEC, make_cluster, report, run_script

#: Figure 4's leftmost locality class: 5% local pointers — the densest
#: cross-site message traffic the paper measures.
P_LOCAL = 0.05

THRESHOLDS = (1, 2, 4, 8, 16, 32)

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batching.json"


def _sum_metrics(snapshot, name, **labels):
    """Sum a metric's value across instruments matching the given labels."""
    total = 0.0
    for metric in snapshot["metrics"]:
        if metric["name"] != name:
            continue
        if all(metric["labels"].get(k) == v for k, v in labels.items()):
            total += metric["value"]
    return total


def run_threshold(threshold, paper_graph):
    batching = None if threshold == 1 else BatchConfig(max_batch=threshold)
    cluster, workload = make_cluster(3, paper_graph, batching=batching)
    registry = cluster.enable_metrics()
    run_script(cluster, workload, pointer_key_for(P_LOCAL), "Rand10p")

    # Everything below reads the registry, not raw NodeStats.
    snapshot = cluster.metrics_snapshot()
    work_messages = _sum_metrics(
        snapshot, "node.messages_sent", kind="DerefRequest"
    ) + _sum_metrics(snapshot, "node.messages_sent", kind="BatchedQuery")
    response_hist = registry.histogram("cluster.response_time_s")
    batch_hist = registry.histogram("batching.batch_size_items")
    row = {
        "threshold": threshold,
        "mean_response_s": response_hist.mean,
        "work_messages_per_query": work_messages / N_QUERIES,
        "messages_per_query": cluster.network.messages_delivered / N_QUERIES,
        "bytes_per_query": cluster.network.bytes_delivered / N_QUERIES,
        "batched_items": int(_sum_metrics(snapshot, "node.batched_items")),
        "mean_batch_size": batch_hist.mean,
        "sends_suppressed": int(_sum_metrics(snapshot, "node.sends_suppressed")),
        "flushes": {
            reason: int(_sum_metrics(snapshot, f"node.batch_flushes_{reason}"))
            for reason in ("size", "drain", "timer", "idle")
        },
    }

    # One extra traced query: where does its response time actually go?
    tracer = QueryTracer()
    cluster.attach_tracer(tracer)
    query = next(iter(query_script(pointer_key_for(P_LOCAL), "Rand10p",
                                   count=1, seed=99, spec=SPEC)))
    outcome = cluster.run_query(query, [workload.root])
    path = critical_path(tracer, outcome.qid)
    row["critical_path"] = {
        "response_s": outcome.response_time,
        "duration_s": path.duration,
        "steps": len(path.steps),
        "message_hops": path.message_hops,
        "waiting_on_messages_s": sum(s.delta for s in path.steps if s.via == "message"),
        "waiting_on_cpu_s": sum(s.delta for s in path.steps if s.via == "cpu"),
    }
    return row


def test_batching_threshold_sweep(benchmark, paper_graph):
    def experiment():
        return [run_threshold(t, paper_graph) for t in THRESHOLDS]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    by_threshold = {row["threshold"]: row for row in rows}

    report(
        benchmark,
        f"Batching ablation: thresholds on the P(local)={P_LOCAL} workload",
        [
            {
                "threshold": r["threshold"],
                "mean_response_s": r["mean_response_s"],
                "work_msgs_per_query": r["work_messages_per_query"],
                "bytes_per_query": r["bytes_per_query"],
                "path_msg_wait_s": r["critical_path"]["waiting_on_messages_s"],
                "path_cpu_wait_s": r["critical_path"]["waiting_on_cpu_s"],
            }
            for r in rows
        ],
    )

    payload = {
        "experiment": "batching_threshold_sweep",
        "workload": {"p_local": P_LOCAL, "search_type": "Rand10p", "machines": 3},
        "n_queries": N_QUERIES,
        "thresholds": rows,
        "reduction_at_8": by_threshold[1]["work_messages_per_query"]
        / by_threshold[8]["work_messages_per_query"],
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    baseline = by_threshold[1]
    # threshold 1 disables the subsystem entirely.
    assert baseline["batched_items"] == 0

    for threshold in (8, 16, 32):
        row = by_threshold[threshold]
        # >= 2x fewer remote work messages per query...
        assert row["work_messages_per_query"] * 2 <= baseline["work_messages_per_query"]
        # ...and never at the price of response time.
        assert row["mean_response_s"] <= baseline["mean_response_s"]

    # Larger thresholds never send more work messages than smaller ones.
    per_query = [r["work_messages_per_query"] for r in rows]
    assert all(a >= b for a, b in zip(per_query, per_query[1:]))

    # The traced runs explain the win.  On this dense workload the
    # critical path is CPU-bound: the serial site CPUs spend most of the
    # path constructing/sending/ingesting hundreds of per-pointer
    # messages (cpu edges), not waiting on the wire (message edges).
    # Batching attacks exactly that term — fewer frames, amortised
    # headers — so the cpu-wait share must drop.  The path must also
    # account for the traced query's full response time (tick
    # tolerance: the completing step's cost is charged after the
    # complete event is stamped).
    for row in rows:
        cp = row["critical_path"]
        assert 0.0 <= cp["response_s"] - cp["duration_s"] <= 0.25
    assert (
        by_threshold[8]["critical_path"]["waiting_on_cpu_s"]
        <= baseline["critical_path"]["waiting_on_cpu_s"]
    )


def test_threshold_one_matches_unbatched_exactly(paper_graph):
    """The degenerate config must not merely be close — the message
    stream, byte counts and virtual timings are bit-identical."""
    plain_cluster, plain_workload = make_cluster(3, paper_graph)
    degen_cluster, degen_workload = make_cluster(
        3, paper_graph, batching=BatchConfig(max_batch=1)
    )
    plain = run_script(plain_cluster, plain_workload, pointer_key_for(P_LOCAL),
                       "Rand10p", n_queries=5)
    degen = run_script(degen_cluster, degen_workload, pointer_key_for(P_LOCAL),
                       "Rand10p", n_queries=5)
    assert plain.values == degen.values
    assert plain_cluster.network.messages_delivered == degen_cluster.network.messages_delivered
    assert plain_cluster.network.bytes_delivered == degen_cluster.network.bytes_delivered
