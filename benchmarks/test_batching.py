"""Batching ablation — remote-message coalescing on the §5 dense workload.

The paper's worst case (Figure 4, far left) is low pointer locality:
"the cases ... generate too much message traffic".  This experiment
reruns exactly that workload with the batching layer at increasing
thresholds and reports, per threshold: mean response time, remote work
messages per query (DerefRequest + BatchedQuery frames), total messages
and bytes on the wire, and the flush-reason breakdown.

Acceptance (tracked in ``BENCH_batching.json`` at the repo root):

* threshold 1 — the subsystem disables itself; figures bit-identical to
  the unbatched reproduction;
* threshold >= 8 — at least a 2x reduction in remote work messages per
  query, with mean response time no worse than unbatched.
"""

import json
import pathlib

from repro.net.batching import BatchConfig
from repro.workload import pointer_key_for

from .conftest import N_QUERIES, make_cluster, report, run_script

#: Figure 4's leftmost locality class: 5% local pointers — the densest
#: cross-site message traffic the paper measures.
P_LOCAL = 0.05

THRESHOLDS = (1, 2, 4, 8, 16, 32)

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batching.json"


def run_threshold(threshold, paper_graph):
    batching = None if threshold == 1 else BatchConfig(max_batch=threshold)
    cluster, workload = make_cluster(3, paper_graph, batching=batching)
    series = run_script(cluster, workload, pointer_key_for(P_LOCAL), "Rand10p")
    stats = cluster.total_stats()
    sent = stats.messages_sent
    work_messages = sent.get("DerefRequest", 0) + sent.get("BatchedQuery", 0)
    return {
        "threshold": threshold,
        "mean_response_s": series.mean,
        "work_messages_per_query": work_messages / N_QUERIES,
        "messages_per_query": cluster.network.messages_delivered / N_QUERIES,
        "bytes_per_query": cluster.network.bytes_delivered / N_QUERIES,
        "batched_items": stats.batched_items,
        "sends_suppressed": stats.sends_suppressed,
        "flushes": {
            "size": stats.batch_flushes_size,
            "drain": stats.batch_flushes_drain,
            "timer": stats.batch_flushes_timer,
            "idle": stats.batch_flushes_idle,
        },
    }


def test_batching_threshold_sweep(benchmark, paper_graph):
    def experiment():
        return [run_threshold(t, paper_graph) for t in THRESHOLDS]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    by_threshold = {row["threshold"]: row for row in rows}

    report(
        benchmark,
        f"Batching ablation: thresholds on the P(local)={P_LOCAL} workload",
        [
            {
                "threshold": r["threshold"],
                "mean_response_s": r["mean_response_s"],
                "work_msgs_per_query": r["work_messages_per_query"],
                "bytes_per_query": r["bytes_per_query"],
            }
            for r in rows
        ],
    )

    payload = {
        "experiment": "batching_threshold_sweep",
        "workload": {"p_local": P_LOCAL, "search_type": "Rand10p", "machines": 3},
        "n_queries": N_QUERIES,
        "thresholds": rows,
        "reduction_at_8": by_threshold[1]["work_messages_per_query"]
        / by_threshold[8]["work_messages_per_query"],
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    baseline = by_threshold[1]
    # threshold 1 disables the subsystem entirely.
    assert baseline["batched_items"] == 0

    for threshold in (8, 16, 32):
        row = by_threshold[threshold]
        # >= 2x fewer remote work messages per query...
        assert row["work_messages_per_query"] * 2 <= baseline["work_messages_per_query"]
        # ...and never at the price of response time.
        assert row["mean_response_s"] <= baseline["mean_response_s"]

    # Larger thresholds never send more work messages than smaller ones.
    per_query = [r["work_messages_per_query"] for r in rows]
    assert all(a >= b for a, b in zip(per_query, per_query[1:]))


def test_threshold_one_matches_unbatched_exactly(paper_graph):
    """The degenerate config must not merely be close — the message
    stream, byte counts and virtual timings are bit-identical."""
    plain_cluster, plain_workload = make_cluster(3, paper_graph)
    degen_cluster, degen_workload = make_cluster(
        3, paper_graph, batching=BatchConfig(max_batch=1)
    )
    plain = run_script(plain_cluster, plain_workload, pointer_key_for(P_LOCAL),
                       "Rand10p", n_queries=5)
    degen = run_script(degen_cluster, degen_workload, pointer_key_for(P_LOCAL),
                       "Rand10p", n_queries=5)
    assert plain.values == degen.values
    assert plain_cluster.network.messages_delivered == degen_cluster.network.messages_delivered
    assert plain_cluster.network.bytes_delivered == degen_cluster.network.bytes_delivered
