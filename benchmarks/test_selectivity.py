"""E5 — the effect of result-set size (§5).

    "Given two queries that follow the same pointers, a highly selective
    query may be faster in the distributed case, while a less selective
    query may run faster when the entire database is on a single server.
    For example, the case in Figure 4 where 95% of the pointers are
    local takes an average 1.1 seconds when run on three or nine
    machines, and 1.5 seconds when run at a single site ...  If we
    instead select all of the items ... the single site time jumps to
    5.1 seconds.  For three and nine sites we have 6.4 and 5.7 seconds."
"""

import pytest

from repro.workload import COMMON_TYPE, pointer_key_for

from .conftest import make_cluster, report, run_script

POINTER = pointer_key_for(0.95)

PAPER = {
    ("Rand10p", 1): 1.5,
    ("Rand10p", 3): 1.1,
    ("Rand10p", 9): 1.1,
    (COMMON_TYPE, 1): 5.1,
    (COMMON_TYPE, 3): 6.4,
    (COMMON_TYPE, 9): 5.7,
}


def test_selectivity(benchmark, paper_graph):
    def experiment():
        measured = {}
        for machines in (1, 3, 9):
            cluster, workload = make_cluster(machines, paper_graph)
            for search in ("Rand10p", COMMON_TYPE):
                measured[(search, machines)] = run_script(
                    cluster, workload, POINTER, search
                )
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "selectivity": "~10% (Rand10p)" if search == "Rand10p" else "100% (Common)",
            "machines": machines,
            "paper_s": PAPER[(search, machines)],
            "measured_s": measured[(search, machines)].mean,
        }
        for search in ("Rand10p", COMMON_TYPE)
        for machines in (1, 3, 9)
    ]
    report(benchmark, "E5: selectivity vs distribution (95%-local pointers)", rows)

    sel1 = measured[("Rand10p", 1)].mean
    sel3 = measured[("Rand10p", 3)].mean
    all1 = measured[(COMMON_TYPE, 1)].mean
    all3 = measured[(COMMON_TYPE, 3)].mean
    all9 = measured[(COMMON_TYPE, 9)].mean

    # Selective: distribution wins (or at worst ties).
    assert sel3 <= sel1 * 1.02
    # Unselective: "sending results is expensive" — distribution loses.
    assert all3 > all1
    # Returning everything costs far more than returning 10%.
    assert all1 > 2 * sel1 and all3 > 2 * sel3
    # Nine sites ship the same results with more parallel senders:
    # no worse than three (the paper: 5.7 < 6.4).
    assert all9 <= all3 * 1.05
