"""Transport overhead: the algorithm itself is cheap.

The simulated cluster charges the paper's 1990 costs; this bench measures
what the same distributed algorithm costs *today*, end to end, on the two
real transports — threads+queues (objects by reference) and TCP sockets
(real encoded frames) — in host wall-clock time.  The point: a full
cross-site closure query, including termination detection, completes in
milliseconds; the paper's measured seconds were the era's hardware, not
the algorithm.
"""

import pytest

from repro.core.program import compile_query
from repro.net.sockets import SocketCluster
from repro.net.threaded import ThreadedCluster
from repro.workload import WorkloadSpec, build_graph, closure_query, materialize

SPEC = WorkloadSpec(n_objects=90)
GRAPH = build_graph(n=90)
PROGRAM = compile_query(closure_query("Tree", "Rand10p", 5))


@pytest.fixture(scope="module")
def threaded_cluster():
    cluster = ThreadedCluster(3)
    workload = materialize(SPEC, [cluster.store(s) for s in cluster.sites], graph=GRAPH)
    yield cluster, workload
    cluster.close()


@pytest.fixture(scope="module")
def socket_cluster():
    cluster = SocketCluster(3)
    workload = materialize(SPEC, [cluster.store(s) for s in cluster.sites], graph=GRAPH)
    yield cluster, workload
    cluster.close()


def test_threaded_transport(benchmark, threaded_cluster):
    cluster, workload = threaded_cluster
    outcome = benchmark(lambda: cluster.run_query(PROGRAM, [workload.root]))
    assert len(outcome.result.oids) > 0


def test_socket_transport(benchmark, socket_cluster):
    cluster, workload = socket_cluster
    outcome = benchmark(lambda: cluster.run_query(PROGRAM, [workload.root]))
    assert len(outcome.result.oids) > 0
    assert cluster.bytes_on_the_wire() > 0
