"""Process-mode scaling: one OS process per site vs the GIL-bound transports.

Process mode (``ClusterConfig(processes=True)``) pays real costs the
inline transports don't — spawn at construction, a control round-trip
per store call, codec bytes instead of shared references — to buy the
one thing no in-process transport can have: site CPU work running on
multiple cores at once.  This bench saturates each deployment with a
window of concurrent closure queries and reports queries/sec plus
client-side p50/p99 latency, alongside the core count that decides
whether parallelism can pay.

The numbers land in ``BENCH_procscale.json`` at the repo root; the CI
``proc-conformance-smoke`` job regenerates and uploads them.  The
tracked claim — **process-mode qps >= max(threaded, sockets) qps at
saturation** — is asserted only on genuinely multi-core hosts (4+
CPUs): on one or two cores process mode is all overhead and no
parallelism, and the recorded numbers say so honestly.

Environment knobs:

* ``REPRO_BENCH_QUERIES`` — queries per deployment (default 20).
* ``REPRO_BENCH_WINDOW``  — concurrent queries in flight (default 8).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.api import make_cluster
from repro.config import ClusterConfig
from repro.core.program import compile_query
from repro.workload import WorkloadSpec, build_graph, closure_query, materialize

from .conftest import report

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "20"))
WINDOW = int(os.environ.get("REPRO_BENCH_WINDOW", "8"))
MACHINES = 3
#: Cores below which the parallelism claim cannot hold and is not asserted.
MIN_CORES_FOR_CLAIM = 4

SPEC = WorkloadSpec(n_objects=90)
GRAPH = build_graph(n=90)
PROGRAM = compile_query(closure_query("Tree", "Rand10p", 5))

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_procscale.json"

DEPLOYMENTS = {
    "threaded": lambda: make_cluster("threaded", MACHINES),
    "sockets": lambda: make_cluster("sockets", MACHINES),
    "async": lambda: make_cluster("async", MACHINES),
    "async+procs": lambda: make_cluster(
        "async", MACHINES, config=ClusterConfig(processes=True)
    ),
}


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(int(fraction * (len(sorted_values) - 1) + 0.5), len(sorted_values) - 1)
    return sorted_values[index]


def saturate(name: str, n_queries: int = N_QUERIES, window: int = WINDOW) -> dict:
    """Run ``n_queries`` closure queries with ``window`` always in flight."""
    cluster = DEPLOYMENTS[name]()
    try:
        workload = materialize(SPEC, [cluster.store(s) for s in cluster.sites], graph=GRAPH)
        # Warm-up: populate caches/connections outside the timed region.
        cluster.run_query(PROGRAM, [workload.root], timeout_s=60.0)

        latencies = []
        inflight = []
        submitted = 0
        started = time.monotonic()
        while submitted < n_queries or inflight:
            while submitted < n_queries and len(inflight) < window:
                inflight.append(cluster.submit(PROGRAM, [workload.root]))
                submitted += 1
            outcome = cluster.wait(inflight.pop(0), timeout_s=120.0)
            assert len(outcome.result.oids) > 0
            latencies.append(outcome.response_time)
        elapsed = time.monotonic() - started

        latencies.sort()
        return {
            "queries": n_queries,
            "window": window,
            "elapsed_s": elapsed,
            "qps": n_queries / elapsed if elapsed > 0 else float("inf"),
            "p50_s": percentile(latencies, 0.50),
            "p99_s": percentile(latencies, 0.99),
        }
    finally:
        cluster.close()


@pytest.mark.benchmark(group="procscale")
def test_process_mode_scales_past_the_gil(benchmark):
    def experiment():
        return {name: saturate(name) for name in DEPLOYMENTS}

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    cores = os.cpu_count() or 1

    report(
        benchmark,
        f"Saturated closure queries: {MACHINES} site processes, "
        f"window={WINDOW}, n={N_QUERIES}, host cores={cores}",
        [
            {
                "deployment": name,
                "qps": round(r["qps"], 1),
                "p50_ms": round(r["p50_s"] * 1e3, 2),
                "p99_ms": round(r["p99_s"] * 1e3, 2),
            }
            for name, r in rows.items()
        ],
    )

    payload = {
        "experiment": "process_mode_saturation",
        "workload": {
            "machines": MACHINES,
            "n_objects": SPEC.n_objects,
            "query": "closure Tree/Rand10p depth 5",
        },
        "n_queries": N_QUERIES,
        "window": WINDOW,
        "cpu_count": cores,
        "claim_asserted": cores >= MIN_CORES_FOR_CLAIM,
        "deployments": rows,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # The tracked claim, only where parallelism can physically pay: with
    # 4+ cores the per-site processes must out-saturate the transports
    # serialised by one interpreter lock.
    if cores >= MIN_CORES_FOR_CLAIM:
        gil_bound = max(rows["threaded"]["qps"], rows["sockets"]["qps"])
        assert rows["async+procs"]["qps"] >= gil_bound, (
            f"process mode slower than GIL-bound transports on {cores} cores: "
            f"{rows['async+procs']['qps']:.1f} < {gil_bound:.1f} qps"
        )
