"""A6 — wide-area deployment ablation (extension).

Paper §1 motivates distribution with "two geographically distant
institutions may want to (transparently) share information".  The
experiments run on one Ethernet; here we ask what happens when one site
sits behind a long-haul link (25x the LAN latency): how much does the
pointer-locality requirement tighten?
"""

import pytest

from repro.workload import pointer_key_for

from .conftest import make_cluster, report, run_script

WAN_LATENCY_S = 0.500  # vs the 20 ms LAN default


def test_wan_link(benchmark, paper_graph):
    def experiment():
        measured = {}
        for deployment in ("lan", "wan"):
            for p in (0.50, 0.80, 0.95):
                cluster, workload = make_cluster(3, paper_graph)
                if deployment == "wan":
                    cluster.set_link_latency("site0", "site2", WAN_LATENCY_S)
                    cluster.set_link_latency("site1", "site2", WAN_LATENCY_S)
                series = run_script(cluster, workload, pointer_key_for(p), "Rand10p")
                measured[(deployment, p)] = series
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "p_local": p,
            "lan_s": measured[("lan", p)].mean,
            "wan_s": measured[("wan", p)].mean,
            "wan_penalty_s": measured[("wan", p)].mean - measured[("lan", p)].mean,
        }
        for p in (0.50, 0.80, 0.95)
    ]
    report(benchmark, "A6: one site behind a 500 ms long-haul link", rows)

    # The long-haul penalty in absolute seconds shrinks as locality rises
    # (fewer dereferences cross the slow link), but never vanishes: even
    # at 95% locality the distant site's result returns cross it, leaving
    # a near-constant floor of a couple of round trips.  Wide-area
    # deployments therefore want *both* high pointer locality and result
    # batching.
    penalties = [row["wan_penalty_s"] for row in rows]
    assert penalties[0] > penalties[1] > penalties[2] > 0.5
    assert measured[("wan", 0.50)].mean > 1.3 * measured[("lan", 0.50)].mean
