"""Figure 4 — response time vs probability of a pointer being local (§5).

The paper plots mean response time for queries following the
randomly-constructed pointers of each locality class (P(local) = .05 ..
.95, two pointers per object), on 3 and 9 machines, against the
single-site base case.  Its findings:

* at the far left "the cases ... generate too much message traffic";
* "the system operates best with at least 80% local references";
* "with more machines we are more capable of handling a higher
  percentage of remote references".
"""

import pytest

from repro.workload import pointer_key_for

from .conftest import SPEC, make_cluster, report, run_script


def test_figure4_locality_sweep(benchmark, paper_graph):
    def experiment():
        measured = {}
        for machines in (1, 3, 9):
            cluster, workload = make_cluster(machines, paper_graph)
            for p in SPEC.locality_classes:
                series = run_script(cluster, workload, pointer_key_for(p), "Rand10p")
                measured[(machines, p)] = series
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "p_local": p,
            "1_machine_s": measured[(1, p)].mean,
            "3_machines_s": measured[(3, p)].mean,
            "9_machines_s": measured[(9, p)].mean,
        }
        for p in SPEC.locality_classes
    ]
    report(benchmark, "Figure 4: response time vs fraction of local pointers", rows)

    from repro.metrics.charts import render_chart

    print()
    print(
        render_chart(
            list(SPEC.locality_classes),
            {
                "1 machine": [measured[(1, p)].mean for p in SPEC.locality_classes],
                "3 machines": [measured[(3, p)].mean for p in SPEC.locality_classes],
                "9 machines": [measured[(9, p)].mean for p in SPEC.locality_classes],
            },
            title="Figure 4 (reproduced)",
            x_label="P(pointer is local)",
            y_label="response time (s)",
        )
    )

    # Shape assertions:
    # 1. low locality: distribution much worse than one site.
    assert measured[(3, 0.05)].mean > 1.5 * measured[(1, 0.05)].mean
    # 2. distributed times fall monotonically as locality rises.
    sweep3 = [measured[(3, p)].mean for p in SPEC.locality_classes]
    sweep9 = [measured[(9, p)].mean for p in SPEC.locality_classes]
    assert all(a >= b * 0.95 for a, b in zip(sweep3, sweep3[1:]))
    assert all(a >= b * 0.95 for a, b in zip(sweep9, sweep9[1:]))
    # 3. crossover by ~80-95% local: distribution stops losing.
    assert measured[(3, 0.95)].mean <= measured[(1, 0.95)].mean * 1.02
    # 4. nine machines tolerate remote references better than three.
    mid = [0.20, 0.35, 0.50, 0.65]
    assert all(measured[(9, p)].mean < measured[(3, p)].mean for p in mid)
