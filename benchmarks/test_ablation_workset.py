"""A2 — working-set discipline ablation (paper §3.1, footnote 4).

"The choice of data structure for the working set determines the search
order for the algorithm, for example a queue gives breadth-first search.
Work by Sarantos Kapidakis shows that a node-based search (such as a
breadth-first search) will give the best results in the average case."

Results are identical under every discipline (the engine is confluent);
what changes is the *schedule* — how quickly remote work is discovered
and shipped, hence how much parallelism overlaps.  We measure response
time per discipline on the tree (parallel) and mid-locality (mixed)
workloads.
"""

import pytest

from repro.workload import pointer_key_for

from .conftest import make_cluster, report, run_script

DISCIPLINES = ("fifo", "lifo", "priority")


def test_workset_disciplines(benchmark, paper_graph):
    def experiment():
        measured = {}
        for discipline in DISCIPLINES:
            for pointer in ("Tree", pointer_key_for(0.50)):
                cluster, workload = make_cluster(3, paper_graph, discipline=discipline)
                series = run_script(cluster, workload, pointer, "Rand10p")
                measured[(discipline, pointer)] = series
        return measured

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "discipline": d,
            "tree_s": measured[(d, "Tree")].mean,
            "rand50_s": measured[(d, pointer_key_for(0.50))].mean,
        }
        for d in DISCIPLINES
    ]
    report(benchmark, "A2: work-set discipline vs response time (3 machines)", rows)

    # All disciplines must agree on the answers' cost regime — the spread
    # across disciplines stays well under 2x on these workloads...
    for pointer in ("Tree", pointer_key_for(0.50)):
        times = [measured[(d, pointer)].mean for d in DISCIPLINES]
        assert max(times) < 2 * min(times)
    # ...and breadth-first (the paper's pick) is never the worst by more
    # than a whisker: it discovers remote branches early, keeping every
    # site busy.
    for pointer in ("Tree", pointer_key_for(0.50)):
        fifo = measured[("fifo", pointer)].mean
        worst = max(measured[(d, pointer)].mean for d in DISCIPLINES)
        assert fifo <= worst * 1.001
