"""A4 — reachability-index ablation (paper §2, ref [4]).

The paper's companion facility: "indexes based on the reachability of an
object (to speed up queries such as 'Find all documents referenced
directly or indirectly by this document that in addition have a given
keyword')".  We compare answering the canonical closure query by engine
traversal vs. by reachability-index lookup — in *host* time, measured by
pytest-benchmark, since both run in the same process with no network.
"""

import pytest

from repro.core.program import compile_query
from repro.engine.local import run_local
from repro.storage.indexes import build_index
from repro.storage.memstore import MemStore
from repro.storage.reachability import answer_closure_query, build_reachability
from repro.workload import closure_query, materialize

from .conftest import SPEC, report


@pytest.fixture(scope="module")
def loaded(paper_graph):
    store = MemStore("solo")
    workload = materialize(SPEC, [store], graph=paper_graph)
    program = compile_query(closure_query("Tree", "Rand10p", 5))
    reach = build_reachability([store], "Tree")
    tuples = build_index(store)
    reach.closure([workload.root])  # warm the closure cache, as a server would
    return store, workload, program, reach, tuples


def test_engine_traversal(benchmark, loaded):
    store, workload, program, reach, tuples = loaded
    result = benchmark(lambda: run_local(program, [workload.root], store.get))
    expected = answer_closure_query(program, [workload.root], reach, tuples)
    assert result.oid_keys() == expected.oid_keys()
    report(
        benchmark,
        "A4: engine traversal",
        [{"mode": "engine traversal", "results": len(result.oids)}],
    )


def test_index_lookup(benchmark, loaded):
    store, workload, program, reach, tuples = loaded
    result = benchmark(
        lambda: answer_closure_query(program, [workload.root], reach, tuples)
    )
    assert result is not None and len(result.oids) > 0
    report(
        benchmark,
        "A4: reachability-index lookup",
        [{"mode": "index lookup", "results": len(result.oids)}],
    )
