"""E7 — the distributed-set optimisation (§5, proposed extension).

    "In the case of queries which only construct a new set ... the
    result could be left as a 'distributed set'.  Each server would send
    back the number of local result items, rather than pointers to the
    items themselves. ... The portion of this set at each site would be
    used to initialize the working set at that site for the new query."

The paper proposes but does not implement this; we implement it
(``result_mode="count"``) and measure what it buys on exactly the
workload that motivated it — the low-selectivity queries of E5.
"""

import pytest

from repro.workload import COMMON_TYPE, pointer_key_for, traversal_only_query

from .conftest import make_cluster, report, run_script

POINTER = pointer_key_for(0.95)


def test_distributed_sets(benchmark, paper_graph):
    def experiment():
        out = {}
        for mode in ("ship", "count"):
            cluster, workload = make_cluster(3, paper_graph, result_mode=mode)
            out[mode] = run_script(cluster, workload, POINTER, COMMON_TYPE)
            out[mode + "_cluster"] = cluster
            out[mode + "_workload"] = workload
        # Follow-up cost: narrow the big distributed set with a second
        # query, seeded in place (no ids cross the network).
        cluster = out["count_cluster"]
        workload = out["count_workload"]
        first = cluster.run_query(traversal_only_query(POINTER), [workload.root])
        followup = cluster.run_followup("T (Rand10p, 5, ?) -> U", first.qid)
        out["followup_s"] = followup.response_time
        out["followup_counts"] = followup.partition_counts
        return out

    out = benchmark.pedantic(experiment, rounds=1, iterations=1)

    ship, count = out["ship"], out["count"]
    rows = [
        {"mode": "ship results (paper's base algorithm)", "measured_s": ship.mean},
        {"mode": "distributed set (counts only)", "measured_s": count.mean},
        {"mode": "follow-up query over the distributed set", "measured_s": out["followup_s"]},
    ]
    report(
        benchmark,
        "E7: distributed-set optimisation on 100%-selectivity queries (3 machines)",
        rows,
        speedup=ship.mean / count.mean,
    )

    # The optimisation's whole point: unselective queries get much cheaper.
    assert count.mean < 0.6 * ship.mean
    # And the follow-up still works, with per-site partitions populated.
    assert out["followup_counts"] and sum(out["followup_counts"].values()) > 0
