"""E2 — the single-site base case (§5).

    "Running the query shown above (a transitive closure over 270 items,
    with approximately 27 in the result set) took 2.7 seconds when all
    the objects were at a single site, when following either tree or
    chain pointers."
"""

import pytest

from .conftest import make_cluster, report, run_script

PAPER_SINGLE_SITE_S = 2.7


def test_single_site_closure(benchmark, paper_graph):
    def experiment():
        cluster, workload = make_cluster(1, paper_graph)
        tree = run_script(cluster, workload, "Tree", "Rand10p")
        chain = run_script(cluster, workload, "Chain", "Rand10p")
        return tree, chain

    tree, chain = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        {
            "pointer": name,
            "paper_s": PAPER_SINGLE_SITE_S,
            "measured_s": series.mean,
            "stdev_s": series.stdev,
            "queries": series.count,
        }
        for name, series in (("Tree", tree), ("Chain", chain))
    ]
    report(benchmark, "E2: transitive closure over 270 objects, 1 site", rows)

    # The cost model reproduces the 2.7 s figure: 270 x 8 ms + ~27 x 20 ms.
    for series in (tree, chain):
        assert series.mean == pytest.approx(PAPER_SINGLE_SITE_S, rel=0.15)
