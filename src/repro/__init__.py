"""Reproduction of Clifton & Garcia-Molina, "Distributed Processing of
Filtering Queries in HyperFile" (ICDCS 1991).

HyperFile is a back-end data server for document-management and hypertext
applications: objects are sets of (type, key, data) tuples, possibly
pointing at other objects on other sites, and queries are filter pipelines
that traverse the pointer graph by shipping the *query* (never the data)
along remote pointers.

Package map
-----------
- ``repro.core``      — data model + query language (paper §2, §3 notation)
- ``repro.engine``    — local & shared-memory processing algorithms (§3.1, §6)
- ``repro.server``    — per-site server nodes with query contexts (§3.2)
- ``repro.cluster``   — cluster assembly / client-facing distributed queries
- ``repro.net``       — simulated + threaded transports
- ``repro.sim``       — discrete-event simulation kernel & cost model
- ``repro.termination`` — distributed termination detection (§4)
- ``repro.naming``    — birth-site object naming & migration (§4)
- ``repro.storage``   — main-memory stores, blob store, indexes
- ``repro.workload``  — the synthetic database of §5
- ``repro.baselines`` — file-server & centralized comparators
- ``repro.client``    — application-facing session API
"""

__version__ = "1.0.0"

# Convenience re-exports: the names most applications start from.
from .api import ClusterAPI, QueryOutcome       # noqa: E402,F401
from .cache import CacheConfig                  # noqa: E402,F401
from .client import HyperFile, Session          # noqa: E402,F401
from .cluster import SimCluster                 # noqa: E402,F401
from .config import ClusterConfig               # noqa: E402,F401
from .net.batching import BatchConfig           # noqa: E402,F401
from .sim.costs import FREE_COSTS, PAPER_COSTS  # noqa: E402,F401

__all__ = [
    "BatchConfig",
    "CacheConfig",
    "ClusterAPI",
    "ClusterConfig",
    "FREE_COSTS",
    "HyperFile",
    "PAPER_COSTS",
    "QueryOutcome",
    "Session",
    "SimCluster",
    "__version__",
]
