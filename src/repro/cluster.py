"""Cluster assembly: a complete simulated HyperFile deployment.

:class:`SimCluster` wires together everything the paper's prototype had —
per-site stores and server nodes, the (simulated) network, termination
detection — and exposes the operations the experimental client performed:
load objects, submit a query at an originating site, wait for completion,
read the response time off the (virtual) wall clock.

Typical use::

    cluster = SimCluster(3)
    s0 = cluster.store("site0")
    a = s0.create([keyword_tuple("Distributed")])
    ...
    outcome = cluster.run_query(
        "S [ (Pointer, \\"Reference\\", ?X) | ^^X ]* (Keyword, \\"Distributed\\", ?) -> T",
        initial=[a.oid],
    )
    outcome.result.oids, outcome.response_time
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from .api import QueryLike, QueryOutcome, compile_query_like, credit_deficit
from .config import ClusterConfig, resolve_config
from .core.oid import Oid
from .engine.results import QueryResult
from .errors import (
    ConfigError,
    HyperFileError,
    Overloaded,
    QueryTimeout,
    SiteDeparted,
    TerminationLost,
    UnknownSite,
)
from .faults.plan import FaultPlan
from .faults.reliable import ReliableConfig
from .membership import UP, MembershipService, MembershipView, Rebalancer
from .naming.directory import ForwardingTable, ReplicaDirectory
from .naming.names import migrate_object
from .cache import CacheConfig
from .net.batching import BatchConfig
from .qos import PRIORITIES, ClientLimiter, QoSConfig
from .replication import ReplicationConfig, ReplicationManager
from .net.messages import Envelope, Heartbeat, QueryId
from .net.simnet import SimNetwork
from .server.node import ServerNode
from .server.stats import NodeStats
from .sim.costs import CostModel, PAPER_COSTS
from .sim.kernel import Simulator
from .termination.base import TerminationStrategy, make_strategy

__all__ = ["QueryLike", "QueryOutcome", "SimCluster", "site_name"]


def site_name(index: int) -> str:
    """Canonical site naming used throughout benchmarks: site0, site1, ..."""
    return f"site{index}"


class SimCluster:
    """A set of HyperFile sites over a simulated network."""

    def __init__(
        self,
        sites: Union[int, Iterable[str]] = 3,
        costs: Optional[CostModel] = None,
        termination: Union[str, TerminationStrategy] = "weighted",
        discipline: str = "fifo",
        result_mode: str = "ship",
        mark_granularity: str = "iteration",
        gc_contexts: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        reliable: Union[bool, ReliableConfig] = False,
        batching: Optional[BatchConfig] = None,
        caching: Optional[CacheConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        qos: Optional[QoSConfig] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        config = resolve_config(
            config,
            owner="SimCluster",
            costs=costs,
            termination=termination,
            discipline=discipline,
            result_mode=result_mode,
            mark_granularity=mark_granularity,
            gc_contexts=gc_contexts,
            fault_plan=fault_plan,
            reliable=reliable,
            batching=batching,
            caching=caching,
            replication=replication,
            qos=qos,
        )
        config.require_default("processes", transport="sim")
        self.config = config
        costs = config.costs if config.costs is not None else PAPER_COSTS
        termination = config.termination
        discipline = config.discipline
        result_mode = config.result_mode
        mark_granularity = config.mark_granularity
        gc_contexts = config.gc_contexts
        fault_plan = config.fault_plan
        reliable = config.reliable
        batching = config.batching
        caching = config.caching
        replication = config.replication
        qos = config.qos
        if isinstance(sites, int):
            names = [site_name(i) for i in range(sites)]
        else:
            names = list(sites)
        if not names:
            raise ValueError("a cluster needs at least one site")
        if len(set(names)) != len(names):
            raise ValueError("site names must be unique")

        self.sim = Simulator()
        self.network = SimNetwork(self.sim)
        self.costs = costs
        strategy = termination if isinstance(termination, TerminationStrategy) else make_strategy(termination)
        self.termination = strategy

        from .storage.memstore import MemStore

        directory = (
            ReplicaDirectory() if replication is not None and replication.enabled else None
        )
        self.stores: Dict[str, MemStore] = {}
        self.forwarding: Dict[str, ForwardingTable] = {}
        self.nodes: Dict[str, ServerNode] = {}
        for name in names:
            store = MemStore(name)
            table = ForwardingTable(name)
            node = ServerNode(
                name,
                store,
                costs=costs,
                termination=strategy,
                discipline=discipline,
                result_mode=result_mode,
                mark_granularity=mark_granularity,
                gc_contexts=gc_contexts,
                forwarding=table,
                batching=batching,
                caching=caching,
                replicas=directory,
                qos=qos,
            )
            self.stores[name] = store
            self.forwarding[name] = table
            self.nodes[name] = node
            # Virtual clock: batching never timer-flushes on sim (the
            # value is only stored), but SLO watermarks stamp from it.
            node.now_fn = lambda: self.sim.now
            host = self.network.attach(node)
            host.completion_sink = self._on_complete

        self.replication: Optional[ReplicationManager] = None
        if directory is not None:
            assert replication is not None
            self.replication = ReplicationManager(
                replication, self.stores, self.forwarding, directory
            )
            for node in self.nodes.values():
                # Write fan-out invalidates every node's cached view of
                # the mutated holders immediately (version/epoch gating).
                self.replication.add_epoch_listener(node.observe_epoch)

        # Dynamic membership: view service + rebalancer + routing hooks.
        # config.membership=None leaves every hook at its default, so the
        # static-membership build runs bit-identically to before.
        self.membership: Optional[MembershipService] = None
        self.rebalancer: Optional[Rebalancer] = None
        self._hb_armed = False
        self._hb_outstanding = 0
        self._last_failed_site: Optional[str] = None
        if config.membership is not None:
            self.membership = MembershipService(config.membership, names)
            self.rebalancer = Rebalancer(
                self.replication, self.stores, self.forwarding, self.membership
            )
            if self.replication is not None:
                self.replication.active_sites = lambda: list(self.membership.view.active)
            for node in self.nodes.values():
                node.membership_status = self.membership.status_of
                node.heartbeat_sink = self._on_heartbeat
            self.membership.add_listener(self._on_view_change)

        self.qos = qos
        self._qos_limiter: Optional[ClientLimiter] = (
            ClientLimiter(qos.rate_limit_qps, qos.rate_burst, lambda: self.sim.now)
            if qos is not None and qos.rate_limit_qps is not None
            else None
        )
        #: Submits bounced by admission control (see `repro qos-stats`).
        self.qos_bounces = 0
        self._seq = 0
        self._submitted_at: Dict[QueryId, float] = {}
        self._completed: Dict[QueryId, QueryOutcome] = {}
        self._deadline_handles: Dict[QueryId, object] = {}
        # Telemetry plane: crash flight recorder + streaming stats.
        self.flight_recorder = None
        if config.flight_recorder is not None:
            from .tracing import FlightRecorder

            self.flight_recorder = FlightRecorder(config.flight_recorder)
            self.flight_recorder.now_fn = lambda: self.sim.now
            for node in self.nodes.values():
                node.tracer = self.flight_recorder
        self._flightrec_dumped: set = set()
        self.stats_timeline = None
        self._stats_stream_s = config.stats_stream_s
        self._stats_sampler_armed = False
        if config.stats_stream_s is not None:
            from .metrics.collect import StatsTimeline

            self.stats_timeline = StatsTimeline()
        if reliable:
            self.enable_reliable(reliable if isinstance(reliable, ReliableConfig) else None)
        if fault_plan is not None:
            self.use_faults(fault_plan)

    # ------------------------------------------------------------------
    # lifecycle (ClusterAPI parity: the simulator holds no real resources)
    # ------------------------------------------------------------------

    def close(self) -> None:
        """No-op: everything is in-process state, freed with the object."""

    def __enter__(self) -> "SimCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # topology / data management
    # ------------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.nodes)

    def store(self, site: str):
        try:
            return self.stores[site]
        except KeyError:
            raise UnknownSite(site) from None

    def node(self, site: str) -> ServerNode:
        try:
            return self.nodes[site]
        except KeyError:
            raise UnknownSite(site) from None

    def migrate(self, oid: Oid, to_site: str) -> Oid:
        """Move an object between sites, maintaining naming invariants.

        With replication enabled the move is replication-aware: the new
        primary leads the holder list and k copies are preserved."""
        if self.replication is not None:
            return self.replication.migrate(oid, to_site)
        return migrate_object(oid, self.stores, self.forwarding, to_site)

    def replicate_all(self) -> int:
        """Install the configured k copies of every loaded object.

        Call once after loading the workload (and after any direct
        ``store.create`` writes).  No-op (returns 0) without a
        replication config."""
        if self.replication is None:
            return 0
        return self.replication.replicate_all()

    def set_down(self, site: str) -> None:
        self.network.set_down(site)

    def set_up(self, site: str) -> None:
        self.network.set_up(site)

    def is_up(self, site: str) -> bool:
        return self.network.is_up(site)

    def is_down(self, site: str) -> bool:
        return not self.network.is_up(site)

    def set_link_latency(self, a: str, b: str, seconds: float) -> None:
        """Override one link's wire latency (heterogeneous deployments)."""
        self.network.set_link_latency(a, b, seconds)

    # ------------------------------------------------------------------
    # dynamic membership (config.membership; see docs/MEMBERSHIP.md)
    # ------------------------------------------------------------------

    @property
    def membership_view(self) -> Optional[MembershipView]:
        """The current membership view (None without ``membership=``)."""
        return self.membership.view if self.membership is not None else None

    def _require_membership(self) -> MembershipService:
        if self.membership is None:
            raise ConfigError(
                "membership",
                "this cluster was built without ClusterConfig(membership=...)",
            )
        return self.membership

    def join_site(self, site: str) -> MembershipView:
        """Admit ``site`` to the cluster (a brand-new site, or a rejoin
        of one that gracefully left).  The view change rebalances the
        ring: the new site takes over its rendezvous share of backups.
        """
        service = self._require_membership()
        if site not in self.nodes:
            self._add_site(site)
        self.network.set_up(site)
        view = service.join(site)
        self._maybe_finalize_membership()
        return view

    def leave_site(self, site: str) -> MembershipView:
        """Begin a graceful leave: the site's placements move to the
        remaining members immediately (routing stops targeting it), its
        local copies linger until it has drained the work already in
        hand, and the departure is finalized at the next idle point.
        """
        service = self._require_membership()
        view = service.leave_begin(site)
        self._maybe_finalize_membership()
        return view

    def fail_site(self, site: str) -> MembershipView:
        """Declare ``site`` permanently crashed.

        The machine is gone: queued work bounces back to its senders
        (credit recovery), the store's content is formally lost, and the
        rebalance restores k copies of everything it held from the
        surviving replicas.  Work the site held *in execution* takes its
        credit with it — the flight recorder attributes that loss.
        """
        service = self._require_membership()
        self.network.crash_permanently(site)
        self._last_failed_site = site
        view = service.fail(site)
        store = self.stores[site]
        for oid in list(store.oids()):
            store.remove(oid)
        self._maybe_finalize_membership()
        return view

    def finalize_membership(self) -> None:
        """Force the idle-point membership work now: finalize drained
        leavers and delete displaced copies (tests/admin; the cluster
        also runs this after every query completion)."""
        self._maybe_finalize_membership()

    def _on_view_change(self, old, new, reason: str) -> None:
        tracer = self._cluster_tracer()
        if tracer is not None:
            tracer.emit(
                "cluster", "member", "",
                reason=reason, epoch=new.epoch, active=len(new.active),
            )
        cfg = self.config.membership
        if (
            cfg is not None
            and cfg.auto_rebalance
            and reason in ("join", "leave", "fail")
            and self.rebalancer is not None
        ):
            report = self.rebalancer.rebalance(reason)
            if tracer is not None:
                tracer.emit(
                    "cluster", "rebalance", "",
                    reason=reason,
                    epoch=new.epoch,
                    moved=report.moved,
                    installed=report.copies_installed,
                    lost=report.lost,
                )

    def _maybe_finalize_membership(self) -> None:
        """Idle-point membership work: finalize drained leavers, then —
        once no query is in flight — delete the displaced copies the
        rebalancer deferred (they may still be serving admitted work
        while queries run; see docs/MEMBERSHIP.md)."""
        if self.membership is None:
            return
        inflight = any(q not in self._completed for q in self._submitted_at)
        for site in self.membership.view.leaving:
            node = self.nodes[site]
            originating = any(
                q.originator == site and q not in self._completed
                for q in self._submitted_at
            )
            if node.has_work or originating:
                continue
            self.network.set_down(site)
            if self.rebalancer is not None:
                self.rebalancer.flush_removals(lambda s, target=site: s == target)
            store = self.stores[site]
            for oid in list(store.oids()):
                store.remove(oid)
            self.membership.leave_finalize(site)
        if self.rebalancer is not None and not inflight:
            self.rebalancer.flush_removals(lambda _s: True)

    def _add_site(self, name: str) -> None:
        """Build the store/node/host stack for a site joining a running
        cluster, wired exactly like a founding site's."""
        from .storage.memstore import MemStore

        cfg = self.config
        store = MemStore(name)
        table = ForwardingTable(name)
        node = ServerNode(
            name,
            store,
            costs=self.costs,
            termination=self.termination,
            discipline=cfg.discipline,
            result_mode=cfg.result_mode,
            mark_granularity=cfg.mark_granularity,
            gc_contexts=cfg.gc_contexts,
            forwarding=table,
            batching=cfg.batching,
            caching=cfg.caching,
            replicas=self.replication.directory if self.replication is not None else None,
            qos=cfg.qos,
        )
        self.stores[name] = store
        self.forwarding[name] = table
        self.nodes[name] = node
        node.now_fn = lambda: self.sim.now
        node.tracer = next(iter(self.nodes.values())).tracer
        node.metrics = getattr(self, "metrics", None)
        host = self.network.attach(node)
        host.completion_sink = self._on_complete
        if self.replication is not None:
            self.replication.add_epoch_listener(node.observe_epoch)
        if self.membership is not None:
            node.membership_status = self.membership.status_of
            node.heartbeat_sink = self._on_heartbeat

    # -- gossip failure detector (simulator timers) --------------------

    def _on_heartbeat(self, counters) -> None:
        self._hb_outstanding = max(0, self._hb_outstanding - 1)
        if self.membership is not None:
            self.membership.observe_heartbeat(counters)

    def _arm_heartbeat(self) -> None:
        """Start the gossip pump if the detector is configured.

        Same arming policy as the stats sampler: the pump runs while
        queries are in flight and stops when it has nothing to suspect,
        so it can never keep a dead simulation ticking forever."""
        cfg = self.config.membership
        if (
            self.membership is None
            or cfg is None
            or cfg.heartbeat_s is None
            or self._hb_armed
        ):
            return
        self._hb_armed = True
        self.sim.schedule(cfg.heartbeat_s, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        cfg = self.config.membership
        service = self.membership
        assert cfg is not None and service is not None
        # Judge the evidence delivered during the previous period first,
        # then produce this period's frames.
        for site in service.detect():
            if service.status_of(site) == UP and len(service.view.active) > 1:
                self.fail_site(site)
        self._hb_outstanding = 0
        for site in service.view.active:
            if not self.network.is_up(site):
                continue  # a frozen site cannot run its own timer
            counters = service.beat(site)
            for peer in service.gossip_peers(site):
                self.network.send(Envelope(site, peer, Heartbeat(site, counters)), self.sim.now)
                self._hb_outstanding += 1
        inflight = any(q not in self._completed for q in self._submitted_at)
        other_pending = max(0, self.sim.pending - self._hb_outstanding)
        if inflight and (other_pending > 0 or service.suspicious()):
            self.sim.schedule(cfg.heartbeat_s, self._heartbeat_tick)
        else:
            self._hb_armed = False

    def _cluster_tracer(self):
        return next(iter(self.nodes.values())).tracer

    def use_faults(self, plan: FaultPlan) -> FaultPlan:
        """Adopt a chaos schedule: per-message faults apply from now on,
        and the plan's timed site crashes are scheduled on the clock."""
        self.network.fault_plan = plan
        for crash in plan.crashes:
            if crash.site not in self.nodes:
                raise UnknownSite(crash.site)
            self.sim.schedule_at(crash.at, lambda s=crash.site: self.network.set_down(s))
            if crash.recover_at is not None:
                self.sim.schedule_at(crash.recover_at, lambda s=crash.site: self.network.set_up(s))
        return plan

    def enable_reliable(self, config: Optional[ReliableConfig] = None) -> None:
        """Interpose the ack/retransmit channel on every link."""
        self.network.enable_reliable(config)

    def attach_tracer(self, tracer) -> None:
        """Record a :class:`~repro.tracing.QueryTracer` timeline of every
        node's work, timestamped with virtual time.  With the flight
        recorder armed the tracer is teed into its ring, so postmortem
        dumps stay current while a user tracer is attached."""
        tracer.now_fn = lambda: self.sim.now
        if self.flight_recorder is not None:
            from .tracing import TeeTracer

            tracer = TeeTracer(tracer, self.flight_recorder)
        for node in self.nodes.values():
            node.tracer = tracer

    def detach_tracer(self) -> None:
        for node in self.nodes.values():
            node.tracer = self.flight_recorder

    def enable_metrics(self, registry=None):
        """Publish transport/batching telemetry into a
        :class:`~repro.metrics.MetricsRegistry` (created if not given).
        Returns the registry; read it with :meth:`metrics_snapshot`."""
        if registry is None:
            from .metrics.registry import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        for node in self.nodes.values():
            node.metrics = registry
        self.network.metrics = registry
        return registry

    def metrics_snapshot(self):
        """Current registry contents with per-node stats freshly mirrored
        in; None when :meth:`enable_metrics` was never called."""
        registry = getattr(self, "metrics", None)
        if registry is None:
            return None
        for site, node in self.nodes.items():
            registry.publish_node_stats(site, node.stats)
        return registry.snapshot()

    def total_objects(self) -> int:
        return sum(len(s) for s in self.stores.values())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def compile(self, query: QueryLike):
        """Accept query text, AST, or a compiled program."""
        return compile_query_like(query)

    def submit(
        self,
        query: QueryLike,
        initial: Iterable[Oid],
        originator: Optional[str] = None,
        deadline_s: Optional[float] = None,
        priority: Optional[str] = None,
        client: str = "default",
    ) -> QueryId:
        """Install a query at its originating site (non-blocking).

        ``deadline_s`` arms an originator-side timer: if the query has
        not terminated after that much virtual time it is force-completed
        with whatever results arrived, flagged ``partial=True``.

        ``priority`` is the QoS service class (``"interactive"`` or
        ``"batch"``; meaningful only with ``qos=``), and ``client`` names
        the submitting tenant for per-client rate limiting — an empty
        token bucket bounces the submit with
        :class:`~repro.errors.Overloaded` before anything is installed.
        """
        if priority is not None and priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}, got {priority!r}")
        program = self.compile(query)
        origin = originator if originator is not None else self.sites[0]
        if origin not in self.nodes:
            raise UnknownSite(origin)
        if self.membership is not None:
            status = self.membership.status_of(origin)
            if status != UP:
                # A departing originator could never deliver its answer.
                raise SiteDeparted(origin, status)
        self._admit(client)
        qid = self._next_qid(origin)
        self._submitted_at[qid] = self.sim.now
        self._arm_stats_sampler()
        self._arm_heartbeat()
        self.network.hosts[origin].submit(
            qid, program, list(initial), priority=priority, tenant=client
        )
        if deadline_s is not None:
            if deadline_s <= 0:
                raise ValueError("deadline_s must be positive")

            def expire() -> None:
                report = self.nodes[origin].expire_query(qid)
                self.network.hosts[origin].dispatch(report)

            self._deadline_handles[qid] = self.sim.schedule(deadline_s, expire)
        return qid

    def submit_followup(
        self,
        query: QueryLike,
        source_qid: QueryId,
        originator: Optional[str] = None,
    ) -> QueryId:
        """Start a query whose initial set is a *distributed set* held at
        the sites (paper §5's optimisation)."""
        program = self.compile(query)
        origin = originator if originator is not None else source_qid.originator
        if self.membership is not None:
            status = self.membership.status_of(origin)
            if status != UP:
                raise SiteDeparted(origin, status)
        qid = self._next_qid(origin)
        self._submitted_at[qid] = self.sim.now
        self.network.hosts[origin].submit_from_saved(qid, program, source_qid, self.sites)
        return qid

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Drain the simulation; returns the final virtual time."""
        return self.sim.run(until=until, max_events=max_events)

    def wait(
        self,
        qid: QueryId,
        timeout_s: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> QueryOutcome:
        """Run the simulation until ``qid`` completes.

        ``timeout_s`` exists for :class:`~repro.api.ClusterAPI` signature
        parity and is ignored: the simulator's clock is virtual, so its
        failure signal is an *idle event queue*, reported as the same
        typed :class:`~repro.errors.TerminationLost` (credit deficit and
        dropped-message count attached) that the wall-clock transports
        raise on their hard timeout.
        """
        del timeout_s  # virtual time: idleness, not wall-clock, means failure
        fired = 0
        while qid not in self._completed:
            if not self.sim.step():
                self._flightrec_dump(qid, "termination_lost")
                raise TerminationLost(
                    qid,
                    deficit=credit_deficit(self.nodes, qid),
                    undeliverable=self.network.messages_dropped,
                    site=self._last_failed_site,
                )
            fired += 1
            if fired > max_events:
                raise HyperFileError(f"query {qid} exceeded {max_events} simulation events")
        outcome = self._completed[qid]
        if outcome.result.partial and outcome.result.partial_reason in ("crash", "deadline"):
            self._flightrec_dump(qid, outcome.result.partial_reason)
        return outcome

    def run_query(
        self,
        query: QueryLike,
        initial: Iterable[Oid],
        originator: Optional[str] = None,
        deadline_s: Optional[float] = None,
        on_deadline: str = "partial",
        timeout_s: Optional[float] = None,
        priority: Optional[str] = None,
        client: str = "default",
    ) -> QueryOutcome:
        """Submit, run to completion (or deadline), and return the outcome.

        ``on_deadline`` selects the client-visible contract when the
        deadline expires first: ``"partial"`` returns the outcome with
        ``result.partial`` set; ``"raise"`` raises :class:`QueryTimeout`
        (the partial result rides on the exception).
        """
        if on_deadline not in ("partial", "raise"):
            raise ValueError(f"on_deadline must be 'partial' or 'raise', got {on_deadline!r}")
        qid = self.submit(
            query, initial, originator, deadline_s=deadline_s,
            priority=priority, client=client,
        )
        outcome = self.wait(qid, timeout_s=timeout_s)
        if outcome.result.partial and on_deadline == "raise":
            raise QueryTimeout(qid, deadline_s, outcome.result)
        return outcome

    def run_followup(
        self,
        query: QueryLike,
        source_qid: QueryId,
        originator: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> QueryOutcome:
        qid = self.submit_followup(query, source_qid, originator)
        return self.wait(qid, timeout_s=timeout_s)

    def outcome(self, qid: QueryId) -> Optional[QueryOutcome]:
        return self._completed.get(qid)

    def fetch_object(self, oid: Oid, via: Optional[str] = None):
        """Retrieve a whole object through a server site (file-interface
        style), paying real message + transfer costs.

        Returns ``(object_or_None, elapsed_virtual_seconds)``.
        """
        site = via if via is not None else self.sites[0]
        node = self.node(site)
        started = self.sim.now
        request_id, report = node.request_fetch(oid)
        self.network.hosts[site].dispatch(report)
        guard = 0
        while request_id not in node.fetch_results:
            if not self.sim.step():
                raise HyperFileError(f"fetch of {oid} never completed (holder down?)")
            guard += 1
            if guard > 1_000_000:
                raise HyperFileError(f"fetch of {oid} exceeded event budget")
        obj = node.fetch_results.pop(request_id)
        return obj, (self.sim.now - started) + 2 * self.costs.client_link_s

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def total_stats(self) -> NodeStats:
        """Cluster-wide node counters, merged."""
        merged = NodeStats()
        for node in self.nodes.values():
            merged.merge(node.stats)
        return merged

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _flightrec_dump(self, qid: QueryId, reason: str) -> None:
        """Dump the flight-recorder ring once per dying query (no-op when
        the recorder is unarmed or the query was already dumped)."""
        if self.flight_recorder is None or qid in self._flightrec_dumped:
            return
        self._flightrec_dumped.add(qid)
        self.flight_recorder.dump(qid, reason, site=qid.originator)

    def _arm_stats_sampler(self) -> None:
        """Start the virtual-time stats sampler if streaming is on.

        The sampler reschedules itself only while other events are
        pending, so it can never keep an otherwise-dead simulation
        (lost termination) ticking forever.
        """
        if self.stats_timeline is None or self._stats_sampler_armed:
            return
        self._stats_sampler_armed = True
        self.sim.schedule(self._stats_stream_s, self._stats_sample)

    def _stats_sample(self) -> None:
        sites: Dict[str, Dict[str, object]] = {}
        for site, node in self.nodes.items():
            sample = node.stats.sample()
            sample["work_depth"] = node.work_depth
            sites[site] = sample
        self.stats_timeline.append(self.sim.now, sites)
        tracer = next(iter(self.nodes.values())).tracer
        if tracer is not None:
            tracer.emit("cluster", "stats_push", "", sites=len(sites))
        inflight = sum(1 for q in self._submitted_at if q not in self._completed)
        if inflight and self.sim.pending > 0:
            self.sim.schedule(self._stats_stream_s, self._stats_sample)
        else:
            self._stats_sampler_armed = False

    def _next_qid(self, originator: str) -> QueryId:
        self._seq += 1
        return QueryId(self._seq, originator)

    def _admit(self, client: str) -> None:
        """Admission control: spend one rate-limit token or bounce."""
        if self._qos_limiter is None:
            return
        if self._qos_limiter.try_acquire(client):
            return
        self.qos_bounces += 1
        metrics = getattr(self, "metrics", None)
        if metrics is not None:
            metrics.counter("qos.overload_bounces_total", client=client).inc()
        raise Overloaded(client, retry_after_s=self._qos_limiter.retry_after_s(client))

    def _on_complete(self, qid: QueryId, result: QueryResult) -> None:
        handle = self._deadline_handles.pop(qid, None)
        if handle is not None:
            handle.cancel()
        node = self.nodes[qid.originator]
        ctx = node.contexts[qid]
        for other in self.nodes.values():
            other_ctx = other.contexts.get(qid)
            if other_ctx is not None:
                result.stats.merge(other_ctx.execution.result.stats)
        outcome = QueryOutcome(
            qid=qid,
            result=result,
            submitted_at=self._submitted_at.get(qid, 0.0),
            completed_at=self.sim.now,
            client_link_s=self.costs.client_link_s,
            partition_counts=dict(ctx.partition_counts) if ctx.partition_counts else None,
        )
        metrics = getattr(self, "metrics", None)
        if metrics is not None:
            metrics.histogram("cluster.response_time_s").observe(outcome.response_time)
            metrics.counter("cluster.queries_completed_total").inc()
        self._completed[qid] = outcome
        self._maybe_finalize_membership()
