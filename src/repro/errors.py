"""Exception hierarchy for the HyperFile reproduction.

All library-raised exceptions derive from :class:`HyperFileError` so that
applications can catch everything the library produces with a single
``except`` clause while still being able to discriminate failure classes.
"""

from __future__ import annotations


class HyperFileError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(HyperFileError, ValueError):
    """A deployment configuration is invalid or names a capability the
    selected transport cannot honour.

    Raised at :class:`~repro.config.ClusterConfig` construction time for
    combinations that can never work (e.g. simulator-only knobs together
    with ``processes=True``) and by ``require_default`` when a transport
    rejects a field it does not implement — always *before* any process
    is spawned or socket bound, never deep inside a transport at first
    use.
    """


class ObjectNotFound(HyperFileError, KeyError):
    """An object id could not be resolved to a stored object.

    Raised by stores and by the naming service when the birth site has no
    record of the object (i.e. the object never existed or was deleted).
    """

    def __init__(self, oid: object, site: object = None) -> None:
        self.oid = oid
        self.site = site
        where = f" at site {site!r}" if site is not None else ""
        super().__init__(f"object {oid} not found{where}")


class DuplicateObject(HyperFileError):
    """An object with the same id was stored twice at one site."""


class QuerySyntaxError(HyperFileError, ValueError):
    """The textual query could not be parsed.

    Carries the offending position so interactive applications can point at
    the error.
    """

    def __init__(self, message: str, position: int = -1, text: str = "") -> None:
        self.position = position
        self.text = text
        if position >= 0 and text:
            snippet = text[max(0, position - 20) : position + 20]
            message = f"{message} (at position {position}: ...{snippet!r}...)"
        super().__init__(message)


class QueryValidationError(HyperFileError, ValueError):
    """A structurally well-formed query violates a static rule.

    Examples: dereferencing a matching variable that is never bound, a
    bounded iterator with a non-positive count, or nesting deeper than the
    configured limit.
    """


class UnknownSite(HyperFileError, KeyError):
    """A message was addressed to a site the cluster does not contain."""

    def __init__(self, site: object) -> None:
        self.site = site
        super().__init__(f"unknown site {site!r}")


class SiteUnavailable(HyperFileError):
    """The target site is marked down (used for partial-result semantics).

    The paper requires that "lack of cooperation from one node must not
    shut down the entire service"; transports raise/record this instead of
    blocking forever.
    """

    def __init__(self, site: object) -> None:
        self.site = site
        super().__init__(f"site {site!r} is unavailable")


class TerminationProtocolError(HyperFileError):
    """Invariant violation inside a termination detector.

    For the weighted-message detector this means credit was lost or
    duplicated (conservation violated); for Dijkstra-Scholten it means an
    acknowledgement arrived for an edge that was never created.
    """


class TransportClosed(HyperFileError):
    """An operation was attempted on a transport after shutdown."""


class ChildProcessDied(HyperFileError):
    """A site's child process died while the parent still needed it.

    Raised by the process-mode control channel when a request cannot be
    sent to — or a reply can no longer arrive from — a child whose
    process or control link is gone.  Always names the site, so callers
    never see a bare timeout for what is really a dead process.
    """

    def __init__(self, site: object, detail: str = "") -> None:
        self.site = site
        suffix = f": {detail}" if detail else ""
        super().__init__(f"child process for site {site!r} died{suffix}")


class MembershipError(HyperFileError):
    """An invalid membership transition was requested.

    Examples: joining a site that is already an up member, gracefully
    leaving the last active site, failing a site that already departed.
    The view is never left half-changed — the transition is rejected
    before any listener fires.
    """

    def __init__(self, site: object, detail: str = "") -> None:
        self.site = site
        suffix = f": {detail}" if detail else ""
        super().__init__(f"invalid membership transition for site {site!r}{suffix}")


class SiteDeparted(HyperFileError):
    """A query was submitted at a site that is leaving or has departed.

    A departing originator could never deliver its answer — its drain
    window exists to finish work already in hand, not to take on more —
    so the submit is rejected with a typed error instead of accepting
    work that would hang or vanish with the site.
    """

    def __init__(self, site: object, status: str = "departed") -> None:
        self.site = site
        self.status = status
        super().__init__(
            f"cannot originate a query at site {site!r}: membership status is {status!r}"
        )


class QueryTimeout(HyperFileError):
    """A query's originator-side deadline expired before termination.

    The originator reclaims outstanding credit, abandons local work, and
    completes the query with whatever results arrived, flagged
    ``partial=True``.  Clients that asked for ``on_deadline="raise"`` get
    this exception instead; the partial result rides on it.
    """

    def __init__(self, qid: object, deadline_s: float, result: object = None) -> None:
        self.qid = qid
        self.deadline_s = deadline_s
        self.result = result
        super().__init__(f"query {qid} exceeded its {deadline_s}s deadline (partial results)")


class TerminationLost(HyperFileError):
    """A query can no longer terminate: detector state was lost in flight.

    Raised by ``wait`` on every transport when the cluster goes idle (or a
    hard timeout fires) before the originator's termination detector could
    declare completion — typically because work messages were dropped by
    an unreliable network and took their credit with them.

    Carries uniform diagnostics across transports: the missing credit
    (``deficit``, a :class:`fractions.Fraction` for the weighted detector,
    ``None`` for detectors without a credit ledger) and how many envelopes
    the transport recorded as undeliverable.
    """

    def __init__(
        self,
        qid: object,
        deficit: object = None,
        undeliverable: int = 0,
        site: object = None,
    ) -> None:
        self.qid = qid
        self.deficit = deficit
        self.undeliverable = undeliverable
        self.site = site
        detail = []
        if deficit is not None:
            detail.append(f"credit deficit {deficit}")
        if undeliverable:
            detail.append(f"{undeliverable} undeliverable envelope(s)")
        if site is not None:
            detail.append(f"site {site!r} lost")
        suffix = f" ({', '.join(detail)})" if detail else ""
        super().__init__(
            f"query {qid} cannot terminate: the termination detector never fired{suffix}"
        )


class QueryLimitExceeded(HyperFileError):
    """A query exceeded a configured resource limit.

    Limits protect a shared server against runaway queries (e.g. a ``*``
    iterator over a huge connected component when the application expected
    a small neighbourhood).
    """

    def __init__(self, limit_name: str, limit: int) -> None:
        self.limit_name = limit_name
        self.limit = limit
        super().__init__(f"query exceeded limit {limit_name}={limit}")


class Overloaded(HyperFileError):
    """A submit was bounced by admission control (see docs/QOS.md).

    The per-client token bucket was empty, so the query was rejected
    *before* anything entered the cluster — an explicit bounce the
    client can retry after ``retry_after_s``, instead of work silently
    queueing behind an already-saturated service.
    """

    def __init__(self, client: str, retry_after_s: float = 0.0) -> None:
        self.client = client
        self.retry_after_s = retry_after_s
        super().__init__(
            f"submit bounced for client {client!r}: rate limit exceeded "
            f"(retry after {retry_after_s:.3f}s)"
        )
