"""Command-line interface: explore HyperFile from a terminal.

Nine subcommands::

    python -m repro demo                 # one-minute guided tour
    python -m repro repl [--sites N]     # interactive query shell over the §5 workload
    python -m repro experiments [-n Q]   # quick paper-vs-measured tables
    python -m repro trace [--chrome F]   # run a traced query, export its span timeline
    python -m repro profile              # per-query critical-path + credit profile
    python -m repro top [--frames N]     # streaming per-site stats frames under load
    python -m repro cache-stats [-n Q]   # cache hit/suppression counters vs uncached
    python -m repro qos-stats [-n Q]     # admission / shed / backpressure counters under a burst
    python -m repro explore [-n RUNS]    # schedule-exploration sweep with crash injection

Every subcommand takes ``--transport`` (sim, threaded, sockets, async);
``trace``, ``profile`` and ``top`` additionally take ``--processes`` to
run the async transport in one-OS-process-per-site mode, exercising the
cross-process telemetry plane (span shipping, streamed stats, flight
recorder — see ``docs/OBSERVABILITY.md``).  ``top`` drives a workload
with streaming stats armed and prints the last N timeline frames —
per-site queue depth, traffic and busy time over time.  ``trace
--flightrec DIR`` additionally arms the flight recorder and dumps its
merged ring (JSON-lines + Perfetto) into DIR after the run.

``cache-stats`` runs the same repeated query script over two identical
clusters — one with cross-query caching (:mod:`repro.cache`) on, one
without — and prints the per-site cache counters next to the remote-work
messages each cluster actually sent.

``qos-stats`` fires one burst of queries from two tenants (half
``interactive``, half ``batch``) at a cluster running the QoS stack
(:mod:`repro.qos`) and prints what the protections did: per-site shed /
backpressure / throttle counters, the admission-control bounces each
tenant took, and the interactive-class response time next to an
unprotected run of the same burst.

``explore`` sweeps seeded random-walk event orderings of a replicated
closure workload (:mod:`repro.sim.explore`), crashing and recovering a
replica holder mid-flight on every run, and reports how many distinct
interleavings completed with oracle-equal results and a zero
termination-credit deficit — the command-line view of what
``tests/schedules/`` asserts.  With ``--membership`` each run
additionally injects a join, a graceful leave or a permanent crash
mid-query (``docs/MEMBERSHIP.md``), and the report adds whether every
run restored k copies at quiesce without losing an object;
``--sig-log PATH`` appends each run's schedule signature for CI
artifact diffing.

``trace`` runs one closure query over the paper's workload with causal
tracing on and exports the event timeline — ``--jsonl`` for one JSON
object per event, ``--chrome`` for a Chrome trace-event document that
loads in Perfetto / ``chrome://tracing`` (sites as lanes, messages as
flow arrows).  ``profile`` runs the same query and prints the span-tree
health check, the critical path, and the credit-flow audit instead.

The REPL loads the paper's synthetic database, binds ``Root`` to its
root object and ``All`` to every object, and evaluates one query per
line.  Meta-commands start with a colon::

    :help               this text
    :sets               list named sets and sizes
    :members NAME [k]   show up to k member ids of a set
    :trace on|off       record / stop recording a query timeline
    :timeline [k]       print the last recorded timeline (k events)
    :lanes              per-site swim-lane view of the trace
    :profile            critical-path profile of the last traced query
    :export FILE        write the trace (.jsonl, or Chrome JSON otherwise)
    :stats              cluster message counters
    :quit
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from .client.session import Session
from .errors import HyperFileError
from .metrics.report import render_table
from .tracing import QueryTracer
from .workload import WorkloadSpec, build_graph, generate_into_cluster


def _build_cluster(transport: str, sites: int, **config_kwargs):
    """Build any registered transport with a consolidated config."""
    from .api import make_cluster
    from .config import ClusterConfig

    return make_cluster(transport, sites, config=ClusterConfig(**config_kwargs))


def main(argv: Optional[List[str]] = None) -> int:
    from .api import transport_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="HyperFile distributed filtering queries (ICDCS '91 reproduction)",
    )
    # --transport works in both positions: `repro --transport async demo`
    # and `repro demo --transport async` (the subcommand copy, inherited
    # via the parent parser below, wins when both are given).
    transports = transport_names()
    parser.add_argument(
        "--transport", choices=transports, default="sim",
        help="cluster transport to run on (default: sim)",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--transport", choices=transports, default=argparse.SUPPRESS,
        help="cluster transport to run on (default: sim)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="one-minute guided tour", parents=[common])

    repl = sub.add_parser(
        "repl", help="interactive query shell over the paper's workload", parents=[common]
    )
    repl.add_argument("--sites", type=int, default=3, choices=(1, 3, 9))
    repl.add_argument("--objects", type=int, default=270)

    experiments = sub.add_parser(
        "experiments", help="quick paper-vs-measured tables", parents=[common]
    )
    experiments.add_argument("-n", "--queries", type=int, default=3)

    trace = sub.add_parser(
        "trace", help="run a traced query and export its span timeline", parents=[common]
    )
    profile = sub.add_parser(
        "profile", help="critical-path profile of one traced query", parents=[common]
    )
    top = sub.add_parser(
        "top", help="streaming per-site stats frames under load", parents=[common]
    )
    for p in (trace, profile, top):
        p.add_argument("--sites", type=int, default=3, choices=(1, 3, 9))
        p.add_argument("--objects", type=int, default=90)
        p.add_argument("--pointer", default="Tree", choices=("Tree", "Chain"))
        p.add_argument("--processes", action="store_true",
                       help="one OS process per site (async transport only)")
    trace.add_argument("--jsonl", metavar="PATH", help="write events as JSON lines")
    trace.add_argument("--chrome", metavar="PATH",
                       help="write a Chrome trace-event document (Perfetto-loadable)")
    trace.add_argument("--validate", action="store_true",
                       help="validate the Chrome trace-event schema after writing")
    trace.add_argument("--flightrec", metavar="DIR",
                       help="arm the flight recorder and dump its ring into DIR")
    top.add_argument("--frames", type=int, default=8,
                     help="timeline frames to print (default 8)")
    top.add_argument("--interval", type=float, default=0.05,
                     help="stats streaming period in seconds (default 0.05)")

    cache_stats = sub.add_parser(
        "cache-stats",
        help="run a repeated workload cached vs uncached, print counters",
        parents=[common],
    )
    cache_stats.add_argument("--sites", type=int, default=3, choices=(1, 3, 9))
    cache_stats.add_argument("--objects", type=int, default=90)
    cache_stats.add_argument("-n", "--queries", type=int, default=8)
    cache_stats.add_argument("--pointer", default="Tree", choices=("Tree", "Chain"))

    qos_stats = sub.add_parser(
        "qos-stats",
        help="fire a two-tenant burst at the QoS stack, print counters",
        parents=[common],
    )
    qos_stats.add_argument("--sites", type=int, default=3, choices=(1, 3, 9))
    qos_stats.add_argument("--objects", type=int, default=90)
    qos_stats.add_argument("-n", "--queries", type=int, default=8,
                           help="queries per tenant in the burst (default 8)")
    qos_stats.add_argument("--pointer", default="Tree", choices=("Tree", "Chain"))

    explore = sub.add_parser(
        "explore",
        help="schedule-exploration sweep with crash injection",
        parents=[common],
    )
    explore.add_argument("-n", "--runs", type=int, default=200,
                         help="seeded interleavings to replay (default 200)")
    explore.add_argument("-k", "--replicas", type=int, default=2,
                         help="replication factor (default 2; 1 = replica-free)")
    explore.add_argument("--no-crashes", action="store_true",
                         help="reorder events only, inject no crashes")
    explore.add_argument("--membership", action="store_true",
                         help="inject joins, graceful leaves and permanent "
                              "crashes mid-query (implies k-replicated "
                              "membership cluster)")
    explore.add_argument("--sig-log", metavar="PATH",
                         help="append one schedule signature per run to PATH "
                              "(CI uses this to diff explored interleavings)")

    args = parser.parse_args(argv)
    transport = args.transport
    if getattr(args, "processes", False) and transport != "async":
        parser.error("--processes requires --transport async")
    if args.command == "demo":
        return run_demo(transport=transport)
    if args.command == "repl":
        return run_repl(sites=args.sites, n_objects=args.objects, transport=transport)
    if args.command == "experiments":
        return run_experiments(args.queries, transport=transport)
    if args.command == "trace":
        return run_trace(
            sites=args.sites, n_objects=args.objects, pointer=args.pointer,
            jsonl=args.jsonl, chrome=args.chrome, validate=args.validate,
            flightrec=args.flightrec, processes=args.processes,
            transport=transport,
        )
    if args.command == "profile":
        return run_profile(
            sites=args.sites, n_objects=args.objects, pointer=args.pointer,
            processes=args.processes, transport=transport,
        )
    if args.command == "top":
        return run_top(
            sites=args.sites, n_objects=args.objects, pointer=args.pointer,
            frames=args.frames, interval=args.interval,
            processes=args.processes, transport=transport,
        )
    if args.command == "cache-stats":
        return run_cache_stats(
            sites=args.sites, n_objects=args.objects,
            n_queries=args.queries, pointer=args.pointer, transport=transport,
        )
    if args.command == "qos-stats":
        return run_qos_stats(
            sites=args.sites, n_objects=args.objects,
            n_queries=args.queries, pointer=args.pointer, transport=transport,
        )
    if args.command == "explore":
        return run_explore(
            n_runs=args.runs, k=args.replicas, crashes=not args.no_crashes,
            membership=args.membership, sig_log=args.sig_log,
            transport=transport,
        )
    return 2  # pragma: no cover - argparse enforces the choices


# --------------------------------------------------------------------------
# demo
# --------------------------------------------------------------------------


def run_demo(out: Optional[IO[str]] = None, transport: str = "sim") -> int:
    out = out if out is not None else sys.stdout
    from .client import HyperFile
    from .core import keyword_tuple, pointer_tuple, string_tuple

    print(f"Building a 3-site HyperFile service ({transport} transport)...", file=out)
    hf = HyperFile(sites=3, transport=transport)
    survey = hf.create("site2", string_tuple("Title", "A Survey"), keyword_tuple("Distributed"))
    hf.update(survey, pointer_tuple("Reference", survey))
    notes = hf.create("site1", string_tuple("Title", "Server Notes"),
                      keyword_tuple("Distributed"), pointer_tuple("Reference", survey))
    intro = hf.create("site0", string_tuple("Title", "HyperFile"),
                      keyword_tuple("Distributed"), pointer_tuple("Reference", notes))
    hf.define_set("S", [intro])
    print("Query: follow Reference pointers transitively, keep 'Distributed':", file=out)
    query = ('S [ (Pointer, "Reference", ?X) | ^^X ]* '
             '(Keyword, "Distributed", ?) (String, "Title", ->title) -> T')
    print(f"  {query}", file=out)
    hf.query(query)
    for title in hf.retrieve("title"):
        print(f"  found: {title}", file=out)
    clock = "simulated" if transport == "sim" else "wall-clock"
    print(f"{clock} response time: {hf.last_response_time * 1000:.0f} ms", file=out)
    print("(try `python -m repro repl` for the full 270-object workload)", file=out)
    hf.close()
    return 0


# --------------------------------------------------------------------------
# repl
# --------------------------------------------------------------------------


def run_repl(
    sites: int = 3,
    n_objects: int = 270,
    stdin: Optional[IO[str]] = None,
    out: Optional[IO[str]] = None,
    transport: str = "sim",
) -> int:
    stdin = stdin if stdin is not None else sys.stdin
    out = out if out is not None else sys.stdout
    cluster = _build_cluster(transport, sites)
    spec = WorkloadSpec().scaled(n_objects)
    workload = generate_into_cluster(cluster, spec, build_graph(n=n_objects, seed=spec.seed))
    session = Session(cluster)
    session.define_set("Root", [workload.root])
    session.define_set("All", list(workload.oids))
    tracer: Optional[QueryTracer] = None

    clock = "simulated" if transport == "sim" else "wall-clock"
    print(
        f"HyperFile repl: {n_objects} objects on {sites} site(s), "
        f"{transport} transport; sets Root and All are bound.  :help for commands.",
        file=out,
    )
    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(":"):
            if not _meta_command(line, session, cluster, out, tracer_box := [tracer]):
                return 0
            tracer = tracer_box[0]
            continue
        try:
            results = session.query(line)
        except HyperFileError as exc:
            print(f"error: {exc}", file=out)
            continue
        rt = session.last_response_time or 0.0
        print(f"{len(results)} objects in {rt * 1000:.0f} ms ({clock})", file=out)
        for oid in results[:10]:
            print(f"  {oid}", file=out)
        if len(results) > 10:
            print(f"  ... {len(results) - 10} more", file=out)
        for target in list(session.bindings):
            values = session.bindings.pop(target)
            preview = ", ".join(repr(v)[:40] for v in values[:5])
            print(f"  ->{target}: {preview}" + (" ..." if len(values) > 5 else ""), file=out)
    cluster.close()
    return 0


def _meta_command(line: str, session: Session, cluster, out: IO[str], tracer_box) -> bool:
    """Handle a ':' command; returns False to exit the repl."""
    parts = line.split()
    command = parts[0]
    if command in (":quit", ":q", ":exit"):
        print("bye", file=out)
        return False
    if command == ":help":
        print(__doc__, file=out)
    elif command == ":sets":
        for name in sorted(session._sets):
            print(f"  {name}: {session.count_set(name)} objects", file=out)
    elif command == ":members":
        if len(parts) < 2:
            print("usage: :members NAME [k]", file=out)
        else:
            limit = int(parts[2]) if len(parts) > 2 else 10
            try:
                for oid in session.set_members(parts[1])[:limit]:
                    print(f"  {oid}", file=out)
            except HyperFileError as exc:
                print(f"error: {exc}", file=out)
    elif command == ":trace":
        if len(parts) > 1 and parts[1] == "on":
            tracer_box[0] = QueryTracer()
            cluster.attach_tracer(tracer_box[0])
            print("tracing on", file=out)
        else:
            cluster.detach_tracer()
            tracer_box[0] = None
            print("tracing off", file=out)
    elif command == ":lanes":
        tracer = tracer_box[0]
        if tracer is None:
            print("tracing is off (:trace on)", file=out)
        else:
            print(tracer.render_lanes(), file=out)
    elif command == ":timeline":
        tracer = tracer_box[0]
        if tracer is None:
            print("tracing is off (:trace on)", file=out)
        else:
            limit = int(parts[1]) if len(parts) > 1 else 40
            print(tracer.render(limit=limit), file=out)
    elif command == ":profile":
        tracer = tracer_box[0]
        if tracer is None:
            print("tracing is off (:trace on)", file=out)
        elif session.last_outcome is None:
            print("no query run yet", file=out)
        else:
            from .profiling import render_profile

            print(render_profile(tracer, session.last_outcome.qid), file=out)
    elif command == ":export":
        tracer = tracer_box[0]
        if tracer is None:
            print("tracing is off (:trace on)", file=out)
        elif len(parts) < 2:
            print("usage: :export FILE (.jsonl, or Chrome trace JSON otherwise)", file=out)
        else:
            path = parts[1]
            if path.endswith(".jsonl"):
                n = tracer.write_jsonl(path)
                print(f"wrote {n} events to {path}", file=out)
            else:
                n = tracer.write_chrome_trace(path)
                print(f"wrote {n} trace events to {path} (load in Perfetto)", file=out)
    elif command == ":stats":
        totals = cluster.total_stats()
        print(f"  messages sent: {totals.messages_sent}", file=out)
        print(f"  bytes sent: {totals.bytes_sent}", file=out)
        print(f"  objects processed: {totals.objects_processed}", file=out)
    else:
        print(f"unknown command {command} (:help)", file=out)
    return True


# --------------------------------------------------------------------------
# trace / profile
# --------------------------------------------------------------------------


def _traced_closure_run(
    sites: int,
    n_objects: int,
    pointer: str,
    transport: str = "sim",
    processes: bool = False,
    flightrec: Optional[str] = None,
):
    """One traced closure query over the paper workload (shared by the
    ``trace`` and ``profile`` subcommands)."""
    from .workload import query_script

    config_kwargs = {}
    if processes:
        config_kwargs["processes"] = True
    if flightrec is not None:
        from .tracing import FlightRecorderConfig

        config_kwargs["flight_recorder"] = FlightRecorderConfig(dump_dir=flightrec)
    cluster = _build_cluster(transport, sites, **config_kwargs)
    spec = WorkloadSpec().scaled(n_objects)
    workload = generate_into_cluster(cluster, spec, build_graph(n=n_objects, seed=spec.seed))
    tracer = QueryTracer()
    cluster.attach_tracer(tracer)
    query = next(iter(query_script(pointer, "Rand10p", count=1, spec=spec)))
    outcome = cluster.run_query(query, [workload.root], timeout_s=120.0)
    if flightrec is not None:
        # A healthy run never dumps on its own; force one so the CLI
        # always leaves an inspectable artifact (CI uploads this).
        cluster._flightrec_dump(outcome.qid, "cli")
    cluster.close()
    return cluster, tracer, outcome


def run_trace(
    sites: int = 3,
    n_objects: int = 90,
    pointer: str = "Tree",
    jsonl: Optional[str] = None,
    chrome: Optional[str] = None,
    validate: bool = False,
    flightrec: Optional[str] = None,
    processes: bool = False,
    out: Optional[IO[str]] = None,
    transport: str = "sim",
) -> int:
    out = out if out is not None else sys.stdout
    from .profiling import tree_report
    from .tracing import validate_chrome_trace

    _, tracer, outcome = _traced_closure_run(
        sites, n_objects, pointer, transport, processes=processes, flightrec=flightrec
    )
    clock = "simulated" if transport == "sim" else "wall-clock"
    mode = f"{transport}+processes" if processes else transport
    print(
        f"traced {outcome.qid}: {len(tracer.events)} events, "
        f"{len(outcome.result.oids)} results in {outcome.response_time * 1000:.0f} ms "
        f"({clock}, {mode})",
        file=out,
    )
    print(tree_report(tracer, outcome.qid).describe(), file=out)
    if jsonl:
        n = tracer.write_jsonl(jsonl, qid=outcome.qid)
        print(f"wrote {n} events to {jsonl}", file=out)
    if chrome:
        n = tracer.write_chrome_trace(chrome, qid=outcome.qid)
        print(f"wrote {n} trace events to {chrome} (load in Perfetto)", file=out)
        if validate:
            counts = validate_chrome_trace(tracer.to_chrome_trace(qid=outcome.qid))
            print(f"chrome trace schema OK: {counts}", file=out)
    if flightrec:
        import glob
        import os

        dumped = sorted(glob.glob(os.path.join(flightrec, "flightrec-*")))
        for path in dumped:
            print(f"flight recorder: {path}", file=out)
    if not jsonl and not chrome:
        print(tracer.render_lanes(), file=out)
    return 0


def run_profile(
    sites: int = 3,
    n_objects: int = 90,
    pointer: str = "Tree",
    processes: bool = False,
    out: Optional[IO[str]] = None,
    transport: str = "sim",
) -> int:
    out = out if out is not None else sys.stdout
    from .profiling import render_profile

    _, tracer, outcome = _traced_closure_run(
        sites, n_objects, pointer, transport, processes=processes
    )
    print(render_profile(tracer, outcome.qid), file=out)
    return 0


# --------------------------------------------------------------------------
# top
# --------------------------------------------------------------------------


def run_top(
    sites: int = 3,
    n_objects: int = 90,
    pointer: str = "Tree",
    frames: int = 8,
    interval: float = 0.05,
    processes: bool = False,
    out: Optional[IO[str]] = None,
    transport: str = "sim",
) -> int:
    """Drive a small workload with streaming stats armed and print the
    last ``frames`` timeline rows — per-site queue depth, traffic and
    busy time over time (virtual time on sim, monotonic elsewhere)."""
    out = out if out is not None else sys.stdout
    from .workload import query_script

    config_kwargs = {"stats_stream_s": interval}
    if processes:
        config_kwargs["processes"] = True
    cluster = _build_cluster(transport, sites, **config_kwargs)
    spec = WorkloadSpec().scaled(n_objects)
    workload = generate_into_cluster(cluster, spec, build_graph(n=n_objects, seed=spec.seed))
    for query in query_script(pointer, "Rand10p", count=3, spec=spec):
        cluster.run_query(query, [workload.root], timeout_s=120.0)
    if transport != "sim":
        import time as _time

        deadline = _time.monotonic() + 5.0
        while _time.monotonic() < deadline and len(cluster.stats_timeline) < frames:
            _time.sleep(interval)
    samples = cluster.stats_timeline.samples[-frames:]
    clock = "virtual" if transport == "sim" else "monotonic"
    print(
        f"top: {len(samples)} frame(s) at {interval * 1000:.0f} ms period "
        f"({clock} clock), {cluster.stats_timeline.evicted} evicted",
        file=out,
    )
    t0 = samples[0]["t"] if samples else 0.0
    for sample in samples:
        rows = []
        for site in sorted(sample["sites"]):
            fields = sample["sites"][site]
            rows.append(
                {
                    "site": site,
                    "depth": fields.get("work_depth", 0),
                    "msgs_out": sum(fields.get("messages_sent", {}).values()),
                    "bytes_out": fields.get("bytes_sent", 0),
                    "busy_s": round(fields.get("busy_seconds", 0.0), 4),
                    "drains": fields.get("drains", 0),
                }
            )
        print(render_table(rows, title=f"t=+{sample['t'] - t0:.3f}s"), file=out)
    cluster.close()
    return 0


# --------------------------------------------------------------------------
# cache-stats
# --------------------------------------------------------------------------


#: Message kinds that carry remote *work* (as opposed to results,
#: controls, or fetches) — the traffic the caching layer tries to save.
WORK_MESSAGES = ("DerefRequest", "BatchedQuery")


def _work_sent(node) -> int:
    return sum(node.stats.messages_sent.get(kind, 0) for kind in WORK_MESSAGES)


def run_cache_stats(
    sites: int = 3,
    n_objects: int = 90,
    n_queries: int = 8,
    pointer: str = "Tree",
    out: Optional[IO[str]] = None,
    transport: str = "sim",
) -> int:
    out = out if out is not None else sys.stdout
    from .cache import CacheConfig
    from .workload import query_script

    spec = WorkloadSpec().scaled(n_objects)
    graph = build_graph(n=n_objects, seed=spec.seed)
    # The same script twice over: the second pass is where the caches
    # (and the paper's repeated-browsing access pattern) pay off.
    script = list(query_script(pointer, "Rand10p", count=n_queries, spec=spec)) * 2

    def run(caching):
        cluster = _build_cluster(transport, sites, caching=caching)
        workload = generate_into_cluster(cluster, spec, graph)
        for query in script:
            cluster.run_query(query, [workload.root])
        return cluster

    plain = run(None)
    cached = run(CacheConfig())

    rows = []
    for site, node in cached.nodes.items():
        s = node.stats
        rows.append(
            {
                "site": site,
                "frag_hit": s.cache_hits,
                "frag_miss": s.cache_misses,
                "query_hit": s.query_cache_hits,
                "bloom_supp": s.sends_suppressed_bloom,
                "summ_out": s.summaries_sent,
                "summ_in": s.summaries_received,
                "work_sent": _work_sent(node),
            }
        )
    print(
        render_table(rows, title=f"cache counters, {len(script)} queries on {sites} site(s)"),
        file=out,
    )
    plain_work = sum(_work_sent(node) for node in plain.nodes.values())
    cached_work = sum(_work_sent(node) for node in cached.nodes.values())
    saved = plain_work - cached_work
    pct = (100.0 * saved / plain_work) if plain_work else 0.0
    print(f"  remote work messages: {plain_work} uncached -> {cached_work} cached "
          f"({saved} saved, {pct:.0f}%)", file=out)
    print(f"  bytes sent: {plain.total_stats().bytes_sent} uncached -> "
          f"{cached.total_stats().bytes_sent} cached", file=out)
    plain.close()
    cached.close()
    return 0


# --------------------------------------------------------------------------
# qos-stats
# --------------------------------------------------------------------------


def run_qos_stats(
    sites: int = 3,
    n_objects: int = 90,
    n_queries: int = 8,
    pointer: str = "Tree",
    out: Optional[IO[str]] = None,
    transport: str = "sim",
) -> int:
    out = out if out is not None else sys.stdout
    from .api import credit_deficit
    from .errors import Overloaded
    from .qos import QoSConfig
    from .workload import query_script

    spec = WorkloadSpec().scaled(n_objects)
    graph = build_graph(n=n_objects, seed=spec.seed)
    # Two tenants, n_queries each, every query arriving in one burst at
    # virtual t=0 — the worst case the admission control is sized for.
    script = list(query_script(pointer, "Rand10p", count=2 * n_queries, spec=spec))
    qos = QoSConfig(
        rate_limit_qps=0.2,
        rate_burst=max(2, n_queries // 2),
        high_watermark=8,
        low_watermark=4,
        shed_watermark=16,
    )

    def run(config):
        cluster = _build_cluster(transport, sites, qos=config)
        workload = generate_into_cluster(cluster, spec, graph)
        submitted = []
        bounced = {"interactive": 0, "batch": 0}
        for i, query in enumerate(script):
            priority = "interactive" if i % 2 == 0 else "batch"
            try:
                qid = cluster.submit(
                    query, [workload.root], priority=priority, client=priority
                )
            except Overloaded:
                bounced[priority] += 1
            else:
                submitted.append((qid, priority))
        if hasattr(cluster, "run"):  # the simulator needs its event loop driven
            cluster.run()
        else:  # wall-clock transports complete on their own; block for each
            for qid, _ in submitted:
                cluster.wait(qid, timeout_s=60.0)
        times = {"interactive": [], "batch": []}
        shed_partials = 0
        deficits = []
        for qid, priority in submitted:
            outcome = cluster.outcome(qid)
            times[priority].append(outcome.response_time)
            if outcome.result.partial:
                shed_partials += 1
            deficit = credit_deficit(cluster.nodes, qid)
            if deficit is not None:
                deficits.append(deficit)
        return cluster, times, bounced, shed_partials, deficits

    open_cluster, open_times, _, _, _ = run(None)
    open_cluster.close()
    cluster, times, bounced, shed_partials, deficits = run(qos)

    rows = []
    for site, node in cluster.nodes.items():
        s = node.stats
        rows.append(
            {
                "site": site,
                "shed": s.work_shed,
                "bp_trans": s.backpressure_transitions,
                "throttled": s.sends_throttled,
                "work_sent": _work_sent(node),
            }
        )
    print(
        render_table(
            rows, title=f"qos counters, {len(script)} burst arrivals on {sites} site(s)"
        ),
        file=out,
    )

    def mean(vals):
        return sum(vals) / len(vals) if vals else 0.0

    admitted = sum(len(v) for v in times.values())
    print(
        f"  admission: {admitted} admitted, "
        f"{bounced['interactive']} interactive + {bounced['batch']} batch bounced",
        file=out,
    )
    print(
        f"  shed partials: {shed_partials} "
        f"(work items shed: {cluster.total_stats().work_shed})",
        file=out,
    )
    print(
        f"  interactive mean response: {mean(open_times['interactive']):.2f}s "
        f"unprotected -> {mean(times['interactive']):.2f}s with qos",
        file=out,
    )
    credit = "exact" if all(d == 0 for d in deficits) else "LEAKED"
    print(f"  termination credit: {credit} ({len(deficits)} queries audited)", file=out)
    cluster.close()
    return 0


# --------------------------------------------------------------------------
# explore
# --------------------------------------------------------------------------


def run_explore(
    n_runs: int = 200,
    k: int = 2,
    crashes: bool = True,
    membership: bool = False,
    sig_log: Optional[str] = None,
    out: Optional[IO[str]] = None,
    transport: str = "sim",
) -> int:
    out = out if out is not None else sys.stdout
    if transport != "sim":
        print(
            "explore replays deterministic event interleavings, which only "
            f"exist on the simulator; --transport {transport} is not applicable "
            "(drop the flag or use --transport sim)",
            file=out,
        )
        return 2
    from .core import keyword_tuple, pointer_tuple
    from .membership import MembershipConfig
    from .replication import ReplicationConfig
    from .sim.explore import (
        CrashPoint,
        CrashPermanentPoint,
        JoinPoint,
        LeavePoint,
        explore_random,
        run_schedule,
        summarize,
    )

    closure = 'S [ (Pointer,"Ref",?X) ^^X ]* (Keyword,"K",?) -> T'
    sites, length = 3, 8
    if membership and k < 2:
        print("--membership needs k >= 2 (a permanent crash with one copy "
              "is data loss, not a schedule)", file=out)
        return 2

    def load(cluster):
        stores = [cluster.store(s) for s in cluster.sites]
        oids = []
        for i in range(length):
            key = keyword_tuple("K") if i % 2 == 0 else keyword_tuple("miss")
            oids.append(stores[i % len(stores)].create([key]).oid)
        for i in range(length - 1):
            store = stores[i % len(stores)]
            store.replace(store.get(oids[i]).with_tuple(pointer_tuple("Ref", oids[i + 1])))
        return oids

    def make_setup(factor):
        def setup():
            cluster = _build_cluster(
                "sim", sites,
                replication=ReplicationConfig(k=factor),
                membership=MembershipConfig() if membership and factor > 1 else None,
            )
            oids = load(cluster)
            cluster.replicate_all()
            return cluster, oids[:1]

        return setup

    oracle = run_schedule(make_setup(1), closure, originator="site0")
    assert oracle.status == "completed" and oracle.deficit == 0

    def crash_for(seed):
        site = f"site{1 + seed % (sites - 1)}"
        return (CrashPoint(site, at_decision=2 + seed % 7,
                           recover_at_decision=20 + seed % 9),)

    def membership_for(seed):
        victim = f"site{1 + seed % (sites - 1)}"
        at = 2 + seed % 11
        kind = seed % 4
        if kind == 0:
            return (JoinPoint(f"site{sites}", at),)
        if kind == 1:
            return (LeavePoint(victim, at),)
        if kind == 2:
            return (CrashPermanentPoint(victim, at),)
        return (JoinPoint(f"site{sites}", at),
                LeavePoint(victim, at + 5 + seed % 7))

    runs = explore_random(
        make_setup(k), closure, seeds=range(n_runs),
        crashes_for_seed=crash_for if crashes else None,
        membership_for_seed=membership_for if membership else None,
        originator="site0",
    )
    if sig_log:
        with open(sig_log, "a") as fh:
            for r in runs:
                fh.write(f"{r.seed} {r.signature}\n")
    summary = summarize(runs)
    matching = sum(
        1 for r in runs if r.status == "completed" and r.oid_keys == oracle.oid_keys
    )
    failovers = sum(r.stats.replica_failovers for r in runs)
    mode = "crash+recovery injected" if crashes else "reordering only"
    if membership:
        mode += ", membership churn"
    print(f"explored {summary['runs']} schedules (k={k}, {mode}):", file=out)
    print(f"  distinct interleavings: {summary['distinct']}", file=out)
    print(f"  completed:              {summary['completed']}", file=out)
    print(f"  oracle-equal results:   {matching}", file=out)
    print(f"  zero credit deficit:    {summary['zero_deficit']}", file=out)
    print(f"  replica failovers:      {failovers}", file=out)
    print(f"  max decisions/run:      {summary['max_decisions']}", file=out)
    ok = matching == summary["zero_deficit"] == len(runs)
    if membership:
        print(f"  k restored at quiesce:  {summary['k_restored']}", file=out)
        print(f"  objects lost:           {summary['lost_objects']}", file=out)
        ok = ok and summary["k_restored"] == len(runs) and summary["lost_objects"] == 0
    print("every schedule equivalent and credit-exact"
          if ok else "DIVERGENT SCHEDULES FOUND", file=out)
    return 0 if ok else 1


# --------------------------------------------------------------------------
# experiments
# --------------------------------------------------------------------------


def run_experiments(
    n_queries: int, out: Optional[IO[str]] = None, transport: str = "sim"
) -> int:
    out = out if out is not None else sys.stdout
    from .metrics.collect import Series
    from .workload import query_script

    spec = WorkloadSpec()
    graph = build_graph(n=spec.n_objects)
    paper = {("Tree", 1): 2.7, ("Tree", 3): 1.5, ("Tree", 9): 1.0,
             ("Chain", 1): 2.7, ("Chain", 3): 15.0, ("Chain", 9): 15.0}
    rows = []
    for machines in (1, 3, 9):
        cluster = _build_cluster(transport, machines)
        workload = generate_into_cluster(cluster, spec, graph)
        for pointer in ("Tree", "Chain"):
            series = Series(pointer)
            for query in query_script(pointer, "Rand10p", count=n_queries, spec=spec):
                series.add(cluster.run_query(query, [workload.root]).response_time)
            rows.append(
                {
                    "pointer": pointer,
                    "machines": machines,
                    "paper_s": paper[(pointer, machines)],
                    "measured_s": series.mean,
                }
            )
        cluster.close()
    title = "chain/tree closure, paper vs measured"
    if transport != "sim":
        title += f" (wall-clock {transport} — paper column is simulated-time reference)"
    print(render_table(rows, title=title), file=out)
    print("(full suite: pytest benchmarks/ --benchmark-only)", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
