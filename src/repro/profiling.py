"""Per-query critical-path profiling over causal trace spans.

A traced query (see :mod:`repro.tracing`) records every step as a span
with a parent: the ``submit`` roots the tree, message sends/receives link
steps across sites, and batched frames fan into per-item children.  This
module turns that tree into answers to the questions aggregate counters
cannot touch:

* **Where did the response time go?**  :func:`critical_path` walks
  backwards from the ``complete`` event, at each step choosing the
  *latest-finishing* predecessor — either the step's causal parent (a
  message or admission edge) or the previous step on the same site's
  serial CPU (a resource edge).  The chosen chain is the longest blocking
  path: shortening anything on it shortens the query; nothing off it
  matters.  Per-hop deltas telescope, so the path's duration is exactly
  ``complete.time − submit.time``.
* **Is the trace sound?**  :func:`tree_report` checks connectivity: every
  referenced parent exists, the only root is the ``submit``.
* **Where did termination credit go?**  :func:`credit_audit` replays the
  weighted detector's ledger span by span — every traced send records the
  exact :class:`~fractions.Fraction` it carried, every receive points at
  the send it consumed — so a ``TerminationLost`` deficit stops being a
  mystery number and becomes a list of the sends that never landed.

Everything here is read-only over a tracer's event list; nothing touches
live cluster state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .tracing import QueryTracer, TraceEvent

#: Step kinds that anchor a site's serial CPU timeline.  (Every event
#: does: a site emits events only while its single logical CPU works.)
_TERMINAL_KINDS = ("complete", "timeout")


def _events_for(source: Any, qid: Any) -> List[TraceEvent]:
    """Accept a tracer or a plain event list; filter to one query."""
    events = source.events if isinstance(source, QueryTracer) else list(source)
    wanted = str(qid)
    return [e for e in events if e.qid == wanted]


# ---------------------------------------------------------------------------
# span-tree validation
# ---------------------------------------------------------------------------


@dataclass
class TreeReport:
    """Structural soundness of one query's span tree."""

    qid: str
    events: int
    root: Optional[TraceEvent]              #: the submit event (None = absent)
    missing_parents: List[TraceEvent] = field(default_factory=list)
    orphans: List[TraceEvent] = field(default_factory=list)
    extra_roots: List[TraceEvent] = field(default_factory=list)

    @property
    def connected(self) -> bool:
        """Every parent resolves and the submit is the only root."""
        return (
            self.root is not None
            and not self.missing_parents
            and not self.orphans
            and not self.extra_roots
        )

    def describe(self) -> str:
        if self.connected:
            return f"{self.qid}: span tree OK ({self.events} events, rooted at submit)"
        problems = []
        if self.root is None:
            problems.append("no submit event")
        if self.missing_parents:
            problems.append(f"{len(self.missing_parents)} dangling parent refs")
        if self.orphans:
            problems.append(f"{len(self.orphans)} parentless non-root events")
        if self.extra_roots:
            problems.append(f"{len(self.extra_roots)} extra submit roots")
        return f"{self.qid}: span tree BROKEN — " + ", ".join(problems)


def tree_report(source: Any, qid: Any) -> TreeReport:
    """Validate one query's span tree (see :class:`TreeReport`)."""
    events = _events_for(source, qid)
    spans = {e.span for e in events if e.span}
    report = TreeReport(qid=str(qid), events=len(events), root=None)
    for e in events:
        if e.kind == "submit":
            if report.root is None:
                report.root = e
            else:
                report.extra_roots.append(e)
            continue
        if e.parent is None:
            report.orphans.append(e)
        elif e.parent not in spans:
            report.missing_parents.append(e)
    return report


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------


@dataclass
class PathStep:
    """One step on the critical path (all events of one site-instant)."""

    site: str
    time: float
    kinds: Tuple[str, ...]
    events: Tuple[TraceEvent, ...]
    #: How control reached this step from the previous path step:
    #: "start" (the submit), "message" (a causal cross-step edge), or
    #: "cpu" (waited for the same site's previous step to finish).
    via: str = "start"
    #: time - previous step's time (0 for the first step); telescopes to
    #: the full path duration.
    delta: float = 0.0


@dataclass
class CriticalPath:
    """The longest blocking chain from submit to complete/timeout."""

    qid: str
    steps: List[PathStep]

    @property
    def duration(self) -> float:
        """Sum of deltas == last step's time − first step's time."""
        return self.steps[-1].time - self.steps[0].time if self.steps else 0.0

    @property
    def message_hops(self) -> int:
        return sum(1 for s in self.steps if s.via == "message")

    def render(self) -> str:
        if not self.steps:
            return f"(no critical path for {self.qid})"
        width = max(len(s.site) for s in self.steps)
        lines = [
            f"critical path for {self.qid}: {self.duration:.4f}s over "
            f"{len(self.steps)} steps ({self.message_hops} message hops)",
            f"{'time':>10}  {'delta':>9}  {'site':<{width}}  via      events",
        ]
        for s in self.steps:
            delta = "" if s.via == "start" else f"+{s.delta:.4f}"
            lines.append(
                f"{s.time:>10.4f}  {delta:>9}  {s.site:<{width}}  "
                f"{s.via:<7}  {', '.join(s.kinds)}"
            )
        return "\n".join(lines)


def critical_path(source: Any, qid: Any) -> CriticalPath:
    """Extract the longest blocking chain of one traced query.

    Events sharing a ``(site, time)`` form one *step* (one handler
    invocation on that site's serial CPU).  Walking back from the
    terminal step, each hop picks the predecessor that finished last
    among (a) the causal parents of the step's events and (b) the
    previous step on the same site — whichever kept this step waiting
    longest is, by definition, on the critical path.
    """
    events = _events_for(source, qid)
    if not events:
        return CriticalPath(qid=str(qid), steps=[])

    # Group into steps and index spans.
    step_of_key: Dict[Tuple[str, float], List[TraceEvent]] = {}
    for e in events:
        step_of_key.setdefault((e.site, e.time), []).append(e)
    keys = sorted(step_of_key, key=lambda k: (k[1], k[0]))
    span_to_key: Dict[int, Tuple[str, float]] = {}
    for key, evs in step_of_key.items():
        for e in evs:
            if e.span:
                span_to_key[e.span] = key
    prev_on_site: Dict[Tuple[str, float], Optional[Tuple[str, float]]] = {}
    last_seen: Dict[str, Tuple[str, float]] = {}
    for key in keys:
        prev_on_site[key] = last_seen.get(key[0])
        last_seen[key[0]] = key

    # The walk ends where the query did: complete, else timeout, else the
    # last event overall (an unterminated trace still profiles usefully).
    terminal = next(
        (e for kind in _TERMINAL_KINDS for e in events if e.kind == kind), events[-1]
    )
    start = next((e for e in events if e.kind == "submit"), events[0])
    start_key = (start.site, start.time)

    current = (terminal.site, terminal.time)
    chain: List[Tuple[Tuple[str, float], str]] = [(current, "start")]
    visited = {current}
    while current != start_key:
        candidates: List[Tuple[Tuple[str, float], str]] = []
        for e in step_of_key[current]:
            if e.parent is not None:
                parent_key = span_to_key.get(e.parent)
                if parent_key is not None and parent_key != current:
                    candidates.append((parent_key, "message"))
        previous = prev_on_site[current]
        if previous is not None:
            candidates.append((previous, "cpu"))
        candidates = [c for c in candidates if c[0] not in visited]
        if not candidates:
            break  # disconnected fragment: report the partial chain
        # The latest-finishing predecessor is the one this step actually
        # waited for; same-instant causal edges beat the cpu edge.
        chosen = max(candidates, key=lambda c: (c[0][1], c[1] == "message"))
        chain.append(chosen)
        visited.add(chosen[0])
        current = chosen[0]

    chain.reverse()
    steps: List[PathStep] = []
    for index, (key, _) in enumerate(chain):
        evs = tuple(sorted(step_of_key[key], key=lambda e: e.span))
        # Each backward-walk entry recorded the edge *leaving* it forward
        # in time, so the edge arriving at this step lives on the
        # previous (earlier) entry.
        via = "start" if index == 0 else chain[index - 1][1]
        delta = 0.0 if index == 0 else key[1] - chain[index - 1][0][1]
        steps.append(
            PathStep(
                site=key[0], time=key[1],
                kinds=tuple(dict.fromkeys(e.kind for e in evs)),
                events=evs, via=via, delta=delta,
            )
        )
    return CriticalPath(qid=str(qid), steps=steps)


# ---------------------------------------------------------------------------
# credit-flow audit
# ---------------------------------------------------------------------------


@dataclass
class CreditEntry:
    """One credit-carrying send and what became of it."""

    span: int
    site: str
    dst: str
    msg: str
    credit: Fraction
    delivered: bool
    time: float


@dataclass
class CreditAudit:
    """Span-by-span explanation of a query's credit flow.

    ``lost`` is the credit attached to sends that no traced receive ever
    consumed — the exact quantity a ``TerminationLost`` diagnosis reports
    as the deficit, now attributable to specific messages.
    """

    qid: str
    entries: List[CreditEntry]
    timed_out: bool

    @property
    def total_sent(self) -> Fraction:
        return sum((e.credit for e in self.entries), Fraction(0))

    @property
    def lost(self) -> Fraction:
        return sum((e.credit for e in self.entries if not e.delivered), Fraction(0))

    def render(self) -> str:
        lines = [
            f"credit audit for {self.qid}: {len(self.entries)} credit-carrying "
            f"sends, {self.lost} lost"
            + (" (query timed out)" if self.timed_out else "")
        ]
        for e in self.entries:
            status = "delivered" if e.delivered else "LOST"
            lines.append(
                f"  [{e.time:9.4f}s] span {e.span:<6} {e.site} -> {e.dst:<8} "
                f"{e.msg:<14} credit {str(e.credit):<10} {status}"
            )
        return "\n".join(lines)


def credit_audit(source: Any, qid: Any) -> CreditAudit:
    """Match every credit-carrying send to the receive that consumed it.

    A send's credit counts as delivered when any ``recv`` (or reliable-
    channel ``dup`` suppression, which implies an earlier delivery) points
    at its span.  Undelivered entries sum to the termination deficit.
    """
    events = _events_for(source, qid)
    consumed = {
        e.parent
        for e in events
        if e.kind in ("recv", "dup") and e.parent is not None
    }
    entries: List[CreditEntry] = []
    for e in events:
        if e.kind != "send" or "credit" not in e.detail:
            continue
        entries.append(
            CreditEntry(
                span=e.span,
                site=e.site,
                dst=str(e.detail.get("dst", "?")),
                msg=str(e.detail.get("msg", "?")),
                credit=Fraction(str(e.detail["credit"])),
                delivered=e.span in consumed,
                time=e.time,
            )
        )
    timed_out = any(e.kind == "timeout" for e in events)
    return CreditAudit(qid=str(qid), entries=entries, timed_out=timed_out)


# ---------------------------------------------------------------------------
# combined per-query profile
# ---------------------------------------------------------------------------


def render_profile(source: Any, qid: Any) -> str:
    """The full per-query profile: tree health, critical path, credit."""
    report = tree_report(source, qid)
    sections = [report.describe()]
    if report.events:
        sections.append(critical_path(source, qid).render())
        audit = credit_audit(source, qid)
        if audit.entries:
            sections.append(audit.render())
    return "\n\n".join(sections)
