"""Admission control, backpressure and multi-tenant QoS (docs/QOS.md)."""

from .config import PRIORITIES, QoSConfig
from .limiter import ClientLimiter

__all__ = ["PRIORITIES", "QoSConfig", "ClientLimiter"]
