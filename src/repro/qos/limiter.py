"""Per-client token-bucket admission control.

One :class:`ClientLimiter` guards a cluster's submit path.  Each client
name owns an independent bucket of ``burst`` tokens refilled at ``qps``
tokens per second; a submit spends one token, and an empty bucket means
the submit is bounced with :class:`~repro.errors.Overloaded` — nothing
is queued, nothing is silently dropped.  The caller supplies the clock
(virtual :attr:`Simulator.now` on the simulator, ``time.monotonic`` on
the live transports), which keeps the limiter fully deterministic under
simulation.
"""

from __future__ import annotations

from typing import Callable, Dict


class _Bucket:
    __slots__ = ("tokens", "last")

    def __init__(self, tokens: float, last: float) -> None:
        self.tokens = tokens
        self.last = last


class ClientLimiter:
    """Token buckets keyed by client name, sharing one rate config."""

    def __init__(self, qps: float, burst: int, now_fn: Callable[[], float]) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.qps = float(qps)
        self.burst = float(burst)
        self.now_fn = now_fn
        self._buckets: Dict[str, _Bucket] = {}

    def _refill(self, client: str) -> _Bucket:
        now = self.now_fn()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = _Bucket(self.burst, now)
            self._buckets[client] = bucket
        elif now > bucket.last:
            bucket.tokens = min(self.burst, bucket.tokens + (now - bucket.last) * self.qps)
            bucket.last = now
        return bucket

    def try_acquire(self, client: str) -> bool:
        """Spend one token for ``client``; False = bounce the submit."""
        bucket = self._refill(client)
        if bucket.tokens >= 1.0:
            bucket.tokens -= 1.0
            return True
        return False

    def retry_after_s(self, client: str) -> float:
        """Seconds until ``client``'s bucket holds a whole token again."""
        bucket = self._refill(client)
        if bucket.tokens >= 1.0:
            return 0.0
        return (1.0 - bucket.tokens) / self.qps

    def tokens(self, client: str) -> float:
        """Current token balance (diagnostics / tests)."""
        return self._refill(client).tokens
