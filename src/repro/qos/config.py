"""QoS configuration: admission control, backpressure and priority knobs.

One frozen :class:`QoSConfig` travels from the facade through every
transport down to each :class:`~repro.server.node.ServerNode`, exactly
like :class:`~repro.net.batching.BatchConfig` and
:class:`~repro.cache.CacheConfig` before it.  ``qos=None`` (the default
everywhere) keeps the pre-QoS behaviour bit-identical: no envelope
fields are stamped, no admission check runs, the drain scheduler is the
historical round-robin.

The subsystem has four independent levers (see docs/QOS.md):

* **rate limiting** — a per-client token bucket at query submit; an
  empty bucket bounces the submit with :class:`~repro.errors.Overloaded`
  instead of silently queueing it;
* **backpressure** — high/low watermarks on each site's work queue;
  pressure state rides on every outgoing envelope, and senders multiply
  their batching size-flush threshold toward pressured destinations;
* **priority classes** — ``interactive`` vs ``batch``, carried on work
  envelopes and served by weighted-fair drain at every node;
* **load shedding** — above ``shed_watermark``, arriving batch-class
  work is dropped *after* its termination credit is absorbed, so the
  query completes as ``partial=True`` with ``credit_deficit == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The two service classes, in drain-preference order.
PRIORITIES = ("interactive", "batch")


@dataclass(frozen=True)
class QoSConfig:
    """Knobs for the admission-control / QoS subsystem.

    The default instance enables priority classes and weighted-fair
    drain but no admission control, backpressure or shedding — those
    activate only when their watermark/rate fields are set.
    """

    #: Sustained per-client submit rate (queries/second); None = no
    #: rate limiting.  Clocked by virtual time on the simulator and
    #: ``time.monotonic`` on the live transports.
    rate_limit_qps: Optional[float] = None
    #: Token-bucket capacity: how many submits a client may burst
    #: above the sustained rate.
    rate_burst: int = 1

    #: Work-queue depth at which a site starts signalling pressure;
    #: None = backpressure off.
    high_watermark: Optional[int] = None
    #: Depth at which a pressured site clears its signal (hysteresis;
    #: must not exceed ``high_watermark``).
    low_watermark: int = 0
    #: Multiplier applied to the batching size-flush threshold toward
    #: pressured destinations (work is held back in larger batches, so
    #: a pressured site sees fewer, fuller deliveries).
    pressure_batch_factor: int = 4

    #: Work-queue depth above which arriving batch-class work is shed
    #: (credit absorbed, item dropped, outcome partial); None = never.
    shed_watermark: Optional[int] = None
    #: Shed interactive-class work at the same watermark too.  Off by
    #: default: interactive work is what shedding protects.
    shed_interactive: bool = False

    #: Weighted-fair drain shares (interactive : batch).
    interactive_weight: int = 4
    batch_weight: int = 1

    #: Class assigned to submits that do not name one.
    default_priority: str = "interactive"

    def __post_init__(self) -> None:
        if self.rate_limit_qps is not None and self.rate_limit_qps <= 0:
            raise ValueError("rate_limit_qps must be positive (or None)")
        if self.rate_burst < 1:
            raise ValueError("rate_burst must be >= 1")
        if self.high_watermark is not None:
            if self.high_watermark < 1:
                raise ValueError("high_watermark must be >= 1 (or None)")
            if self.low_watermark > self.high_watermark:
                raise ValueError("low_watermark must not exceed high_watermark")
        if self.low_watermark < 0:
            raise ValueError("low_watermark must be >= 0")
        if self.pressure_batch_factor < 1:
            raise ValueError("pressure_batch_factor must be >= 1")
        if self.shed_watermark is not None and self.shed_watermark < 0:
            raise ValueError("shed_watermark must be >= 0 (or None)")
        if self.interactive_weight < 1 or self.batch_weight < 1:
            raise ValueError("class weights must be >= 1")
        if self.default_priority not in PRIORITIES:
            raise ValueError(f"default_priority must be one of {PRIORITIES}")

    @property
    def rate_limiting(self) -> bool:
        return self.rate_limit_qps is not None

    @property
    def backpressure(self) -> bool:
        return self.high_watermark is not None

    @property
    def shedding(self) -> bool:
        return self.shed_watermark is not None
