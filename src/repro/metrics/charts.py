"""Terminal charts: render benchmark figures as ASCII plots.

The paper's Figure 4 is a line chart; the bench harness reproduces it as
a table *and* as a terminal plot so the crossover is visible at a glance
without leaving the console.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Plot glyphs assigned to series in declaration order.
MARKERS = "ox*+#@%&"


def render_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more y-series over shared x positions.

    Values are linearly scaled into a ``width`` x ``height`` character
    grid; collisions show the later series' marker.  Returns the chart
    with a legend; raises ``ValueError`` on mismatched lengths.
    """
    if not x_values or not series:
        raise ValueError("chart needs at least one x position and one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x positions"
            )
    if len(series) > len(MARKERS):
        raise ValueError(f"too many series (max {len(MARKERS)})")

    x_min, x_max = min(x_values), max(x_values)
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - y_min) / (y_max - y_min) * (height - 1))

    for marker, (name, ys) in zip(MARKERS, series.items()):
        # Connect consecutive points with linear interpolation so trends
        # read as lines, then overdraw the data points themselves.
        for (x0, y0), (x1, y1) in zip(zip(x_values, ys), list(zip(x_values, ys))[1:]):
            c0, c1 = col(x0), col(x1)
            for c in range(min(c0, c1), max(c0, c1) + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                y = y0 + t * (y1 - y0)
                grid[row(y)][c] = "."
        for x, y in zip(x_values, ys):
            grid[row(y)][col(x)] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_max:.2f}"), len(f"{y_min:.2f}"))
    for i, grid_row in enumerate(grid):
        if i == 0:
            label = f"{y_max:.2f}"
        elif i == height - 1:
            label = f"{y_min:.2f}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(grid_row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_min:g}"
    x_axis += " " * max(1, width - len(x_axis) - len(f"{x_max:g}")) + f"{x_max:g}"
    lines.append(" " * (label_width + 2) + x_axis)
    if x_label or y_label:
        lines.append(" " * (label_width + 2) + f"x: {x_label}   y: {y_label}".strip())
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
