"""Experiment measurement collection.

The paper's methodology: "For each test we timed 100 queries which
followed the same pointers and looked for the same type of search key
tuple, but randomly varied the key searched for ... This time was the
actual response time (wall clock) at the client."

:class:`Series` accumulates one configuration's measurements and offers
the summary statistics the benchmarks report; :class:`Recorder` holds a
whole experiment's rows for table rendering (see
:mod:`repro.metrics.report`); :class:`StatsTimeline` is the streaming-
stats ring every transport's periodic sampler appends to (the data
behind ``repro top`` and time-resolved benchmark plots).
"""

from __future__ import annotations

import math
import statistics
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass
class Series:
    """A sequence of measurements of one quantity."""

    name: str
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return statistics.fmean(self.values)

    @property
    def median(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return statistics.median(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation CI half-width for the mean."""
        if len(self.values) < 2:
            return 0.0
        return z * self.stdev / math.sqrt(len(self.values))

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
        }


class StatsTimeline:
    """A bounded ring of periodic per-site stats samples.

    Every transport's streaming-stats sampler appends one sample per
    period: ``{"t": <when>, "sites": {site: {field: value, ...}}}``.
    Timestamps are virtual seconds on the simulator and
    ``time.monotonic`` seconds on the wall-clock transports — callers
    compare within one run, never across clocks.  Appends are
    thread-safe (wall-clock samplers run on timer threads; process mode
    appends from per-child reader threads).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("timeline capacity must be positive")
        self.capacity = capacity
        self._samples: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        #: Samples evicted from the ring (ring semantics, like the
        #: flight recorder: the newest samples are the interesting ones).
        self.evicted = 0

    def append(self, t: float, sites: Dict[str, Dict[str, Any]]) -> None:
        sample = {"t": t, "sites": sites}
        with self._lock:
            if len(self._samples) >= self.capacity:
                overflow = len(self._samples) - self.capacity + 1
                del self._samples[:overflow]
                self.evicted += overflow
            self._samples.append(sample)

    @property
    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._samples)

    def latest(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._samples[-1] if self._samples else None

    def series(self, field_name: str, site: str) -> List[Tuple[float, Any]]:
        """One site's value of one stats field over time."""
        return [
            (s["t"], s["sites"][site].get(field_name))
            for s in self.samples
            if site in s["sites"]
        ]

    def sites(self) -> List[str]:
        seen: List[str] = []
        for sample in self.samples:
            for site in sample["sites"]:
                if site not in seen:
                    seen.append(site)
        return seen

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class Recorder:
    """Rows of (configuration -> measured values) for one experiment."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.rows: List[Dict[str, Any]] = []

    def record(self, **fields: Any) -> Dict[str, Any]:
        self.rows.append(dict(fields))
        return self.rows[-1]

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def filtered(self, **criteria: Any) -> List[Dict[str, Any]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def single(self, **criteria: Any) -> Dict[str, Any]:
        rows = self.filtered(**criteria)
        if len(rows) != 1:
            raise ValueError(
                f"{self.experiment}: expected exactly one row matching {criteria}, got {len(rows)}"
            )
        return rows[0]

    def __len__(self) -> int:
        return len(self.rows)
