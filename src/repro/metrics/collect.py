"""Experiment measurement collection.

The paper's methodology: "For each test we timed 100 queries which
followed the same pointers and looked for the same type of search key
tuple, but randomly varied the key searched for ... This time was the
actual response time (wall clock) at the client."

:class:`Series` accumulates one configuration's measurements and offers
the summary statistics the benchmarks report; :class:`Recorder` holds a
whole experiment's rows for table rendering (see
:mod:`repro.metrics.report`).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List


@dataclass
class Series:
    """A sequence of measurements of one quantity."""

    name: str
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return statistics.fmean(self.values)

    @property
    def median(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return statistics.median(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation CI half-width for the mean."""
        if len(self.values) < 2:
            return 0.0
        return z * self.stdev / math.sqrt(len(self.values))

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
        }


class Recorder:
    """Rows of (configuration -> measured values) for one experiment."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.rows: List[Dict[str, Any]] = []

    def record(self, **fields: Any) -> Dict[str, Any]:
        self.rows.append(dict(fields))
        return self.rows[-1]

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def filtered(self, **criteria: Any) -> List[Dict[str, Any]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def single(self, **criteria: Any) -> Dict[str, Any]:
        rows = self.filtered(**criteria)
        if len(rows) != 1:
            raise ValueError(
                f"{self.experiment}: expected exactly one row matching {criteria}, got {len(rows)}"
            )
        return rows[0]

    def __len__(self) -> int:
        return len(self.rows)
