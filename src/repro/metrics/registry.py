"""A process-wide telemetry registry: counters, gauges, histograms.

The transports and the batching layer publish operational numbers here —
message counts, bytes moved, wire latencies, batch sizes, per-site busy
time, queue depths — so benchmarks and the CLI read *one* uniform surface
instead of poking at per-node :class:`~repro.server.stats.NodeStats`
fields ad hoc.

Design constraints, in order:

* **Zero overhead when absent.**  Every producer holds ``metrics = None``
  by default and guards with one ``is None`` check, the same contract as
  the tracer; a run without a registry allocates nothing.
* **Thread-safe.**  The threaded and socket transports publish from many
  threads; instruments take a lock only on mutation, and snapshots are
  consistent per instrument.
* **Fixed buckets.**  Histograms bucket at registration time (no
  reservoirs, no rebalancing), so ``observe`` is O(#buckets) worst case
  and memory is bounded no matter the event volume.

Naming convention: ``subsystem.noun_unit`` — e.g. ``net.wire_latency_s``,
``batching.batch_size_items``, ``node.bytes_sent_total``.  Counters end in
``_total``; unit suffixes (``_s``, ``_bytes``, ``_items``) name the value,
not the count.  Labels (e.g. ``site=...``) distinguish instances of the
same instrument.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets: log-ish spacing that covers both the paper's
#: cost model (ms-scale messages) and wall-clock transports (µs..s).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: SLO-watermark buckets: the default ladder extended to the minutes an
#: unprotected overloaded query can take, so ``slo.complete_s`` p99s stay
#: inside measurement range even when QoS is off.
SLO_BUCKETS: Tuple[float, ...] = DEFAULT_BUCKETS + (25.0, 50.0, 100.0, 250.0)

#: Instrument identity: name + sorted labels.
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that goes up and down (queue depth, contexts live)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket distribution (latencies, batch sizes, depths).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the last
    slot is the overflow (``> bounds[-1]``).  Mean is recoverable from
    ``sum``/``count``; quantiles are approximate by design.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # First bound >= value, i.e. the "le" bucket; past-the-end is the
        # overflow slot.  bisect_left because bounds are inclusive.
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the bucket where the
        cumulative count crosses ``q``.  Bucket-resolution by design —
        exact enough for SLO watermarks (p50/p99), not for microbenchmarks.
        Returns ``None`` on an empty histogram and ``inf`` when the
        quantile lands in the overflow bucket (the observation exceeded
        every bound — callers must treat that as "beyond measurement").
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for bound, n in zip(self.bounds, counts):
            cumulative += n
            if cumulative >= rank:
                return bound
        return float("inf")

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "buckets": [
                    {"le": bound, "count": n}
                    for bound, n in zip(self.bounds, self._counts)
                ] + [{"le": "inf", "count": self._counts[-1]}],
            }


class MetricsRegistry:
    """Get-or-create instrument store shared by a whole cluster run."""

    def __init__(self) -> None:
        self._instruments: Dict[_Key, Any] = {}
        self._lock = threading.Lock()

    # -- instrument accessors -------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(
                    name, key[1], buckets if buckets is not None else DEFAULT_BUCKETS
                )
                self._instruments[key] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(
                    f"metric {name} already registered as {type(instrument).__name__}"
                )
        return instrument

    def _get(self, cls, name: str, labels: Dict[str, str]):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1])
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name} already registered as {type(instrument).__name__}"
                )
        return instrument

    # -- bulk publication -----------------------------------------------

    def publish_node_stats(self, site: str, stats: Any) -> None:
        """Mirror one node's :class:`NodeStats` into labeled gauges.

        Field-driven (``dataclasses.fields``), so new counters appear here
        without edits — same no-drift rationale as ``NodeStats.merge``.
        Dict-valued fields (per-message-type counts) flatten into a
        ``kind`` label.
        """
        for f in fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, dict):
                for kind, n in value.items():
                    self.gauge(f"node.{f.name}", site=site, kind=kind).set(n)
            else:
                self.gauge(f"node.{f.name}", site=site).set(value)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able view of every instrument, sorted by name+labels."""
        with self._lock:
            instruments = sorted(self._instruments.items(), key=lambda kv: kv[0])
        out: List[Dict[str, Any]] = []
        for (name, labels), instrument in instruments:
            entry = {"name": name, "labels": dict(labels)}
            entry.update(instrument.snapshot())
            out.append(entry)
        return {"metrics": out}

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Convenience: a counter/gauge's current value, None if absent."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None or isinstance(instrument, Histogram):
            return None
        return instrument.value

    def quantile(self, name: str, q: float, **labels: str) -> Optional[float]:
        """Convenience: a histogram's approximate quantile, None if absent."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if not isinstance(instrument, Histogram):
            return None
        return instrument.quantile(q)


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Combine :meth:`MetricsRegistry.snapshot` documents into one.

    The process-mode parent polls one snapshot per child registry and
    presents them as a single cluster view: counters and histogram
    counts/sums/buckets add; gauges take the last writer (each site
    labels its own gauges, so collisions only happen for genuinely
    cluster-wide values where last-wins is the same answer everywhere).
    Histograms must agree on bucket bounds — differing layouts for the
    same instrument are a registration bug, reported loudly.
    """
    merged: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, Any]] = {}
    order: List[Tuple[str, Tuple[Tuple[str, str], ...]]] = []
    for snapshot in snapshots:
        for entry in snapshot.get("metrics", []):
            key = (entry["name"], tuple(sorted(entry["labels"].items())))
            current = merged.get(key)
            if current is None:
                copied = {
                    "name": entry["name"], "labels": dict(entry["labels"]),
                    "type": entry["type"],
                }
                for k, v in entry.items():
                    if k in copied:
                        continue
                    copied[k] = [dict(b) for b in v] if k == "buckets" else v
                merged[key] = copied
                order.append(key)
                continue
            if current["type"] != entry["type"]:
                raise ValueError(
                    f"metric {entry['name']} merged with conflicting types "
                    f"{current['type']} vs {entry['type']}"
                )
            if entry["type"] == "counter":
                current["value"] += entry["value"]
            elif entry["type"] == "gauge":
                current["value"] = entry["value"]
            else:
                ours = current["buckets"]
                theirs = entry["buckets"]
                if [b["le"] for b in ours] != [b["le"] for b in theirs]:
                    raise ValueError(
                        f"histogram {entry['name']} merged with differing buckets"
                    )
                for mine, other in zip(ours, theirs):
                    mine["count"] += other["count"]
                current["count"] += entry["count"]
                current["sum"] += entry["sum"]
    return {"metrics": [merged[key] for key in sorted(order)]}


def quantile_from_snapshot(entry: Dict[str, Any], q: float) -> Optional[float]:
    """Approximate quantile from a snapshotted histogram entry (the
    merged-snapshot counterpart of :meth:`Histogram.quantile`)."""
    if entry.get("type") != "histogram":
        raise ValueError(f"{entry.get('name')!r} is not a histogram snapshot")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = entry["count"]
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for bucket in entry["buckets"]:
        cumulative += bucket["count"]
        if cumulative >= rank:
            return float("inf") if bucket["le"] == "inf" else bucket["le"]
    return float("inf")
