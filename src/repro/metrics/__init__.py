"""Measurement collection and plain-text reporting for experiments."""

from .charts import render_chart
from .collect import Recorder, Series
from .report import render_comparison, render_recorder, render_table

__all__ = ["Recorder", "Series", "render_chart", "render_comparison", "render_recorder", "render_table"]
