"""Measurement collection and plain-text reporting for experiments."""

from .charts import render_chart
from .collect import Recorder, Series
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import render_comparison, render_recorder, render_table

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "Series",
    "render_chart",
    "render_comparison",
    "render_recorder",
    "render_table",
]
