"""Plain-text table rendering for experiment output.

Benchmarks print paper-style tables to stdout (captured by pytest's
``-s`` or the bench harness) and optionally append them to a report file
so EXPERIMENTS.md can be regenerated from real runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .collect import Recorder


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def render_recorder(recorder: Recorder, columns: Optional[Sequence[str]] = None) -> str:
    return render_table(recorder.rows, columns=columns, title=f"== {recorder.experiment} ==")


def render_comparison(
    title: str,
    paper: Dict[str, float],
    measured: Dict[str, float],
    unit: str = "s",
) -> str:
    """Side-by-side paper-vs-measured block for EXPERIMENTS.md."""
    lines = [f"== {title} ==", f"{'configuration':<28}{'paper':>10}{'measured':>10}"]
    for key in paper:
        ours = measured.get(key)
        ours_text = format_value(ours) if ours is not None else "-"
        lines.append(f"{key:<28}{format_value(paper[key]):>10}{ours_text:>10}")
    lines.append(f"(units: {unit})")
    return "\n".join(lines)
