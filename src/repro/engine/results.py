"""Query results and execution statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.oid import Oid


class ResultSet:
    """Ordered, duplicate-free collection of result object ids.

    Queries may pass the same object through the final filter more than
    once (e.g. when it is admitted at several start positions); the result
    is a *set*, so duplicates collapse.  Insertion order is preserved for
    deterministic reporting.
    """

    __slots__ = ("_order", "_seen")

    def __init__(self) -> None:
        self._order: List[Oid] = []
        self._seen: Set[Tuple[str, int]] = set()

    def add(self, oid: Oid) -> bool:
        """Insert ``oid``; returns True when it was not already present."""
        key = oid.key()
        if key in self._seen:
            return False
        self._seen.add(key)
        self._order.append(oid)
        return True

    def extend(self, oids) -> int:
        """Insert many; returns the number of new insertions."""
        return sum(1 for oid in oids if self.add(oid))

    def __contains__(self, oid: Oid) -> bool:
        return oid.key() in self._seen

    def __iter__(self):
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def as_list(self) -> List[Oid]:
        return list(self._order)

    def as_key_set(self) -> Set[Tuple[str, int]]:
        """Hint-insensitive identity keys, for set comparison in tests."""
        return set(self._seen)

    def __repr__(self) -> str:
        return f"ResultSet({len(self._order)} objects)"


@dataclass
class ExecutionStats:
    """Counters accumulated by one query execution at one site.

    These drive both the metrics layer and the simulator's cost model
    (each counter maps onto one of the paper's measured constants).
    """

    objects_processed: int = 0      #: work items admitted and pushed through filters
    objects_skipped_marked: int = 0 #: admissions suppressed by the mark table
    objects_missing: int = 0        #: dangling pointers (object not found)
    filters_applied: int = 0        #: individual E() evaluations
    results_added: int = 0          #: new insertions into the result set
    emissions: int = 0              #: values shipped by retrieval filters
    local_derefs: int = 0           #: dereferences resolved at this site
    remote_derefs: int = 0          #: dereferences forwarded to other sites

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another site's counters into this one."""
        self.objects_processed += other.objects_processed
        self.objects_skipped_marked += other.objects_skipped_marked
        self.objects_missing += other.objects_missing
        self.filters_applied += other.filters_applied
        self.results_added += other.results_added
        self.emissions += other.emissions
        self.local_derefs += other.local_derefs
        self.remote_derefs += other.remote_derefs


@dataclass
class QueryResult:
    """What a completed query hands back to the application.

    ``oids`` is the result set (bindable to a new set name for follow-up
    queries); ``retrieved`` maps each ``→var`` target to the list of data
    values shipped back; ``stats`` aggregates execution counters across
    sites; ``partial`` is True when the query was cut short (deadline
    expiry, or QoS load shedding) and the result set may be missing
    branches.  ``partial_reason`` says why — ``"deadline"`` (the timer
    fired), ``"crash"`` (the timer fired after branches were written off
    to down sites), or ``"shed"`` (a site dropped work under overload,
    see docs/QOS.md) — and is ``None`` exactly when ``partial`` is False.
    """

    oids: ResultSet = field(default_factory=ResultSet)
    retrieved: Dict[str, List[Any]] = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    partial: bool = False
    partial_reason: Optional[str] = None

    def record_emission(self, target: str, value: Any) -> None:
        self.retrieved.setdefault(target, []).append(value)
        self.stats.emissions += 1

    def oid_keys(self) -> Set[Tuple[str, int]]:
        return self.oids.as_key_set()

    def __repr__(self) -> str:
        targets = {k: len(v) for k, v in self.retrieved.items()}
        return f"QueryResult({len(self.oids)} objects, retrieved={targets})"
