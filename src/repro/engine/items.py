"""Per-object processing state (paper §3).

The paper associates temporary state with each object ``O`` a query
touches:

* ``O.id`` — the object id;
* ``O.next`` — index of the next filter to apply;
* ``O.start`` — the first filter that processes the object (1 for objects
  of the initial set, the filter after the dereference for objects reached
  through a pointer);
* ``O.iter#`` — the length of the pointer chain used to reach ``O``,
  maintained *per enclosing iterator* (the paper's "stack of iteration
  numbers" for nested iterators);
* ``O.mvars`` — matching-variable bindings.

Crucially (§3.1), only ``(id, start, iter#)`` need to live in the working
set: ``next`` always starts equal to ``start`` and ``mvars`` always starts
empty when an object is (re)admitted.  That observation is what makes the
distributed algorithm cheap — a remote dereference message carries just
those three fields plus the query identity.  We mirror the split here:
:class:`WorkItem` is the immutable, shippable form; :class:`ActiveItem` is
the transient state used while an object is being pushed through filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Set, Tuple

from ..core.oid import Oid

#: Iteration numbers, represented as ((loop_op_index, count), ...) pairs,
#: outermost loop first.  Equivalent to the paper's stack: one entry per
#: enclosing iterator, and a dereference bumps only the innermost entry.
IterCounts = Tuple[Tuple[int, int], ...]

EMPTY_ITERS: IterCounts = ()


def iter_count(iters: IterCounts, loop_index: int) -> int:
    """Current chain length w.r.t. the iterator whose marker sits at ``loop_index``.

    Objects that have never been touched by a dereference inside that
    iterator are at chain length 1, matching the paper's initialisation
    ``O.iter# = 1`` for initial-set objects.
    """
    for idx, count in iters:
        if idx == loop_index:
            return count
    return 1


def bump_iters(
    iters: IterCounts,
    enclosing: Tuple[int, ...],
    caps: Optional[Mapping[int, Optional[int]]] = None,
) -> IterCounts:
    """Iteration counts for an object created by a dereference.

    ``enclosing`` lists the loop markers whose bodies contain the
    dereference, outermost first.  The new object inherits the counts of
    every enclosing loop and increments the innermost one — the paper's
    "copy the stack, increment only the top".  Counts belonging to loops
    that do not enclose the dereference are dropped (the object's chain
    length w.r.t. those loops is irrelevant at its new start position).

    ``caps`` (when given) maps each loop-marker index to its bound ``k``
    (``None`` for ``*`` closures).  It normalises counts to the smallest
    equivalent representation: closure loops are not tracked at all
    (their marker never consults the count), and bounded counts saturate
    at ``k`` (the marker only tests ``count >= k``).  Normalisation keeps
    the space of distinct work items finite, which the engine's
    iteration-aware mark table relies on for termination.
    """
    if not enclosing:
        return EMPTY_ITERS
    relevant = {idx: iter_count(iters, idx) for idx in enclosing}
    innermost = enclosing[-1]
    relevant[innermost] += 1
    if caps is not None:
        normalised = []
        for idx in enclosing:
            cap = caps.get(idx)
            if cap is None:
                continue  # closure loop: count never consulted
            normalised.append((idx, min(relevant[idx], cap)))
        return tuple(normalised)
    return tuple((idx, relevant[idx]) for idx in enclosing)


@dataclass(frozen=True)
class WorkItem:
    """An entry of the working set ``W`` — and the payload of a remote
    dereference message.

    Immutable and hashable so work sets can deduplicate and so the
    simulated network can safely share instances between sites.
    """

    oid: Oid
    start: int = 1
    iters: IterCounts = EMPTY_ITERS

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ValueError(f"start index must be >= 1, got {self.start}")

    def activate(self) -> "ActiveItem":
        """Expand into the transient processing form (paper: ``next = start``,
        ``mvars = {}``)."""
        return ActiveItem(oid=self.oid, start=self.start, next=self.start, iters=self.iters)


@dataclass
class ActiveItem:
    """Mutable state of the object currently being pushed through filters."""

    oid: Oid
    start: int
    next: int
    iters: IterCounts = EMPTY_ITERS
    mvars: Dict[str, Set[Any]] = field(default_factory=dict)

    def bind(self, name: str, value: Any) -> None:
        """Add ``value`` to the bindings of matching variable ``name``
        (``O.mvars(X) = O.mvars(X) ∪ {value}``)."""
        self.mvars.setdefault(name, set()).add(value)

    def bindings(self, name: str) -> Set[Any]:
        """Current bindings for ``name`` (empty set when unbound)."""
        return self.mvars.get(name, set())

    def to_work_item(self) -> WorkItem:
        """Project back to the shippable form (drops ``next`` and ``mvars``)."""
        return WorkItem(oid=self.oid, start=self.start, iters=self.iters)
