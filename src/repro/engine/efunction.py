"""The ``E`` filter-evaluation function (paper §3.1).

``E(F_i, O) -> ({O_x, ...}, [O])`` takes the filter at ``O.next`` and the
object being processed, and returns a (possibly empty) set of new work
items produced by dereferencing, plus either the object (if it passed and
should continue) or ``None`` (if it failed, or a ``^X`` dropped it).

The implementation follows the paper's pseudocode case by case:

* **selection** — scan the object's tuples; a tuple matches when all three
  field patterns match; bindings from matching tuples are applied to
  ``O.mvars`` *as the scan proceeds* (so a later tuple can match a variable
  bound by an earlier tuple of the same filter, exactly as the pseudocode's
  in-place "Modify O.mvars" implies); the object passes iff some tuple
  matched.
* **dereference** — every object-id binding of the variable becomes a new
  work item starting at the filter after the dereference, with the
  innermost iteration count bumped; ``⇑`` lets the source object continue,
  ``↑`` drops it.
* **iterator marker** — objects that already traversed the whole body
  (``start <= j``) or whose pointer chain has reached length ``k``
  continue past the loop; everything else is sent back to the body start
  with ``start`` rewritten so it exits on the next encounter.
* **retrieval** — like a selection on (type, key) with a wildcard data
  field; every matching data value is emitted to the caller's sink.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..core.objects import HFObject
from ..core.oid import Oid
from ..core.program import DerefOp, LoopOp, Op, Program, RetrieveOp, SelectOp
from .items import ActiveItem, WorkItem, bump_iters, iter_count

#: Sink receiving (target_variable, value) pairs from retrieval filters.
EmitSink = Callable[[str, Any], None]

EResult = Tuple[List[WorkItem], Optional[ActiveItem]]


def evaluate(program: Program, active: ActiveItem, obj: HFObject, emit: EmitSink) -> EResult:
    """Apply the filter at ``active.next`` to ``active``/``obj``."""
    op = program.op_at(active.next)
    if isinstance(op, SelectOp):
        return _eval_select(op, active, obj)
    if isinstance(op, DerefOp):
        return _eval_deref(program, op, active)
    if isinstance(op, LoopOp):
        return _eval_loop(op, active)
    if isinstance(op, RetrieveOp):
        return _eval_retrieve(op, active, obj, emit)
    raise TypeError(f"unknown op {type(op).__name__}")  # pragma: no cover


def _eval_select(op: SelectOp, active: ActiveItem, obj: HFObject) -> EResult:
    matched = False
    for t in obj.tuples:
        ok, bindings = op.type_pattern.match(t.type, active.mvars)
        if not ok:
            continue
        ok_key, key_bindings = op.key_pattern.match(t.key, active.mvars)
        if not ok_key:
            continue
        ok_data, data_bindings = op.data_pattern.match(t.data, active.mvars)
        if not ok_data:
            continue
        matched = True
        for name, value in bindings + key_bindings + data_bindings:
            active.bind(name, value)
    if matched:
        active.next += 1
        return [], active
    return [], None


def _eval_deref(program: Program, op: DerefOp, active: ActiveItem) -> EResult:
    enclosing = program.loops_enclosing(op.index)
    new_iters = bump_iters(active.iters, enclosing, caps=program.loop_counts())
    start = active.next + 1
    produced = [
        WorkItem(oid=value, start=start, iters=new_iters)
        for value in sorted(active.bindings(op.var), key=_oid_sort_key)
        if isinstance(value, Oid)
    ]
    if op.keep_source:
        active.next += 1
        return produced, active
    return produced, None


def _eval_loop(op: LoopOp, active: ActiveItem) -> EResult:
    chain_length = iter_count(active.iters, op.index)
    done_with_body = active.start <= op.start
    chain_exhausted = op.count is not None and chain_length >= op.count
    if done_with_body or chain_exhausted:
        active.next += 1
    else:
        active.start = op.start  # so the object passes on its next encounter
        active.next = op.start
    return [], active


def _eval_retrieve(op: RetrieveOp, active: ActiveItem, obj: HFObject, emit: EmitSink) -> EResult:
    matched = False
    for t in obj.tuples:
        ok, bindings = op.type_pattern.match(t.type, active.mvars)
        if not ok:
            continue
        ok_key, key_bindings = op.key_pattern.match(t.key, active.mvars)
        if not ok_key:
            continue
        matched = True
        for name, value in bindings + key_bindings:
            active.bind(name, value)
        emit(op.target, t.data)
    if matched:
        active.next += 1
        return [], active
    return [], None


def _oid_sort_key(value: Any) -> Tuple[str, int]:
    """Deterministic ordering for dereference fan-out (stabilises traces)."""
    if isinstance(value, Oid):
        return (value.birth_site, value.local_id)
    return (str(value), 0)
