"""Query-processing engines (paper §3, §6).

* :mod:`repro.engine.local` — the single-site algorithm of Figure 3;
* :mod:`repro.engine.items`, :mod:`~repro.engine.workset`,
  :mod:`~repro.engine.marktable`, :mod:`~repro.engine.efunction` — its parts;
* :mod:`repro.engine.shared_memory` — the shared-memory multiprocessor
  variant sketched in §6;
* distributed execution lives in :mod:`repro.server` (per-site nodes) and
  :mod:`repro.cluster` (orchestration).
"""

from .efunction import evaluate
from .items import ActiveItem, WorkItem, bump_iters, iter_count
from .local import QueryExecution, StepOutcome, run_local
from .marktable import MarkTable
from .results import ExecutionStats, QueryResult, ResultSet
from .shared_memory import SharedMemoryEngine, SharedRunReport
from .workset import DISCIPLINES, FifoWorkSet, LifoWorkSet, PriorityWorkSet, WorkSet, make_workset

__all__ = [
    "ActiveItem",
    "DISCIPLINES",
    "ExecutionStats",
    "FifoWorkSet",
    "LifoWorkSet",
    "MarkTable",
    "PriorityWorkSet",
    "QueryExecution",
    "QueryResult",
    "ResultSet",
    "SharedMemoryEngine",
    "SharedRunReport",
    "StepOutcome",
    "WorkItem",
    "WorkSet",
    "bump_iters",
    "evaluate",
    "iter_count",
    "make_workset",
    "run_local",
]
