"""Working-set data structures.

Paper §3.1, footnote 4: "The choice of data structure for the working set
determines the search order for the algorithm, for example a queue gives
breadth-first search.  Work by Sarantos Kapidakis shows that a node-based
search (such as a breadth-first search) will give the best results in the
average case."

We provide three disciplines behind one interface so the ablation bench
(A2 in DESIGN.md) can compare them:

* :class:`FifoWorkSet` — queue / breadth-first (the paper's default);
* :class:`LifoWorkSet` — stack / depth-first;
* :class:`PriorityWorkSet` — caller-supplied priority (e.g. shallow
  iteration numbers first, which approximates Kapidakis' node-based order
  when pointer chains fan out unevenly).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Deque, Iterable, List, Optional, Tuple

from .items import WorkItem


class WorkSet(ABC):
    """Abstract working set ``W`` of paper Figure 3."""

    @abstractmethod
    def add(self, item: WorkItem) -> None:
        """Insert one item."""

    @abstractmethod
    def pop(self) -> WorkItem:
        """Remove and return the next item; raises ``IndexError`` when empty."""

    @abstractmethod
    def __len__(self) -> int: ...

    def extend(self, items: Iterable[WorkItem]) -> None:
        """Insert several items."""
        for item in items:
            self.add(item)

    def __bool__(self) -> bool:
        return len(self) > 0


class FifoWorkSet(WorkSet):
    """Queue discipline — breadth-first traversal (the paper's choice)."""

    def __init__(self) -> None:
        self._queue: Deque[WorkItem] = deque()

    def add(self, item: WorkItem) -> None:
        self._queue.append(item)

    def pop(self) -> WorkItem:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class LifoWorkSet(WorkSet):
    """Stack discipline — depth-first traversal."""

    def __init__(self) -> None:
        self._stack: List[WorkItem] = []

    def add(self, item: WorkItem) -> None:
        self._stack.append(item)

    def pop(self) -> WorkItem:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class PriorityWorkSet(WorkSet):
    """Priority discipline with a caller-supplied key function.

    Ties break by insertion order, keeping runs deterministic.  The default
    key processes shallow pointer chains first (smallest innermost
    iteration count), a node-based order in Kapidakis' sense.
    """

    def __init__(self, key: Optional[Callable[[WorkItem], float]] = None) -> None:
        self._key = key if key is not None else _default_priority
        self._heap: List[Tuple[float, int, WorkItem]] = []
        self._counter = 0

    def add(self, item: WorkItem) -> None:
        heapq.heappush(self._heap, (self._key(item), self._counter, item))
        self._counter += 1

    def pop(self) -> WorkItem:
        if not self._heap:
            raise IndexError("pop from empty PriorityWorkSet")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


def _default_priority(item: WorkItem) -> float:
    return max((count for _, count in item.iters), default=1)


#: Registry mapping discipline names (used in configs/benchmarks) to factories.
DISCIPLINES = {
    "fifo": FifoWorkSet,
    "lifo": LifoWorkSet,
    "priority": PriorityWorkSet,
}


def make_workset(discipline: str = "fifo") -> WorkSet:
    """Instantiate a working set by discipline name."""
    try:
        factory = DISCIPLINES[discipline]
    except KeyError:
        raise ValueError(
            f"unknown work-set discipline {discipline!r}; choose from {sorted(DISCIPLINES)}"
        ) from None
    return factory()
