"""Shared-memory multiprocessor query processing (paper §6).

"Our algorithms are also applicable to a shared memory multi-processor
server.  In this case all available processors can share the same general
query information, mark table, and working set.  [...] it is not
necessary to have a strict locking mechanism to prevent two processors
from working on the same document.  Duplicate processing may create some
duplicate answers, but not incorrect ones (due to the set-based nature of
the result)."

:class:`SharedMemoryEngine` models ``P`` logical processors draining one
shared working set.  Scheduling is event-driven over virtual time (the
processor with the earliest clock takes the next item), so the simulated
makespan reflects genuine parallelism while staying deterministic.

Two marking disciplines demonstrate the paper's no-locking claim:

* ``mark_timing="early"`` — a processor marks the (object, position)
  pairs as it claims the item (equivalent to an atomic check-and-mark;
  no duplicate work ever happens);
* ``mark_timing="late"`` — marks are published only when the processor
  *finishes* the object, so two processors that pick up the same object
  concurrently both process it — duplicate work, identical results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..core.oid import Oid
from ..core.program import Program
from ..errors import ObjectNotFound
from ..sim.costs import CostModel, PAPER_COSTS
from .efunction import evaluate
from .items import WorkItem
from .local import Fetcher
from .marktable import MarkTable
from .results import QueryResult
from .workset import make_workset


@dataclass
class SharedRunReport:
    """Result of a shared-memory run plus parallelism accounting."""

    result: QueryResult
    makespan_s: float                 #: virtual completion time (max worker clock)
    total_work_s: float               #: sum of all workers' busy time
    duplicate_processings: int        #: objects processed more than once at a position
    per_worker_objects: List[int] = field(default_factory=list)

    @property
    def speedup_vs_serial(self) -> float:
        """total work / makespan — achieved parallelism."""
        return self.total_work_s / self.makespan_s if self.makespan_s > 0 else 1.0


class SharedMemoryEngine:
    """Run one query on a simulated shared-memory multiprocessor."""

    def __init__(
        self,
        program: Program,
        fetch: Fetcher,
        workers: int = 4,
        costs: CostModel = PAPER_COSTS,
        mark_timing: str = "early",
        discipline: str = "fifo",
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if mark_timing not in ("early", "late"):
            raise ValueError(f"mark_timing must be 'early' or 'late', got {mark_timing!r}")
        self.program = program
        self.fetch = fetch
        self.workers = workers
        self.costs = costs
        self.mark_timing = mark_timing
        self.discipline = discipline

    def run(self, initial: Iterable[Oid]) -> SharedRunReport:
        workset = make_workset(self.discipline)
        for oid in initial:
            workset.add(WorkItem(oid=oid, start=1))
        mark_table = MarkTable()
        result = QueryResult()
        report = SharedRunReport(result=result, makespan_s=0.0, total_work_s=0.0, duplicate_processings=0)
        report.per_worker_objects = [0] * self.workers

        # (completion_time, tie-break, worker_id, deferred) — workers busy
        # processing an object; ``deferred`` carries the state to publish
        # when the object completes.
        busy: List[Tuple[float, int, int, "_Completion"]] = []
        idle_clocks = [0.0] * self.workers
        idle_workers = list(range(self.workers - 1, -1, -1))
        seq = 0
        seen_inflight = set()  # (oid-key, start) claimed but unmarked ('late' detection)

        while workset or busy:
            # Dispatch idle workers onto available items.
            while idle_workers and workset:
                worker = idle_workers.pop()
                item = workset.pop()
                if not mark_table.should_process(item.oid, item.start, item.iters):
                    result.stats.objects_skipped_marked += 1
                    idle_clocks[worker] += self.costs.mark_check_s
                    idle_workers.append(worker)
                    continue
                claim = (item.oid.key(), item.start)
                if self.mark_timing == "early":
                    completion = self._process(item, mark_table)
                else:
                    if claim in seen_inflight:
                        report.duplicate_processings += 1
                    seen_inflight.add(claim)
                    completion = self._process(item, None)
                start_at = idle_clocks[worker]
                finish = start_at + completion.cost_s
                seq += 1
                heapq.heappush(busy, (finish, seq, worker, completion))

            if not busy:
                break
            finish, _, worker, completion = heapq.heappop(busy)
            idle_clocks[worker] = finish
            report.makespan_s = max(report.makespan_s, finish)
            report.total_work_s += completion.cost_s
            if completion.processed:
                report.per_worker_objects[worker] += 1
            # Publish: marks (late mode), spawned work, results.
            if self.mark_timing == "late":
                for position, iters in completion.positions:
                    mark_table.mark(completion.item.oid, position, iters)
                seen_inflight.discard((completion.item.oid.key(), completion.item.start))
            for spawned in completion.spawned:
                workset.add(spawned)
            if completion.passed_oid is not None:
                if result.oids.add(completion.passed_oid):
                    result.stats.results_added += 1
            for target, value in completion.emissions:
                result.record_emission(target, value)
            idle_workers.append(worker)

        result.stats.objects_processed = sum(report.per_worker_objects)
        return report

    # ------------------------------------------------------------------

    def _process(self, item: WorkItem, mark_table: Optional[MarkTable]) -> "_Completion":
        """Push one object through the filters on one virtual processor.

        With a mark table supplied ('early'), marks are applied in place;
        otherwise ('late') visited positions are recorded for publication
        at completion time.
        """
        completion = _Completion(item=item)
        try:
            obj = self.fetch(item.oid)
        except ObjectNotFound:
            completion.cost_s = self.costs.mark_check_s
            if mark_table is not None:
                mark_table.mark(item.oid, item.start, item.iters)
            else:
                completion.positions.append((item.start, item.iters))
            return completion

        completion.processed = True
        completion.cost_s = self.costs.object_process_s
        active = item.activate()
        n = self.program.size
        while active is not None and active.next <= n:
            if mark_table is not None:
                mark_table.mark(active.oid, active.next, active.iters)
            else:
                completion.positions.append((active.next, active.iters))
            spawned, active = evaluate(
                self.program,
                active,
                obj,
                lambda target, value: completion.emissions.append((target, value)),
            )
            completion.spawned.extend(spawned)
        if active is not None:
            completion.passed_oid = active.oid
            completion.cost_s += self.costs.result_insert_s
        return completion


@dataclass
class _Completion:
    item: WorkItem
    processed: bool = False
    cost_s: float = 0.0
    passed_oid: Optional[Oid] = None
    spawned: List[WorkItem] = field(default_factory=list)
    emissions: List[Tuple[str, object]] = field(default_factory=list)
    positions: List[int] = field(default_factory=list)
