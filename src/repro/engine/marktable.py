"""The mark table: cycle detection for transitive-closure queries (§3.1).

Closure iterators over cyclic pointer graphs would loop forever without it.
The table records, per object id, the *set of filter positions* at which the
object has been processed.  Recording positions rather than a bare "seen"
bit handles the paper's subtlety: an object that failed filter ``F_1`` may
later be reached by a dereference and must still be processed starting at
``F_3`` — so ``mark_table(O) = {1}`` does not suppress admission at 3, while
``mark_table(O) = {1, 3}`` does.

**Granularity.**  The paper's table records positions only
(``granularity="position"``).  Property testing this reproduction surfaced
an anomaly in that formulation: with *bounded* iterators (``^k``), an
object can be reached through pointer chains of different lengths, and its
behaviour at the loop marker depends on that length (exit vs. loop back) —
but the position-only table conflates the two admissions, so the result of
a ``^k`` query can depend on the working-set processing order (e.g. FIFO
vs. LIFO finds different answers on diamond-shaped graphs).  The default
``granularity="iteration"`` therefore keys marks by *(position, iteration
counts)*, which makes the algorithm confluent; iteration counts are
normalised (closure loops untracked, bounded counts saturated at ``k`` —
see :func:`repro.engine.items.bump_iters`), so the key space stays finite
and termination is preserved.  For pure-closure queries — everything the
paper evaluates — the two granularities are indistinguishable.

In the distributed algorithm each site keeps its own table covering only
the objects it processes (there is deliberately *no* global table; the
paper argues the coordination cost would outweigh the duplicate messages
it avoids).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.oid import Oid
from .items import EMPTY_ITERS, IterCounts

GRANULARITIES = ("iteration", "position")


class MarkTable:
    """Per-site, per-query record of processed (object, filter) marks."""

    __slots__ = ("_marks", "_mark_ops", "_granularity", "_journal", "_journal_base")

    def __init__(self, granularity: str = "iteration") -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {GRANULARITIES}, got {granularity!r}"
            )
        self._granularity = granularity
        self._marks: Dict[Tuple[str, int], Set[tuple]] = {}
        self._mark_ops = 0  # total mark() calls, for metrics/ablations
        #: Log of new marks as (oid_key, mark_key) pairs — the batching
        #: layer ships slices of it as per-frame dedup hints.  None until
        #: enabled (zero overhead for unbatched runs).  Entries are
        #: addressed by *absolute* index: ``_journal_base`` counts entries
        #: already trimmed off the front once every destination's hint
        #: cursor has passed them, so long closure queries don't retain
        #: the full mark history.
        self._journal: Optional[List[Tuple[Tuple[str, int], tuple]]] = None
        self._journal_base = 0

    @property
    def granularity(self) -> str:
        return self._granularity

    def _key(self, position: int, iters: IterCounts) -> tuple:
        if self._granularity == "position":
            return (position,)
        return (position, iters)

    def key_for(self, position: int, iters: IterCounts = EMPTY_ITERS) -> tuple:
        """The granularity-aware mark key (public: hint matching)."""
        return self._key(position, iters)

    def enable_journal(self) -> None:
        """Start logging new marks for batch-hint shipping."""
        if self._journal is None:
            self._journal = []

    @property
    def journal(self) -> List[Tuple[Tuple[str, int], tuple]]:
        """Retained (untrimmed) tail of the new-mark log."""
        return self._journal if self._journal is not None else []

    @property
    def journal_len(self) -> int:
        """Absolute length of the journal, counting trimmed entries."""
        if self._journal is None:
            return 0
        return self._journal_base + len(self._journal)

    def journal_slice(
        self, start: int, cap: int
    ) -> Tuple[Tuple[Tuple[Tuple[str, int], tuple], ...], int]:
        """Up to ``cap`` entries from absolute index ``start`` onward.

        Returns ``(entries, new_cursor)`` where ``new_cursor`` is the
        absolute index just past the last entry returned.  Indices below
        the trim point are skipped (those hints are gone; harmless — a
        hint only ever saves a message, never changes an answer).
        """
        if self._journal is None:
            return (), start
        rel = max(start - self._journal_base, 0)
        taken = tuple(self._journal[rel : rel + cap])
        return taken, self._journal_base + rel + len(taken)

    def trim_journal(self, upto: int) -> None:
        """Discard journal entries below absolute index ``upto``.

        Callers (the batching layer) pass the minimum hint cursor across
        destinations, so only entries every destination has already been
        offered are dropped — the journal stays bounded by
        ``hint_cap x destinations`` instead of growing with the query.
        """
        if self._journal is None or upto <= self._journal_base:
            return
        drop = min(upto - self._journal_base, len(self._journal))
        if drop:
            del self._journal[:drop]
            self._journal_base += drop

    def should_process(self, oid: Oid, start: int, iters: IterCounts = EMPTY_ITERS) -> bool:
        """Admission test of Figure 3: process iff the mark is absent."""
        marks = self._marks.get(oid.key())
        return marks is None or self._key(start, iters) not in marks

    def mark(self, oid: Oid, position: int, iters: IterCounts = EMPTY_ITERS) -> None:
        """Record that ``oid`` flowed through filter ``position``."""
        key = self._key(position, iters)
        marks = self._marks.setdefault(oid.key(), set())
        if self._journal is not None and key not in marks:
            self._journal.append((oid.key(), key))
        marks.add(key)
        self._mark_ops += 1

    def positions(self, oid: Oid) -> Set[int]:
        """Filter positions recorded for ``oid`` (any iteration state)."""
        return {mark[0] for mark in self._marks.get(oid.key(), ())}

    def seen(self, oid: Oid) -> bool:
        """True if ``oid`` was processed at any position."""
        return oid.key() in self._marks

    @property
    def objects_seen(self) -> int:
        """Number of distinct objects recorded."""
        return len(self._marks)

    @property
    def total_marks(self) -> int:
        """Number of distinct marks recorded."""
        return sum(len(s) for s in self._marks.values())

    @property
    def mark_operations(self) -> int:
        """Total mark() calls, counting re-marks of existing entries."""
        return self._mark_ops

    def clear(self) -> None:
        self._marks.clear()
        self._mark_ops = 0
        if self._journal is not None:
            self._journal.clear()
        self._journal_base = 0

    def __len__(self) -> int:
        return len(self._marks)

    def __repr__(self) -> str:
        return (
            f"MarkTable({len(self._marks)} objects, {self.total_marks} marks, "
            f"granularity={self._granularity!r})"
        )
