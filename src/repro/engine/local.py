"""The local query-processing algorithm (paper Figure 3).

One :class:`QueryExecution` instance holds the state the paper associates
with a query at one site: the working set ``W``, the mark table, the result
set, and the (fixed) program.  The same class serves three callers:

* the **single-site engine** (:func:`run_local`) simply drains it;
* the **distributed node** (:mod:`repro.server.node`) drives it one object
  at a time so the simulator can charge per-object processing costs, and
  routes the remote work items each step reports;
* the **shared-memory engine** (:mod:`repro.engine.shared_memory`) runs
  several logical processors against one shared execution.

Remote pointers are recognised through a ``locate`` callback mapping an
object id to its site.  Work items for objects at this site go into ``W``;
items for other sites are surfaced in the :class:`StepOutcome` for the
caller to ship (the algorithm itself never blocks on the network — "send
the query, not the data").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.oid import Oid
from ..core.program import Program
from ..errors import ObjectNotFound, QueryLimitExceeded
from .efunction import evaluate
from .items import ActiveItem, IterCounts, WorkItem
from .marktable import MarkTable
from .results import QueryResult
from .workset import WorkSet, make_workset

#: Resolves an object id to the site holding it.
Locator = Callable[[Oid], str]

#: Fetches an object body; must raise ObjectNotFound for dangling pointers.
Fetcher = Callable[[Oid], Any]


@dataclass
class StepOutcome:
    """What happened while processing one work item.

    The distributed node converts these fields into simulated time and
    outgoing messages; the single-site engine ignores everything except
    implicit state updates.
    """

    item: WorkItem
    admitted: bool = False            #: survived the mark-table admission test
    missing: bool = False             #: object could not be fetched (dangling pointer)
    into_result: bool = False         #: object newly added to the result set
    filters_applied: int = 0          #: E() evaluations performed
    local_spawned: int = 0            #: dereferenced objects added to local W
    remote: List[Tuple[str, WorkItem]] = field(default_factory=list)
    emitted: List[Tuple[str, Any]] = field(default_factory=list)
    #: The locally spawned items themselves; populated only when the
    #: execution's ``collect_spawns`` flag is set (tracing needs the item
    #: identities to thread span causality, counters alone do not).
    local_items: List[WorkItem] = field(default_factory=list)
    #: The step was replayed from the fragment cache (same state changes,
    #: but the caller should charge a cache-probe cost, not a fetch+filter
    #: cost).
    from_cache: bool = False


class QueryExecution:
    """Executable state of one query at one site (Figure 3 + §3.2 hooks)."""

    def __init__(
        self,
        program: Program,
        fetch: Fetcher,
        site: Optional[str] = None,
        locate: Optional[Locator] = None,
        discipline: str = "fifo",
        max_objects: Optional[int] = None,
        mark_granularity: str = "iteration",
    ) -> None:
        """
        Parameters
        ----------
        program:
            The compiled query (``Q.body`` in the paper's context table).
        fetch:
            ``fetch(oid) -> HFObject`` for objects stored at this site.
        site, locate:
            This site's id and the id→site resolver.  When either is
            ``None`` every pointer is treated as local (single-site mode).
        discipline:
            Working-set discipline name (see :mod:`repro.engine.workset`).
        max_objects:
            Optional guard: raise :class:`QueryLimitExceeded` after this
            many objects have been processed.
        mark_granularity:
            ``"iteration"`` (default, confluent) or ``"position"`` (the
            paper's literal table) — see :mod:`repro.engine.marktable`.
        """
        self.program = program
        self.fetch = fetch
        self.site = site
        self.locate = locate
        self.workset: WorkSet = make_workset(discipline)
        self.mark_table = MarkTable(granularity=mark_granularity)
        self.result = QueryResult()
        self.max_objects = max_objects
        #: Record spawned local items on each StepOutcome (tracing only).
        self.collect_spawns = False
        #: Optional :class:`repro.cache.FragmentCache` — when set (and
        #: ``epoch_fn`` supplies the local store's mutation epoch), steps
        #: are memoised and replayed.  ``None`` keeps this module entirely
        #: cache-free (bit-identical to the uncached build).
        self.fragment_cache = None
        self.epoch_fn: Optional[Callable[[], int]] = None
        self._suffix_cache: Dict[int, Tuple[str, int]] = {}

    # -- admission --------------------------------------------------------

    def seed(self, oids: Iterable[Oid]) -> None:
        """Load the initial set ``S_i``: every object starts at filter 1."""
        for oid in oids:
            self.admit(WorkItem(oid=oid, start=1))

    def admit(self, item: WorkItem) -> None:
        """Add a work item to ``W`` (local seed or incoming remote deref)."""
        self.workset.add(item)

    @property
    def has_work(self) -> bool:
        return bool(self.workset)

    @property
    def pending(self) -> int:
        return len(self.workset)

    # -- the algorithm ------------------------------------------------------

    def step(self) -> StepOutcome:
        """Pop one work item and push it through the filters.

        This is the body of Figure 3's outer while-loop.  Raises
        ``IndexError`` when ``W`` is empty.
        """
        item = self.workset.pop()
        outcome = StepOutcome(item=item)
        stats = self.result.stats

        if not self.mark_table.should_process(item.oid, item.start, item.iters):
            stats.objects_skipped_marked += 1
            return outcome
        outcome.admitted = True

        # Fragment-cache probe: a step is a pure function of (program
        # suffix, start, iter#, object contents), so under an unchanged
        # store epoch a recorded step replays exactly.
        cache = self.fragment_cache
        key = None
        base = 0
        epoch = 0
        if cache is not None:
            digest, lo = self._suffix_for(item.start)
            base = lo - 1
            epoch = self.epoch_fn() if self.epoch_fn is not None else 0
            key = (digest, item.oid.key(), _rebase_iters(item.iters, base))
            entry = cache.lookup(key, epoch)
            if entry is not None:
                self._replay(entry, item, base, outcome)
                outcome.from_cache = True
                return outcome

        marks_rec: List[int] = []
        spawned_rec: List[WorkItem] = []

        try:
            obj = self.fetch(item.oid)
        except ObjectNotFound:
            # Dangling pointer: mark so repeated references are cheap,
            # count it, and keep going (partial results beat none).
            self.mark_table.mark(item.oid, item.start, item.iters)
            stats.objects_missing += 1
            outcome.missing = True
            if cache is not None:
                cache.store(key, _fragment_entry(
                    missing=True, passed=False, marks=(item.start - base,),
                    spawned=(), emissions=(), epoch=epoch,
                ))
            return outcome

        stats.objects_processed += 1
        if self.max_objects is not None and stats.objects_processed > self.max_objects:
            raise QueryLimitExceeded("max_objects", self.max_objects)

        active: Optional[ActiveItem] = item.activate()
        n = self.program.size
        while active is not None and active.next <= n:
            self.mark_table.mark(active.oid, active.next, active.iters)
            if cache is not None:
                marks_rec.append(active.next - base)
            spawned, active = evaluate(self.program, active, obj, self._emit_collector(outcome))
            outcome.filters_applied += 1
            stats.filters_applied += 1
            for new_item in spawned:
                if cache is not None:
                    spawned_rec.append(new_item)
                if self._is_local(new_item.oid):
                    self.workset.add(new_item)
                    outcome.local_spawned += 1
                    if self.collect_spawns:
                        outcome.local_items.append(new_item)
                    stats.local_derefs += 1
                else:
                    outcome.remote.append((self._site_of(new_item.oid), new_item))
                    stats.remote_derefs += 1

        if active is not None:
            if self.result.oids.add(active.oid):
                stats.results_added += 1
                outcome.into_result = True
        if cache is not None:
            cache.store(key, _fragment_entry(
                missing=False,
                passed=active is not None,
                marks=tuple(marks_rec),
                spawned=tuple(
                    (it.oid, it.start - base, _rebase_iters(it.iters, base))
                    for it in spawned_rec
                ),
                emissions=tuple(outcome.emitted),
                epoch=epoch,
            ))
        return outcome

    def _suffix_for(self, start: int) -> Tuple[str, int]:
        """Memoised (suffix digest, window start) for this program."""
        cached = self._suffix_cache.get(start)
        if cached is None:
            from ..cache.fragments import suffix_info

            cached = self._suffix_cache[start] = suffix_info(self.program, start)
        return cached

    def _replay(self, entry, item: WorkItem, base: int, outcome: StepOutcome) -> None:
        """Re-apply a recorded step's state changes exactly.

        Every counter, mark, spawn, emission and result insertion the
        computed path would have produced is reproduced here (relative
        positions rebased by the suffix window), so downstream behaviour
        — admission tests, journal hints, termination credit — cannot
        tell a replayed step from a computed one.
        """
        stats = self.result.stats
        if entry.missing:
            self.mark_table.mark(item.oid, item.start, item.iters)
            stats.objects_missing += 1
            outcome.missing = True
            return
        stats.objects_processed += 1
        if self.max_objects is not None and stats.objects_processed > self.max_objects:
            raise QueryLimitExceeded("max_objects", self.max_objects)
        for rel_pos in entry.marks:
            self.mark_table.mark(item.oid, rel_pos + base, item.iters)
        outcome.filters_applied = len(entry.marks)
        stats.filters_applied += len(entry.marks)
        for oid, rel_start, rel_iters in entry.spawned:
            new_item = WorkItem(
                oid=oid,
                start=rel_start + base,
                iters=tuple((idx + base, count) for idx, count in rel_iters),
            )
            if self._is_local(new_item.oid):
                self.workset.add(new_item)
                outcome.local_spawned += 1
                if self.collect_spawns:
                    outcome.local_items.append(new_item)
                stats.local_derefs += 1
            else:
                outcome.remote.append((self._site_of(new_item.oid), new_item))
                stats.remote_derefs += 1
        emit = self._emit_collector(outcome)
        for target, value in entry.emissions:
            emit(target, value)
        if entry.passed:
            if self.result.oids.add(item.oid):
                stats.results_added += 1
                outcome.into_result = True

    def run(self) -> QueryResult:
        """Drain the working set to completion and return the result.

        In single-site mode this is the complete algorithm; in distributed
        mode callers must instead drive :meth:`step` so remote items are
        shipped (running to completion here would silently drop them —
        hence the assertion).
        """
        while self.has_work:
            outcome = self.step()
            if outcome.remote:
                raise RuntimeError(
                    "QueryExecution.run() used with remote pointers present; "
                    "drive step() from a distributed node instead"
                )
        return self.result

    def abandon(self) -> int:
        """Discard all pending work (deadline expiry / query cancellation).

        Returns the number of work items dropped.  Results accumulated so
        far are kept — partial results beat none.
        """
        dropped = len(self.workset)
        while self.workset:
            self.workset.pop()
        return dropped

    # -- helpers -----------------------------------------------------------

    def _emit_collector(self, outcome: StepOutcome):
        def emit(target: str, value: Any) -> None:
            outcome.emitted.append((target, value))
            self.result.record_emission(target, value)

        return emit

    def _is_local(self, oid: Oid) -> bool:
        if self.locate is None or self.site is None:
            return True
        return self.locate(oid) == self.site

    def _site_of(self, oid: Oid) -> str:
        assert self.locate is not None
        return self.locate(oid)


def _rebase_iters(iters: IterCounts, base: int) -> IterCounts:
    """Iteration counts with loop indices made window-relative."""
    if not base or not iters:
        return iters
    return tuple((idx - base, count) for idx, count in iters)


def _fragment_entry(**kwargs):
    """Construct a FragmentEntry (imported lazily: the cache package is
    only touched when a fragment cache is actually attached)."""
    from ..cache.fragments import FragmentEntry

    return FragmentEntry(**kwargs)


def run_local(
    program: Program,
    initial: Iterable[Oid],
    fetch: Fetcher,
    discipline: str = "fifo",
    max_objects: Optional[int] = None,
    mark_granularity: str = "iteration",
) -> QueryResult:
    """Run a query entirely at one site (paper §3.1).

    ``fetch`` must be able to produce every object reachable by the query.
    """
    execution = QueryExecution(
        program,
        fetch,
        discipline=discipline,
        max_objects=max_objects,
        mark_granularity=mark_granularity,
    )
    execution.seed(initial)
    return execution.run()
