"""The local query-processing algorithm (paper Figure 3).

One :class:`QueryExecution` instance holds the state the paper associates
with a query at one site: the working set ``W``, the mark table, the result
set, and the (fixed) program.  The same class serves three callers:

* the **single-site engine** (:func:`run_local`) simply drains it;
* the **distributed node** (:mod:`repro.server.node`) drives it one object
  at a time so the simulator can charge per-object processing costs, and
  routes the remote work items each step reports;
* the **shared-memory engine** (:mod:`repro.engine.shared_memory`) runs
  several logical processors against one shared execution.

Remote pointers are recognised through a ``locate`` callback mapping an
object id to its site.  Work items for objects at this site go into ``W``;
items for other sites are surfaced in the :class:`StepOutcome` for the
caller to ship (the algorithm itself never blocks on the network — "send
the query, not the data").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..core.oid import Oid
from ..core.program import Program
from ..errors import ObjectNotFound, QueryLimitExceeded
from .efunction import evaluate
from .items import ActiveItem, WorkItem
from .marktable import MarkTable
from .results import QueryResult
from .workset import WorkSet, make_workset

#: Resolves an object id to the site holding it.
Locator = Callable[[Oid], str]

#: Fetches an object body; must raise ObjectNotFound for dangling pointers.
Fetcher = Callable[[Oid], Any]


@dataclass
class StepOutcome:
    """What happened while processing one work item.

    The distributed node converts these fields into simulated time and
    outgoing messages; the single-site engine ignores everything except
    implicit state updates.
    """

    item: WorkItem
    admitted: bool = False            #: survived the mark-table admission test
    missing: bool = False             #: object could not be fetched (dangling pointer)
    into_result: bool = False         #: object newly added to the result set
    filters_applied: int = 0          #: E() evaluations performed
    local_spawned: int = 0            #: dereferenced objects added to local W
    remote: List[Tuple[str, WorkItem]] = field(default_factory=list)
    emitted: List[Tuple[str, Any]] = field(default_factory=list)
    #: The locally spawned items themselves; populated only when the
    #: execution's ``collect_spawns`` flag is set (tracing needs the item
    #: identities to thread span causality, counters alone do not).
    local_items: List[WorkItem] = field(default_factory=list)


class QueryExecution:
    """Executable state of one query at one site (Figure 3 + §3.2 hooks)."""

    def __init__(
        self,
        program: Program,
        fetch: Fetcher,
        site: Optional[str] = None,
        locate: Optional[Locator] = None,
        discipline: str = "fifo",
        max_objects: Optional[int] = None,
        mark_granularity: str = "iteration",
    ) -> None:
        """
        Parameters
        ----------
        program:
            The compiled query (``Q.body`` in the paper's context table).
        fetch:
            ``fetch(oid) -> HFObject`` for objects stored at this site.
        site, locate:
            This site's id and the id→site resolver.  When either is
            ``None`` every pointer is treated as local (single-site mode).
        discipline:
            Working-set discipline name (see :mod:`repro.engine.workset`).
        max_objects:
            Optional guard: raise :class:`QueryLimitExceeded` after this
            many objects have been processed.
        mark_granularity:
            ``"iteration"`` (default, confluent) or ``"position"`` (the
            paper's literal table) — see :mod:`repro.engine.marktable`.
        """
        self.program = program
        self.fetch = fetch
        self.site = site
        self.locate = locate
        self.workset: WorkSet = make_workset(discipline)
        self.mark_table = MarkTable(granularity=mark_granularity)
        self.result = QueryResult()
        self.max_objects = max_objects
        #: Record spawned local items on each StepOutcome (tracing only).
        self.collect_spawns = False

    # -- admission --------------------------------------------------------

    def seed(self, oids: Iterable[Oid]) -> None:
        """Load the initial set ``S_i``: every object starts at filter 1."""
        for oid in oids:
            self.admit(WorkItem(oid=oid, start=1))

    def admit(self, item: WorkItem) -> None:
        """Add a work item to ``W`` (local seed or incoming remote deref)."""
        self.workset.add(item)

    @property
    def has_work(self) -> bool:
        return bool(self.workset)

    @property
    def pending(self) -> int:
        return len(self.workset)

    # -- the algorithm ------------------------------------------------------

    def step(self) -> StepOutcome:
        """Pop one work item and push it through the filters.

        This is the body of Figure 3's outer while-loop.  Raises
        ``IndexError`` when ``W`` is empty.
        """
        item = self.workset.pop()
        outcome = StepOutcome(item=item)
        stats = self.result.stats

        if not self.mark_table.should_process(item.oid, item.start, item.iters):
            stats.objects_skipped_marked += 1
            return outcome
        outcome.admitted = True

        try:
            obj = self.fetch(item.oid)
        except ObjectNotFound:
            # Dangling pointer: mark so repeated references are cheap,
            # count it, and keep going (partial results beat none).
            self.mark_table.mark(item.oid, item.start, item.iters)
            stats.objects_missing += 1
            outcome.missing = True
            return outcome

        stats.objects_processed += 1
        if self.max_objects is not None and stats.objects_processed > self.max_objects:
            raise QueryLimitExceeded("max_objects", self.max_objects)

        active: Optional[ActiveItem] = item.activate()
        n = self.program.size
        while active is not None and active.next <= n:
            self.mark_table.mark(active.oid, active.next, active.iters)
            spawned, active = evaluate(self.program, active, obj, self._emit_collector(outcome))
            outcome.filters_applied += 1
            stats.filters_applied += 1
            for new_item in spawned:
                if self._is_local(new_item.oid):
                    self.workset.add(new_item)
                    outcome.local_spawned += 1
                    if self.collect_spawns:
                        outcome.local_items.append(new_item)
                    stats.local_derefs += 1
                else:
                    outcome.remote.append((self._site_of(new_item.oid), new_item))
                    stats.remote_derefs += 1

        if active is not None:
            if self.result.oids.add(active.oid):
                stats.results_added += 1
                outcome.into_result = True
        return outcome

    def run(self) -> QueryResult:
        """Drain the working set to completion and return the result.

        In single-site mode this is the complete algorithm; in distributed
        mode callers must instead drive :meth:`step` so remote items are
        shipped (running to completion here would silently drop them —
        hence the assertion).
        """
        while self.has_work:
            outcome = self.step()
            if outcome.remote:
                raise RuntimeError(
                    "QueryExecution.run() used with remote pointers present; "
                    "drive step() from a distributed node instead"
                )
        return self.result

    def abandon(self) -> int:
        """Discard all pending work (deadline expiry / query cancellation).

        Returns the number of work items dropped.  Results accumulated so
        far are kept — partial results beat none.
        """
        dropped = len(self.workset)
        while self.workset:
            self.workset.pop()
        return dropped

    # -- helpers -----------------------------------------------------------

    def _emit_collector(self, outcome: StepOutcome):
        def emit(target: str, value: Any) -> None:
            outcome.emitted.append((target, value))
            self.result.record_emission(target, value)

        return emit

    def _is_local(self, oid: Oid) -> bool:
        if self.locate is None or self.site is None:
            return True
        return self.locate(oid) == self.site

    def _site_of(self, oid: Oid) -> str:
        assert self.locate is not None
        return self.locate(oid)


def run_local(
    program: Program,
    initial: Iterable[Oid],
    fetch: Fetcher,
    discipline: str = "fifo",
    max_objects: Optional[int] = None,
    mark_granularity: str = "iteration",
) -> QueryResult:
    """Run a query entirely at one site (paper §3.1).

    ``fetch`` must be able to produce every object reachable by the query.
    """
    execution = QueryExecution(
        program,
        fetch,
        discipline=discipline,
        max_objects=max_objects,
        mark_granularity=mark_granularity,
    )
    execution.seed(initial)
    return execution.run()
