"""One consolidated deployment configuration for every transport.

The facade and the transports historically grew one keyword argument per
subsystem (``batching=``, ``caching=``, ``replication=``, ``qos=`` ...).
Four transports times seven knobs is a combinatorial kwarg pile, and the
asyncio transport adds more (process mode, bind host, reconnect pacing).
:class:`ClusterConfig` freezes all of it into a single value object that
:class:`~repro.client.api.HyperFile` and all four cluster constructors
accept uniformly::

    config = ClusterConfig(batching=BatchConfig(), qos=QoSConfig())
    hf = HyperFile(sites=3, transport="async", config=config)
    cluster = AsyncCluster(3, config=config)          # same object, any transport

The old per-subsystem kwargs keep working on every constructor but emit
:class:`DeprecationWarning`; passing both a ``config`` and a non-default
legacy kwarg is an error (two sources of truth would be worse than one
deprecated one).  Transport-specific fields (``costs`` on the simulator,
``processes`` on the asyncio transport) are validated by the transport
that cares via :meth:`ClusterConfig.require_default`, so a config that
silently means different things on different transports cannot be built.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional, Tuple, Union

from .cache import CacheConfig
from .errors import ConfigError
from .faults.plan import FaultPlan
from .faults.reliable import ReliableConfig
from .membership import MembershipConfig
from .net.batching import BatchConfig
from .qos import QoSConfig
from .replication import ReplicationConfig
from .tracing import FlightRecorderConfig

#: Legacy kwargs that now live in :class:`ClusterConfig`; passing them
#: directly to a constructor still works but warns.
DEPRECATED_KWARGS: Tuple[str, ...] = ("batching", "caching", "replication", "qos")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a HyperFile deployment can be configured with.

    One frozen value accepted by ``HyperFile`` and all four transports
    (``sim`` / ``threaded`` / ``sockets`` / ``async``).  Fields a given
    transport does not implement must stay at their defaults there —
    the transport rejects the config otherwise rather than silently
    ignoring it.
    """

    # -- shared algorithm knobs (every transport) -----------------------
    termination: str = "weighted"
    discipline: str = "fifo"
    result_mode: str = "ship"
    fault_plan: Optional[FaultPlan] = None
    reliable: Union[bool, ReliableConfig] = False

    # -- subsystem configs (every transport) ----------------------------
    batching: Optional[BatchConfig] = None
    caching: Optional[CacheConfig] = None
    replication: Optional[ReplicationConfig] = None
    qos: Optional[QoSConfig] = None
    #: Dynamic membership (join / graceful leave / permanent-crash
    #: detection + ring rebalancing).  ``None`` — the default — keeps
    #: the static-membership build, bit for bit.  ``heartbeat_s`` is
    #: simulator-only; the wall-clock transports accept administrative
    #: membership (``join_site`` / ``leave_site`` / ``fail_site``) but
    #: reject the timer-driven detector.
    membership: Optional[MembershipConfig] = None

    # -- telemetry plane (every transport) ------------------------------
    #: Arm the crash flight recorder: a bounded ring of recent trace
    #: events per cluster (per child process in process mode), dumped
    #: automatically when a query ends in ``TerminationLost``,
    #: ``partial_reason="crash"``, or a deadline expiry.
    flight_recorder: Optional[FlightRecorderConfig] = None
    #: Streaming-stats sample period in seconds; ``None`` disables the
    #: stream.  Virtual-time-driven on ``sim``, timer-driven on the
    #: wall-clock transports; samples land in the cluster's
    #: :class:`~repro.metrics.collect.StatsTimeline`.
    stats_stream_s: Optional[float] = None

    # -- simulator-only knobs -------------------------------------------
    #: Cost model for the discrete-event simulator; ``None`` means the
    #: transport default (PAPER_COSTS on ``sim``, uncosted elsewhere).
    costs: Optional[Any] = None
    mark_granularity: str = "iteration"
    gc_contexts: bool = False

    # -- asyncio-transport knobs ----------------------------------------
    #: Run one OS process per site (true multi-core parallelism) instead
    #: of one asyncio task per site on a shared in-process loop.
    processes: bool = False
    #: Interface the per-site frame servers bind to.
    host: str = "127.0.0.1"
    #: Wall-clock budget for establishing one inter-site connection.
    connect_timeout_s: float = 5.0
    #: Initial delay before re-dialling a lost inter-site connection
    #: (doubles per consecutive failure, capped at ~1s).
    reconnect_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.connect_timeout_s <= 0:
            raise ValueError("connect_timeout_s must be positive")
        if self.reconnect_backoff_s <= 0:
            raise ValueError("reconnect_backoff_s must be positive")
        if self.stats_stream_s is not None and self.stats_stream_s <= 0:
            raise ValueError("stats_stream_s must be positive when set")
        # Combinations that no transport can honour fail here, at
        # construction, with one typed error — not deep inside a
        # transport at first use.  ``processes=True`` runs one OS
        # process per site; the simulator-only knobs below configure a
        # discrete-event kernel that has no process-mode counterpart.
        if self.processes:
            sim_only = [
                name
                for name, moved in (
                    ("costs", self.costs is not None),
                    ("mark_granularity", self.mark_granularity != "iteration"),
                    ("gc_contexts", bool(self.gc_contexts)),
                )
                if moved
            ]
            if sim_only:
                raise ConfigError(
                    f"ClusterConfig(processes=True) cannot honour simulator-only "
                    f"field(s) {sim_only}; process mode runs real OS processes, "
                    "not the discrete-event kernel"
                )

    def replace(self, **changes: Any) -> "ClusterConfig":
        """A copy with the given fields changed (frozen-dataclass idiom)."""
        return replace(self, **changes)

    def require_default(self, *names: str, transport: str) -> None:
        """Reject fields this transport does not implement.

        A config naming a capability the transport cannot honour is a
        deployment mistake; failing loudly beats silently dropping it.
        """
        for name in names:
            if getattr(self, name) != _FIELD_DEFAULTS[name]:
                raise ConfigError(
                    f"ClusterConfig.{name} does not apply to the {transport!r} transport"
                )


_FIELD_DEFAULTS: Dict[str, Any] = {f.name: f.default for f in fields(ClusterConfig)}


def resolve_config(
    config: Optional[ClusterConfig],
    *,
    owner: str,
    stacklevel: int = 3,
    **legacy: Any,
) -> ClusterConfig:
    """Merge a ``config=`` argument with legacy per-subsystem kwargs.

    Every constructor that accepts both calls this once: if ``config``
    is given, any legacy kwarg moved off its default is an error (one
    source of truth); if not, the legacy kwargs build the config — with
    a :class:`DeprecationWarning` for the kwargs that have a home in
    :class:`ClusterConfig` (see :data:`DEPRECATED_KWARGS`).
    """
    if config is not None:
        clashing = sorted(
            name for name, value in legacy.items() if value != _FIELD_DEFAULTS[name]
        )
        if clashing:
            raise ValueError(
                f"{owner} got both config= and legacy kwarg(s) {clashing}; "
                "pass everything through the ClusterConfig"
            )
        return config
    deprecated_used = sorted(
        name for name in DEPRECATED_KWARGS
        if name in legacy and legacy[name] != _FIELD_DEFAULTS[name]
    )
    if deprecated_used:
        warnings.warn(
            f"passing {', '.join(f'{n}=' for n in deprecated_used)} to {owner} directly "
            "is deprecated; pass config=ClusterConfig(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    return ClusterConfig(**legacy)
