"""Real-concurrency in-process cluster (threads + queues).

The simulated cluster (:mod:`repro.net.simnet`) gives deterministic
virtual-time measurements; this transport runs the *same*
:class:`~repro.server.node.ServerNode` logic under genuine concurrency —
one daemon thread per site, queue-based message delivery — to demonstrate
that the algorithm (contexts, mark tables, credit recovery) is correct
outside the simulator, not just inside it.

No virtual costs are applied; the node-reported costs are ignored and
response times here are real wall-clock, useful only for smoke checks.
Correctness (result sets, termination) is the point.

Fault tolerance mirrors the simulated cluster: an attached
:class:`~repro.faults.plan.FaultPlan` drops/duplicates/delays envelopes
between inboxes (delays via a shared :class:`~repro.faults.timers.TimerThread`),
``set_down``/``set_up`` freeze and thaw a site, and ``enable_reliable``
interposes the ack/retransmit channel.  Envelopes addressed to unknown
or down sites are never raised from a site thread (that would silently
kill the thread) — they are recorded on :attr:`ThreadedCluster.undeliverable`
and work messages are bounced back to the sender as
:class:`~repro.net.messages.Undeliverable` so the termination detector
recovers its credit.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, Iterable, List, Optional, Union

from ..config import ClusterConfig, resolve_config
from ..core.oid import Oid
from ..core.program import Program
from ..errors import UnknownSite
from ..faults.plan import FaultPlan
from ..faults.reliable import ReliableAck, ReliableConfig, ReliableData, ReliableEndpoint
from ..faults.timers import TimerThread
from ..naming.directory import ForwardingTable, ReplicaDirectory
from ..cache import CacheConfig
from ..net.batching import BatchConfig
from ..qos import QoSConfig
from ..replication import ReplicationConfig, ReplicationManager
from ..net.messages import (
    BatchedQuery,
    DerefRequest,
    Envelope,
    QueryId,
    SeedFromSaved,
    Undeliverable,
)
from ..server.node import ServerNode
from ..sim.costs import FREE_COSTS
from ..storage.memstore import MemStore
from ..termination.base import make_strategy
from .common import WallClockQueries


class _SiteThread:
    """One site's server loop: drain the inbox queue, step the node."""

    def __init__(self, node: ServerNode, router: "ThreadedCluster") -> None:
        self.node = node
        self.router = router
        self.inbox: "queue.Queue[Optional[Envelope]]" = queue.Queue()
        self._lock = threading.Lock()  # guards node state across submit/step
        self.thread = threading.Thread(target=self._run, name=f"hf-{node.site}", daemon=True)
        self._stop = False

    def start(self) -> None:
        self.thread.start()

    def stop(self) -> None:
        self._stop = True
        self.inbox.put(None)  # wake the loop

    def submit(
        self,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        with self._lock:
            report = self.node.submit(qid, program, initial, priority=priority, tenant=tenant)
        for env in report.outgoing:
            self.router.route(env)
        self.inbox.put(None)  # nudge: local work may now exist

    def submit_from_saved(self, qid: QueryId, program: Program, source_qid: QueryId) -> None:
        with self._lock:
            report = self.node.submit_from_saved(qid, program, source_qid, self.router.sites)
        for env in report.outgoing:
            self.router.route(env)
        self.inbox.put(None)

    def _run(self) -> None:
        while not self._stop:
            if self.router.is_down(self.node.site):
                # Crashed: freeze with the inbox intact — queued work is
                # processed after set_up, exactly like the simulated host.
                time.sleep(0.01)
                continue
            try:
                env = self.inbox.get(timeout=0.05)
            except queue.Empty:
                env = None
            if self._stop:
                return
            with self._lock:
                if env is not None:
                    if isinstance(env.payload, (ReliableData, ReliableAck)):
                        self.router._reliable_ingest(env)
                    else:
                        self.node.on_message(env)
                outgoing: List[Envelope] = []
                # Drain everything currently available; new inbox entries
                # will nudge us again.
                while self.node.has_work:
                    report = self.node.step()
                    outgoing.extend(report.outgoing)
            for out in outgoing:
                self.router.route(out)


class ThreadedCluster(WallClockQueries):
    """A HyperFile deployment where every site is a real thread.

    Implements the same :class:`~repro.api.ClusterAPI` contract as the
    simulated :class:`~repro.cluster.SimCluster`, so scenario scripts run
    unchanged on both.
    """

    def __init__(
        self,
        sites: Union[int, Iterable[str]] = 3,
        termination: str = "weighted",
        discipline: str = "fifo",
        result_mode: str = "ship",
        fault_plan: Optional[FaultPlan] = None,
        reliable: Union[bool, ReliableConfig] = False,
        batching: Optional[BatchConfig] = None,
        caching: Optional[CacheConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        qos: Optional[QoSConfig] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        config = resolve_config(
            config,
            owner="ThreadedCluster",
            termination=termination,
            discipline=discipline,
            result_mode=result_mode,
            fault_plan=fault_plan,
            reliable=reliable,
            batching=batching,
            caching=caching,
            replication=replication,
            qos=qos,
        )
        config.require_default(
            "costs", "mark_granularity", "gc_contexts", "processes",
            transport="threaded",
        )
        self.config = config
        termination = config.termination
        discipline = config.discipline
        result_mode = config.result_mode
        fault_plan = config.fault_plan
        reliable = config.reliable
        batching = config.batching
        caching = config.caching
        replication = config.replication
        qos = config.qos
        if isinstance(sites, int):
            names = [f"site{i}" for i in range(sites)]
        else:
            names = list(sites)
        self.stores: Dict[str, MemStore] = {}
        self.forwarding: Dict[str, ForwardingTable] = {}
        self.nodes: Dict[str, ServerNode] = {}
        self._threads: Dict[str, _SiteThread] = {}
        self._init_queries(qos)
        self._closed = False
        self._down: set = set()
        self._down_lock = threading.Lock()
        self._timers: Optional[TimerThread] = None
        self._timers_lock = threading.Lock()
        self.fault_plan: Optional[FaultPlan] = None
        self._endpoints: Optional[Dict[str, ReliableEndpoint]] = None
        self._reliable_config: Optional[ReliableConfig] = None
        self.messages_dropped = 0
        #: Envelopes that could not be delivered (unknown or down
        #: destination), recorded instead of raised from a site thread.
        self.undeliverable: List[Envelope] = []
        strategy = make_strategy(termination)
        directory = (
            ReplicaDirectory() if replication is not None and replication.enabled else None
        )
        for name in names:
            store = MemStore(name)
            table = ForwardingTable(name)
            node = ServerNode(
                name,
                store,
                costs=FREE_COSTS,
                termination=strategy,
                discipline=discipline,
                result_mode=result_mode,
                forwarding=table,
                on_query_complete=self._on_complete,
                is_site_up=self.is_up,
                batching=batching,
                caching=caching,
                replicas=directory,
                qos=qos,
            )
            node.now_fn = time.monotonic
            self.stores[name] = store
            self.forwarding[name] = table
            self.nodes[name] = node
            self._threads[name] = _SiteThread(node, self)
        self.replication: Optional[ReplicationManager] = None
        if directory is not None:
            assert replication is not None
            self.replication = ReplicationManager(
                replication, self.stores, self.forwarding, directory
            )
            for node in self.nodes.values():
                self.replication.add_epoch_listener(node.observe_epoch)
        self._init_membership(config)
        self._init_telemetry(config)
        for t in self._threads.values():
            t.start()
        if reliable:
            self.enable_reliable(reliable if isinstance(reliable, ReliableConfig) else None)
        if fault_plan is not None:
            self.use_faults(fault_plan)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._stop_stats_stream()
        if self._endpoints is not None:
            for endpoint in self._endpoints.values():
                endpoint.close()
        if self._timers is not None:
            self._timers.stop()
        for t in self._threads.values():
            t.stop()

    def __enter__(self) -> "ThreadedCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data ------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.nodes)

    def store(self, site: str) -> MemStore:
        try:
            return self.stores[site]
        except KeyError:
            raise UnknownSite(site) from None

    # -- availability ------------------------------------------------------

    def is_up(self, site: str) -> bool:
        with self._down_lock:
            return site not in self._down

    def is_down(self, site: str) -> bool:
        return not self.is_up(site)

    def set_down(self, site: str) -> None:
        """Freeze a site: its thread stops draining work until ``set_up``."""
        if site not in self._threads:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.add(site)

    def set_up(self, site: str) -> None:
        if site not in self._threads:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.discard(site)
        self._threads[site].inbox.put(None)  # wake the frozen loop

    # -- fault injection -----------------------------------------------------

    def use_faults(self, plan: FaultPlan) -> None:
        """Attach a chaos schedule; scheduled crashes start arming now."""
        for crash in plan.crashes:
            if crash.site not in self._threads:
                raise UnknownSite(crash.site)
        self.fault_plan = plan
        timers = self._timer_thread()
        for crash in plan.crashes:
            timers.schedule(crash.at, lambda s=crash.site: self.set_down(s))
            if crash.recover_at is not None:
                timers.schedule(crash.recover_at, lambda s=crash.site: self.set_up(s))

    def enable_reliable(self, config: Optional[ReliableConfig] = None) -> None:
        """Interpose the reliable-delivery channel on every link."""
        self._reliable_config = config if config is not None else ReliableConfig()
        timers = self._timer_thread()
        self._endpoints = {
            name: ReliableEndpoint(
                name,
                clock=timers.now,
                scheduler=timers.schedule,
                send_raw=self._route_raw,
                # on_wire runs on the destination's site thread with its
                # node lock already held, so deliver straight into the node.
                deliver_up=lambda env, t=thread: t.node.on_message(env),
                node=thread.node,
                config=self._reliable_config,
                on_give_up=self._give_up,
            )
            for name, thread in self._threads.items()
        }

    @property
    def reliable_enabled(self) -> bool:
        return self._endpoints is not None

    def _timer_thread(self) -> TimerThread:
        with self._timers_lock:
            if self._timers is None:
                self._timers = TimerThread(name="hf-threaded-timers")
            return self._timers

    # -- queries -----------------------------------------------------------
    # submit / wait / run_query / run_followup / total_stats come from
    # WallClockQueries; this transport only supplies the dispatch hooks.

    def node(self, site: str) -> ServerNode:
        try:
            return self.nodes[site]
        except KeyError:
            raise UnknownSite(site) from None

    def _dispatch_submit(
        self,
        origin: str,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        self._threads[origin].submit(qid, program, initial, priority, tenant)

    def _dispatch_submit_from_saved(
        self, origin: str, qid: QueryId, program: Program, source_qid: QueryId
    ) -> None:
        self._threads[origin].submit_from_saved(qid, program, source_qid)

    def _dispatch_expire(self, origin: str, qid: QueryId) -> None:
        thread = self._threads[origin]
        with thread._lock:
            report = thread.node.expire_query(qid)
        for env in report.outgoing:
            self.route(env)

    # -- internals ------------------------------------------------------------

    def route(self, env: Envelope) -> None:
        if self._closed:
            return
        if self._endpoints is not None and not isinstance(
            env.payload, (ReliableData, ReliableAck, Undeliverable)
        ):
            endpoint = self._endpoints.get(env.src)
            if endpoint is not None:
                endpoint.send(env)
                return
        self._route_raw(env)

    def _route_raw(self, env: Envelope) -> None:
        """One wire transmission: apply the fault plan, then deliver."""
        plan = self.fault_plan
        if plan is None:
            self._deliver_local(env)
            return
        decision = plan.decide(env.src, env.dst)
        if decision.dropped:
            self.messages_dropped += 1
            return
        for extra in decision.delays:
            if extra > 0:
                self._timer_thread().schedule(extra, lambda e=env: self._deliver_local(e))
            else:
                self._deliver_local(env)

    def _deliver_local(self, env: Envelope) -> None:
        target = self._threads.get(env.dst)
        if target is None or self.is_down(env.dst):
            self._bounce(env)
            return
        target.inbox.put(env)

    def _bounce(self, env: Envelope) -> None:
        """Record an undeliverable envelope and return work to its sender.

        Raising here would kill whichever site thread routed the message;
        instead the envelope is recorded and — for the work messages that
        carry detector state — bounced back as ``Undeliverable`` so the
        sender re-absorbs its credit/deficit.
        """
        self.messages_dropped += 1
        self.undeliverable.append(env)
        if not isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
            return
        sender = self._threads.get(env.src)
        if sender is None or self.is_down(env.src):
            return
        sender.inbox.put(Envelope(env.dst, env.src, Undeliverable(env), spans=env.spans))

    def _reliable_ingest(self, env: Envelope) -> None:
        """A reliable-channel frame arrived at ``env.dst``'s inbox."""
        if self._endpoints is None:  # channel disabled mid-flight: drop
            return
        endpoint = self._endpoints.get(env.dst)
        if endpoint is not None:
            endpoint.on_wire(env)

    def _give_up(self, env: Envelope) -> None:
        """Retries exhausted: recover detector state like a bounce would."""
        if not isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
            return
        sender = self._threads.get(env.src)
        if sender is None:
            return
        sender.inbox.put(Envelope(env.dst, env.src, Undeliverable(env), spans=env.spans))
