"""Real-concurrency in-process cluster (threads + queues).

The simulated cluster (:mod:`repro.net.simnet`) gives deterministic
virtual-time measurements; this transport runs the *same*
:class:`~repro.server.node.ServerNode` logic under genuine concurrency —
one daemon thread per site, queue-based message delivery — to demonstrate
that the algorithm (contexts, mark tables, credit recovery) is correct
outside the simulator, not just inside it.

No virtual costs are applied; the node-reported costs are ignored and
response times here are real wall-clock, useful only for smoke checks.
Correctness (result sets, termination) is the point.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Iterable, List, Optional, Union

from ..core.oid import Oid
from ..core.program import Program
from ..engine.results import QueryResult
from ..errors import HyperFileError, TransportClosed, UnknownSite
from ..naming.directory import ForwardingTable
from ..net.messages import Envelope, QueryId
from ..server.node import ServerNode
from ..sim.costs import FREE_COSTS
from ..storage.memstore import MemStore
from ..termination.base import make_strategy


class _SiteThread:
    """One site's server loop: drain the inbox queue, step the node."""

    def __init__(self, node: ServerNode, router: "ThreadedCluster") -> None:
        self.node = node
        self.router = router
        self.inbox: "queue.Queue[Optional[Envelope]]" = queue.Queue()
        self._lock = threading.Lock()  # guards node state across submit/step
        self.thread = threading.Thread(target=self._run, name=f"hf-{node.site}", daemon=True)
        self._stop = False

    def start(self) -> None:
        self.thread.start()

    def stop(self) -> None:
        self._stop = True
        self.inbox.put(None)  # wake the loop

    def submit(self, qid: QueryId, program: Program, initial: List[Oid]) -> None:
        with self._lock:
            report = self.node.submit(qid, program, initial)
        for env in report.outgoing:
            self.router.route(env)
        self.inbox.put(None)  # nudge: local work may now exist

    def _run(self) -> None:
        while not self._stop:
            try:
                env = self.inbox.get(timeout=0.05)
            except queue.Empty:
                env = None
            if self._stop:
                return
            with self._lock:
                if env is not None:
                    self.node.on_message(env)
                outgoing: List[Envelope] = []
                # Drain everything currently available; new inbox entries
                # will nudge us again.
                while self.node.has_work:
                    report = self.node.step()
                    outgoing.extend(report.outgoing)
            for out in outgoing:
                self.router.route(out)


class ThreadedCluster:
    """A HyperFile deployment where every site is a real thread.

    API mirrors the simulated :class:`~repro.cluster.SimCluster` closely
    enough for tests to run the same scenarios on both.
    """

    def __init__(
        self,
        sites: Union[int, Iterable[str]] = 3,
        termination: str = "weighted",
        discipline: str = "fifo",
        result_mode: str = "ship",
    ) -> None:
        if isinstance(sites, int):
            names = [f"site{i}" for i in range(sites)]
        else:
            names = list(sites)
        self.stores: Dict[str, MemStore] = {}
        self.forwarding: Dict[str, ForwardingTable] = {}
        self.nodes: Dict[str, ServerNode] = {}
        self._threads: Dict[str, _SiteThread] = {}
        self._completions: "queue.Queue" = queue.Queue()
        self._closed = False
        strategy = make_strategy(termination)
        for name in names:
            store = MemStore(name)
            table = ForwardingTable(name)
            node = ServerNode(
                name,
                store,
                costs=FREE_COSTS,
                termination=strategy,
                discipline=discipline,
                result_mode=result_mode,
                forwarding=table,
                on_query_complete=self._on_complete,
            )
            self.stores[name] = store
            self.forwarding[name] = table
            self.nodes[name] = node
            self._threads[name] = _SiteThread(node, self)
        self._seq = 0
        self._seq_lock = threading.Lock()
        for t in self._threads.values():
            t.start()

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._closed = True
        for t in self._threads.values():
            t.stop()

    def __enter__(self) -> "ThreadedCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data ------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.nodes)

    def store(self, site: str) -> MemStore:
        try:
            return self.stores[site]
        except KeyError:
            raise UnknownSite(site) from None

    # -- queries -----------------------------------------------------------

    def run_query(
        self,
        program: Program,
        initial: Iterable[Oid],
        originator: Optional[str] = None,
        timeout_s: float = 30.0,
    ) -> QueryResult:
        """Submit a compiled program and block until completion."""
        if self._closed:
            raise TransportClosed("cluster is closed")
        origin = originator if originator is not None else self.sites[0]
        with self._seq_lock:
            self._seq += 1
            qid = QueryId(self._seq, origin)
        self._threads[origin].submit(qid, program, list(initial))
        deadline = threading.Event()
        import time

        end = time.monotonic() + timeout_s
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise HyperFileError(f"query {qid} did not complete within {timeout_s}s")
            try:
                done_qid, result = self._completions.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                continue
            if done_qid == qid:
                return result
            # A different query finished first (concurrent use): requeue.
            self._completions.put((done_qid, result))

    # -- internals ------------------------------------------------------------

    def route(self, env: Envelope) -> None:
        target = self._threads.get(env.dst)
        if target is None:
            raise UnknownSite(env.dst)
        target.inbox.put(env)

    def _on_complete(self, qid: QueryId, result: QueryResult) -> None:
        self._completions.put((qid, result))
