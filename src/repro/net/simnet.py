"""Simulated network and hosts (the paper's PC/RT cluster, virtualised).

Each :class:`SimHost` wraps one :class:`~repro.server.node.ServerNode`
and maps its step costs onto the discrete-event clock:

* a site's CPU is serial — one work loop per host; each
  :meth:`ServerNode.step` occupies the CPU for the reported virtual cost;
* messages leave at the *end* of the step that produced them and arrive
  ``msg_latency_s`` later (sender/receiver CPU overheads are inside the
  node's cost accounting, the wire occupies nobody);
* delivery enqueues instantly at the destination and kicks its work loop.

:class:`SimNetwork` owns the host map plus an availability table so the
autonomy scenarios ("Node A is down, pose the query to Node B") can be
scripted; messages to down sites are counted and dropped by the sender.

Chaos and fault tolerance plug in here too: an attached
:class:`~repro.faults.plan.FaultPlan` decides per message whether the
wire drops, duplicates or delays it, and :meth:`SimNetwork.enable_reliable`
interposes the ack/retransmit channel so the termination detectors'
conservation invariants survive that chaos (see docs/FAULTS.md).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import UnknownSite
from ..faults.plan import FaultPlan
from ..faults.reliable import ReliableAck, ReliableConfig, ReliableData, ReliableEndpoint
from ..server.node import ServerNode, StepReport
from ..sim.kernel import Simulator
from .messages import BatchedQuery, DerefRequest, Envelope, SeedFromSaved, Undeliverable


class SimNetwork:
    """Routes envelopes between simulated hosts."""

    def __init__(self, sim: Simulator, fault_plan: Optional[FaultPlan] = None) -> None:
        self.sim = sim
        self.hosts: Dict[str, "SimHost"] = {}
        self._down: set = set()
        self._link_latency: Dict[frozenset, float] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0
        #: Chaos schedule consulted for every wire transmission (or None).
        self.fault_plan = fault_plan
        self._endpoints: Optional[Dict[str, ReliableEndpoint]] = None
        self._reliable_config: Optional[ReliableConfig] = None
        #: Optional MetricsRegistry; None = zero overhead (tracer contract).
        self.metrics = None

    def enable_reliable(self, config: Optional[ReliableConfig] = None) -> None:
        """Interpose the reliable-delivery channel on every link."""
        self._reliable_config = config if config is not None else ReliableConfig()
        self._endpoints = {}

    @property
    def reliable_enabled(self) -> bool:
        return self._endpoints is not None

    def _endpoint(self, site: str) -> ReliableEndpoint:
        assert self._endpoints is not None
        endpoint = self._endpoints.get(site)
        if endpoint is None:
            endpoint = ReliableEndpoint(
                site,
                clock=lambda: self.sim.now,
                scheduler=self.sim.schedule,
                send_raw=self._transmit_raw,
                deliver_up=self._deliver_up,
                node=self.hosts[site].node,
                config=self._reliable_config,
                on_give_up=self._give_up,
            )
            self._endpoints[site] = endpoint
        return endpoint

    def attach(self, node: ServerNode) -> "SimHost":
        """Create and register a host for ``node``."""
        host = SimHost(self.sim, self, node)
        self.hosts[node.site] = host
        return host

    def is_up(self, site: str) -> bool:
        return site not in self._down

    def set_link_latency(self, a: str, b: str, seconds: float) -> None:
        """Override the wire latency of one (symmetric) link.

        Models heterogeneous deployments — e.g. the paper's "two
        geographically distant institutions" sharing documents over a
        slow long-haul link while campus links stay fast.
        """
        if a not in self.hosts or b not in self.hosts:
            raise UnknownSite(a if a not in self.hosts else b)
        if seconds < 0:
            raise ValueError("latency must be non-negative")
        self._link_latency[frozenset((a, b))] = seconds

    def latency(self, src: str, dst: str, default: float) -> float:
        """Wire latency for the (src, dst) link (override or default)."""
        return self._link_latency.get(frozenset((src, dst)), default)

    def set_down(self, site: str) -> None:
        """Mark a site unavailable (its queued work is frozen, not lost)."""
        if site not in self.hosts:
            raise UnknownSite(site)
        self._down.add(site)

    def set_up(self, site: str) -> None:
        if site not in self.hosts:
            raise UnknownSite(site)
        self._down.discard(site)
        self.hosts[site].kick()

    def crash_permanently(self, site: str) -> int:
        """The machine is gone: mark the site down and *bounce* its queued
        work back to the senders.

        ``set_down`` freezes a site's queue because the site may come
        back; a permanent crash never thaws, so queued work envelopes —
        which carry termination credit — are returned as
        :class:`~repro.net.messages.Undeliverable` exactly as if they had
        arrived after the crash.  Non-work traffic in the queue is
        dropped.  Returns the number of envelopes bounced.
        """
        self.set_down(site)
        node = self.hosts[site].node
        bounced = 0
        for env in list(node.inbox):
            self.messages_dropped += 1
            if isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
                self._bounce(env)
                bounced += 1
        node.inbox.clear()
        return bounced

    def send(self, env: Envelope, depart: float) -> None:
        """Hand ``env`` to the wire at virtual time ``depart``.

        The reliable channel (if enabled) and the fault plan (if any)
        apply from the moment of departure; retransmissions pay wire
        latency from their own (later) send times.
        """
        if env.dst not in self.hosts:
            raise UnknownSite(env.dst)
        if self.fault_plan is None and self._endpoints is None:
            # Clean wire: schedule the arrival directly (and *now*, so
            # same-timestamp event ordering matches the historical
            # behaviour the calibrated benchmarks depend on).
            costs = self.hosts[env.src].node.costs
            wire = self.latency(env.src, env.dst, costs.msg_latency_s)
            wire += env.size_bytes / costs.bandwidth_bytes_per_s
            if self.metrics is not None:
                self.metrics.histogram("net.wire_latency_s").observe(wire)
            self.sim.schedule_at(depart + wire, lambda: self._arrive(env))
            return
        self.sim.schedule_at(depart, lambda: self._transmit(env))

    def _transmit(self, env: Envelope) -> None:
        if self._endpoints is not None and not isinstance(
            env.payload, (ReliableData, ReliableAck, Undeliverable)
        ):
            self._endpoint(env.src).send(env)
        else:
            self._transmit_raw(env)

    def _transmit_raw(self, env: Envelope) -> None:
        """One wire transmission: latency + bandwidth + chaos."""
        if env.dst not in self.hosts:
            raise UnknownSite(env.dst)
        costs = self.hosts[env.src].node.costs
        wire = self.latency(env.src, env.dst, costs.msg_latency_s)
        wire += env.size_bytes / costs.bandwidth_bytes_per_s
        if self.metrics is not None:
            self.metrics.histogram("net.wire_latency_s").observe(wire)
        if self.fault_plan is not None:
            decision = self.fault_plan.decide(env.src, env.dst)
            if decision.dropped:
                self.messages_dropped += 1
                return
            for extra in decision.delays:
                self.sim.schedule(wire + extra, lambda e=env: self._arrive(e))
        else:
            self.sim.schedule(wire, lambda: self._arrive(env))

    def deliver(self, env: Envelope, at: float) -> None:
        """Schedule delivery of ``env`` at absolute virtual time ``at``.

        Bypasses the fault plan and reliable channel — this is the
        low-level "the bytes land now" entry, kept for drivers and tests
        that script exact arrival times.
        """
        if env.dst not in self.hosts:
            raise UnknownSite(env.dst)
        self.sim.schedule_at(at, lambda: self._arrive(env))

    def _arrive(self, env: Envelope) -> None:
        host = self.hosts.get(env.dst)
        if host is None:
            raise UnknownSite(env.dst)
        if not self.is_up(env.dst):
            self.messages_dropped += 1
            self._bounce(env)
            return
        self.messages_delivered += 1
        self.bytes_delivered += env.size_bytes
        if self._endpoints is not None and isinstance(env.payload, (ReliableData, ReliableAck)):
            self._endpoint(env.dst).on_wire(env)
            return
        host.node.on_message(env)
        host.kick()

    def _deliver_up(self, env: Envelope) -> None:
        """A deduplicated payload surfaced by the reliable channel."""
        host = self.hosts[env.dst]
        host.node.on_message(env)
        host.kick()

    def _give_up(self, env: Envelope) -> None:
        """The reliable channel exhausted its retries for ``env``.

        Recover exactly as an :class:`Undeliverable` bounce would: hand
        the original envelope back to the sender's node so the detector
        re-absorbs its credit/deficit.  Non-work traffic is simply lost.
        """
        if not isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
            return
        host = self.hosts.get(env.src)
        if host is None or not self.is_up(env.src):
            return
        host.node.on_message(Envelope(env.dst, env.src, Undeliverable(env), spans=env.spans))
        host.kick()

    def _bounce(self, env: Envelope) -> None:
        """Return an undeliverable *work* message to its sender.

        Only DerefRequest/BatchedQuery/SeedFromSaved carry detector state
        that must be recovered; results and control traffic addressed to a
        dead site belong to a query whose originator is gone, and are
        simply lost.
        """
        if not isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
            return
        if not self.is_up(env.src):
            return
        latency = self.latency(env.dst, env.src, self.hosts[env.src].node.costs.msg_latency_s)
        bounce = Envelope(env.dst, env.src, Undeliverable(env), spans=env.spans)
        self.sim.schedule_at(self.sim.now + latency, lambda: self._deliver_now(bounce))

    def _deliver_now(self, env: Envelope) -> None:
        host = self.hosts.get(env.dst)
        if host is None or not self.is_up(env.dst):
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        host.node.on_message(env)
        host.kick()


class SimHost:
    """One site's serial CPU, driven by the event queue."""

    def __init__(self, sim: Simulator, network: SimNetwork, node: ServerNode) -> None:
        self.sim = sim
        self.network = network
        self.node = node
        self._running = False
        node.is_site_up = network.is_up
        #: Called with (qid, result) when a query completes here; fired
        #: only after the completing step's cost has elapsed, so the
        #: virtual completion timestamp includes that work.
        self.completion_sink = None

    @property
    def site(self) -> str:
        return self.node.site

    def kick(self) -> None:
        """Ensure the work loop is scheduled (idempotent)."""
        if self._running or not self.network.is_up(self.site):
            return
        if not self.node.has_work:
            return
        self._running = True
        self.sim.schedule(0.0, self._work)

    def dispatch(self, report: StepReport) -> None:
        """Account a step's cost and ship its outgoing messages.

        Messages depart when the step's CPU work completes; the network
        adds wire latency (and any chaos) from the departure instant.
        """
        self.node.stats.busy_seconds += report.elapsed
        depart = self.sim.now + report.elapsed
        for env in report.outgoing:
            self.network.send(env, depart)
        if self.completion_sink is not None:
            for qid, result in report.completed:
                self.sim.schedule_at(depart, lambda q=qid, r=result: self.completion_sink(q, r))

    def submit(self, qid, program, initial, priority=None, tenant=None) -> None:
        """Client-side entry: install a query at this (originating) site."""
        report = self.node.submit(qid, program, initial, priority=priority, tenant=tenant)
        self.dispatch(report)
        self.kick()

    def submit_from_saved(self, qid, program, source_qid, sites) -> None:
        report = self.node.submit_from_saved(qid, program, source_qid, sites)
        self.dispatch(report)
        self.kick()

    def _work(self) -> None:
        if not self.network.is_up(self.site):
            self._running = False
            return
        if not self.node.has_work:
            self._running = False
            return
        report = self.node.step()
        self.dispatch(report)
        # Occupy the CPU for the step's duration, then continue.
        self.sim.schedule(report.elapsed, self._continue)

    def _continue(self) -> None:
        self._running = False
        self.kick()
