"""Simulated network and hosts (the paper's PC/RT cluster, virtualised).

Each :class:`SimHost` wraps one :class:`~repro.server.node.ServerNode`
and maps its step costs onto the discrete-event clock:

* a site's CPU is serial — one work loop per host; each
  :meth:`ServerNode.step` occupies the CPU for the reported virtual cost;
* messages leave at the *end* of the step that produced them and arrive
  ``msg_latency_s`` later (sender/receiver CPU overheads are inside the
  node's cost accounting, the wire occupies nobody);
* delivery enqueues instantly at the destination and kicks its work loop.

:class:`SimNetwork` owns the host map plus an availability table so the
autonomy scenarios ("Node A is down, pose the query to Node B") can be
scripted; messages to down sites are counted and dropped by the sender.
"""

from __future__ import annotations

from typing import Dict

from ..errors import UnknownSite
from ..server.node import ServerNode, StepReport
from ..sim.kernel import Simulator
from .messages import DerefRequest, Envelope, SeedFromSaved, Undeliverable


class SimNetwork:
    """Routes envelopes between simulated hosts."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.hosts: Dict[str, "SimHost"] = {}
        self._down: set = set()
        self._link_latency: Dict[frozenset, float] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0

    def attach(self, node: ServerNode) -> "SimHost":
        """Create and register a host for ``node``."""
        host = SimHost(self.sim, self, node)
        self.hosts[node.site] = host
        return host

    def is_up(self, site: str) -> bool:
        return site not in self._down

    def set_link_latency(self, a: str, b: str, seconds: float) -> None:
        """Override the wire latency of one (symmetric) link.

        Models heterogeneous deployments — e.g. the paper's "two
        geographically distant institutions" sharing documents over a
        slow long-haul link while campus links stay fast.
        """
        if a not in self.hosts or b not in self.hosts:
            raise UnknownSite(a if a not in self.hosts else b)
        if seconds < 0:
            raise ValueError("latency must be non-negative")
        self._link_latency[frozenset((a, b))] = seconds

    def latency(self, src: str, dst: str, default: float) -> float:
        """Wire latency for the (src, dst) link (override or default)."""
        return self._link_latency.get(frozenset((src, dst)), default)

    def set_down(self, site: str) -> None:
        """Mark a site unavailable (its queued work is frozen, not lost)."""
        if site not in self.hosts:
            raise UnknownSite(site)
        self._down.add(site)

    def set_up(self, site: str) -> None:
        if site not in self.hosts:
            raise UnknownSite(site)
        self._down.discard(site)
        self.hosts[site].kick()

    def deliver(self, env: Envelope, at: float) -> None:
        """Schedule delivery of ``env`` at absolute virtual time ``at``."""
        host = self.hosts.get(env.dst)
        if host is None:
            raise UnknownSite(env.dst)

        def arrive() -> None:
            if not self.is_up(env.dst):
                self.messages_dropped += 1
                self._bounce(env)
                return
            self.messages_delivered += 1
            self.bytes_delivered += env.size_bytes
            host.node.on_message(env)
            host.kick()

        self.sim.schedule_at(at, arrive)

    def _bounce(self, env: Envelope) -> None:
        """Return an undeliverable *work* message to its sender.

        Only DerefRequest/SeedFromSaved carry detector state that must be
        recovered; results and control traffic addressed to a dead site
        belong to a query whose originator is gone, and are simply lost.
        """
        if not isinstance(env.payload, (DerefRequest, SeedFromSaved)):
            return
        if not self.is_up(env.src):
            return
        latency = self.latency(env.dst, env.src, self.hosts[env.src].node.costs.msg_latency_s)
        bounce = Envelope(env.dst, env.src, Undeliverable(env))
        self.sim.schedule_at(self.sim.now + latency, lambda: self._deliver_now(bounce))

    def _deliver_now(self, env: Envelope) -> None:
        host = self.hosts.get(env.dst)
        if host is None or not self.is_up(env.dst):
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        host.node.on_message(env)
        host.kick()


class SimHost:
    """One site's serial CPU, driven by the event queue."""

    def __init__(self, sim: Simulator, network: SimNetwork, node: ServerNode) -> None:
        self.sim = sim
        self.network = network
        self.node = node
        self._running = False
        node.is_site_up = network.is_up
        #: Called with (qid, result) when a query completes here; fired
        #: only after the completing step's cost has elapsed, so the
        #: virtual completion timestamp includes that work.
        self.completion_sink = None

    @property
    def site(self) -> str:
        return self.node.site

    def kick(self) -> None:
        """Ensure the work loop is scheduled (idempotent)."""
        if self._running or not self.network.is_up(self.site):
            return
        if not self.node.has_work:
            return
        self._running = True
        self.sim.schedule(0.0, self._work)

    def dispatch(self, report: StepReport) -> None:
        """Account a step's cost and ship its outgoing messages.

        Messages depart when the step's CPU work completes and arrive one
        wire latency later.
        """
        self.node.stats.busy_seconds += report.elapsed
        depart = self.sim.now + report.elapsed
        for env in report.outgoing:
            wire = self.network.latency(env.src, env.dst, self.node.costs.msg_latency_s)
            wire += env.size_bytes / self.node.costs.bandwidth_bytes_per_s
            self.network.deliver(env, depart + wire)
        if self.completion_sink is not None:
            for qid, result in report.completed:
                self.sim.schedule_at(depart, lambda q=qid, r=result: self.completion_sink(q, r))

    def submit(self, qid, program, initial) -> None:
        """Client-side entry: install a query at this (originating) site."""
        report = self.node.submit(qid, program, initial)
        self.dispatch(report)
        self.kick()

    def submit_from_saved(self, qid, program, source_qid, sites) -> None:
        report = self.node.submit_from_saved(qid, program, source_qid, sites)
        self.dispatch(report)
        self.kick()

    def _work(self) -> None:
        if not self.network.is_up(self.site):
            self._running = False
            return
        if not self.node.has_work:
            self._running = False
            return
        report = self.node.step()
        self.dispatch(report)
        # Occupy the CPU for the step's duration, then continue.
        self.sim.schedule(report.elapsed, self._continue)

    def _continue(self) -> None:
        self._running = False
        self.kick()
