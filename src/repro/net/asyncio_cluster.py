"""Asyncio transport: framed TCP with persistent connections.

The fourth :class:`~repro.api.ClusterAPI` transport.  Sites speak the
same wire format as the socket transport — envelopes from
:mod:`repro.net.codec`, framed as 4-byte big-endian length + payload —
but the I/O runs on :class:`asyncio.Protocol` machinery instead of
blocking sockets and per-connection reader threads:

* every site runs a frame server; inbound chunks stream through the
  codec's :class:`~repro.net.codec.FrameReader`, whose fast path hands
  back ``memoryview`` slices of the received chunk — frames are decoded
  without a copy (see ``docs/ASYNC.md`` for the zero-copy rules);
* inter-site connections are persistent and per-direction, dialled
  lazily and re-dialled with exponential backoff when lost (the
  hypergraph-P2P literature's argument against per-message connections);
* batched payloads (:class:`~repro.net.messages.ResultBatch` inside
  coalesced frames, reliable-channel retransmits) are serialised once
  via :func:`~repro.net.codec.preframe` and reuse the cached bytes on
  every subsequent hop or retry.

By default all sites share one event loop on a background thread —
"inline" mode: real frames on the loopback wire, in-process stores, so
the whole conformance suite (faults, QoS, replication, tracing,
metrics) runs unchanged.  ``ClusterConfig(processes=True)`` switches to
one OS process per site (see :mod:`repro.net.procserver`) for genuine
multi-core parallelism, with the same capability surface — replication,
the reliable channel, fault plans, migration and telemetry all ride the
parent↔child control channel instead of shared memory.

Fault semantics mirror the socket transport exactly: a
:class:`~repro.faults.plan.FaultPlan` drops/delays frames at the
sender, ``set_down`` freezes a site's drain task (already-delivered
frames survive and are processed after ``set_up``) and makes every
frame addressed to it vanish at the wire, and ``enable_reliable``
interposes the ack/retransmit channel with timers on the event loop.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..cache import CacheConfig
from ..config import ClusterConfig, resolve_config
from ..core.oid import Oid
from ..core.program import Program
from ..errors import HyperFileError, UnknownSite
from ..faults.plan import FaultPlan
from ..faults.reliable import ReliableAck, ReliableConfig, ReliableData, ReliableEndpoint
from ..naming.directory import ReplicaDirectory
from ..net.batching import BatchConfig
from ..net.codec import FRAME_HEADER, FrameReader, decode_envelope, encode_envelope
from ..qos import QoSConfig
from ..replication import ReplicationConfig, ReplicationManager
from ..net.messages import (
    BatchedQuery,
    DerefRequest,
    Envelope,
    QueryId,
    SeedFromSaved,
    Undeliverable,
)
from ..server.node import ServerNode
from ..sim.costs import FREE_COSTS
from ..storage.memstore import MemStore
from ..termination.base import make_strategy
from .common import WallClockQueries

#: How many node steps a drain task runs before yielding the loop, so
#: one busy site cannot starve its peers' I/O on the shared loop.
_STEPS_PER_YIELD = 16


class _TimerHandle:
    """A cancellable timer armed on the event loop from any thread."""

    __slots__ = ("_loop", "_handle", "_cancelled")

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._handle: Optional[asyncio.TimerHandle] = None
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        handle = self._handle
        if handle is not None:
            try:
                self._loop.call_soon_threadsafe(handle.cancel)
            except RuntimeError:  # loop already closed: nothing to cancel
                pass


class _InboundProtocol(asyncio.Protocol):
    """One accepted connection: stream chunks → frames → envelopes."""

    def __init__(self, site: "_AsyncSite") -> None:
        self.site = site
        self.reader = FrameReader()
        self.transport: Optional[asyncio.Transport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def data_received(self, data: bytes) -> None:
        try:
            frames = self.reader.feed(data)
        except HyperFileError:
            # Corrupt length prefix: the stream is unrecoverable.
            self.transport.close()
            return
        for frame in frames:
            self.site.bytes_received += len(frame)
            try:
                env = decode_envelope(frame, self.site.name)
            except HyperFileError:
                self.transport.close()
                return
            self.site.inbox.put_nowait(env)


class _PeerLink:
    """One persistent outbound connection, with reconnect.

    Frames queue here and a single sender task drains them, dialling (or
    re-dialling, with capped exponential backoff) as needed.  Created on
    the event loop, used only from it.
    """

    def __init__(self, site: "_AsyncSite", dst: str) -> None:
        self.site = site
        self.dst = dst
        self.queue: "asyncio.Queue[bytes]" = asyncio.Queue()
        self.transport: Optional[asyncio.Transport] = None
        self.task = asyncio.get_running_loop().create_task(self._run())

    def send(self, payload: bytes) -> None:
        self.queue.put_nowait(payload)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        config = self.site.cluster.config
        backoff = config.reconnect_backoff_s
        while True:
            payload = await self.queue.get()
            while self.transport is None or self.transport.is_closing():
                try:
                    self.transport, _ = await asyncio.wait_for(
                        loop.create_connection(
                            asyncio.Protocol,
                            config.host,
                            self.site.cluster.port_of(self.dst),
                        ),
                        config.connect_timeout_s,
                    )
                    backoff = config.reconnect_backoff_s
                except (OSError, asyncio.TimeoutError):
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, 1.0)
            # writelines avoids concatenating header + payload — the
            # (possibly preframed) payload bytes go out as-is.
            self.transport.writelines((FRAME_HEADER.pack(len(payload)), payload))
            self.site.bytes_sent += len(payload)

    def close(self) -> None:
        self.task.cancel()
        if self.transport is not None:
            self.transport.close()


class _AsyncSite:
    """One site on the shared loop: frame server, inbox, drain task."""

    def __init__(self, node: ServerNode, cluster: "AsyncCluster") -> None:
        self.node = node
        self.cluster = cluster
        self.name = node.site
        self.bytes_sent = 0
        self.bytes_received = 0
        # Loop-bound state, created by the cluster's bootstrap coroutine.
        self.inbox: Optional[asyncio.Queue] = None
        self.up_event: Optional[asyncio.Event] = None
        self.server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self._links: Dict[str, _PeerLink] = {}
        self._drain_task: Optional[asyncio.Task] = None

    async def bootstrap(self) -> None:
        loop = asyncio.get_running_loop()
        self.inbox = asyncio.Queue()
        self.up_event = asyncio.Event()
        self.up_event.set()
        self.server = await loop.create_server(
            lambda: _InboundProtocol(self), self.cluster.config.host, 0
        )
        self.port = self.server.sockets[0].getsockname()[1]

    # -- processing (event-loop thread only) ----------------------------

    async def drain(self) -> None:
        """The site's server loop: one envelope in, step until idle."""
        node = self.node
        cluster = self.cluster
        while True:
            env = await self.inbox.get()
            while cluster.is_down(self.name):
                # Frozen: hold this envelope (frames already delivered
                # survive a crash window) until set_up.
                await self.up_event.wait()
            # Greedily take whatever else already arrived: one task
            # switch then handles the whole burst instead of paying a
            # loop wakeup per envelope.
            batch = [env]
            while True:
                try:
                    batch.append(self.inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            outgoing: List[Envelope] = []
            for env in batch:
                if env is None:
                    continue
                if isinstance(env.payload, (ReliableData, ReliableAck)):
                    cluster._reliable_ingest(env)
                else:
                    node.on_message(env)
            steps = 0
            while node.has_work:
                report = node.step()
                outgoing.extend(report.outgoing)
                steps += 1
                if steps % _STEPS_PER_YIELD == 0:
                    for out in outgoing:
                        self._send(out)
                    outgoing = []
                    await asyncio.sleep(0)
                    while cluster.is_down(self.name):
                        await self.up_event.wait()
            for out in outgoing:
                self._send(out)

    def submit(
        self,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str],
        tenant: Optional[str] = None,
    ) -> None:
        report = self.node.submit(qid, program, initial, priority=priority, tenant=tenant)
        for env in report.outgoing:
            self._send(env)
        self.inbox.put_nowait(None)  # nudge the drain task

    def submit_from_saved(self, qid: QueryId, program: Program, source_qid: QueryId) -> None:
        report = self.node.submit_from_saved(qid, program, source_qid, self.cluster.sites)
        for env in report.outgoing:
            self._send(env)
        self.inbox.put_nowait(None)

    def expire(self, qid: QueryId) -> None:
        report = self.node.expire_query(qid)
        for env in report.outgoing:
            self._send(env)
        self.inbox.put_nowait(None)

    # -- outbound (event-loop thread only) ------------------------------

    def _send(self, env: Envelope) -> None:
        endpoint = self.cluster._endpoint_for(env.src)
        if endpoint is not None and not isinstance(
            env.payload, (ReliableData, ReliableAck, Undeliverable)
        ):
            endpoint.send(env)
            return
        self._send_raw(env)

    def _send_raw(self, env: Envelope) -> None:
        """One wire transmission: availability + fault plan, then bytes."""
        if self.cluster.is_down(env.dst):
            self.cluster.messages_dropped += 1
            return
        plan = self.cluster.fault_plan
        if plan is None:
            self._send_frame(env)
            return
        decision = plan.decide(env.src, env.dst)
        if decision.dropped:
            self.cluster.messages_dropped += 1
            return
        for extra in decision.delays:
            if extra > 0:
                self.cluster._loop.call_later(extra, self._send_frame, env)
            else:
                self._send_frame(env)

    def _send_frame(self, env: Envelope) -> None:
        payload = encode_envelope(env)
        link = self._links.get(env.dst)
        if link is None:
            link = self._links[env.dst] = _PeerLink(self, env.dst)
        link.send(payload)

    def shutdown(self) -> None:
        if self._drain_task is not None:
            self._drain_task.cancel()
        for link in self._links.values():
            link.close()
        if self.server is not None:
            self.server.close()


class AsyncCluster(WallClockQueries):
    """A HyperFile deployment on asyncio framed TCP.

    Implements the same :class:`~repro.api.ClusterAPI` contract as the
    other transports; registered as ``transport="async"``.
    """

    def __new__(cls, sites: Union[int, Iterable[str]] = 3, *args, **kwargs):
        config = kwargs.get("config")
        if cls is AsyncCluster and config is not None and config.processes:
            from .procserver import ProcessCluster

            # Not a subclass, so __init__ below is skipped by the
            # constructor protocol — ProcessCluster builds itself.
            return ProcessCluster(sites, config=config)
        return super().__new__(cls)

    def __init__(
        self,
        sites: Union[int, Iterable[str]] = 3,
        termination: str = "weighted",
        discipline: str = "fifo",
        result_mode: str = "ship",
        fault_plan: Optional[FaultPlan] = None,
        reliable: Union[bool, ReliableConfig] = False,
        batching: Optional[BatchConfig] = None,
        caching: Optional[CacheConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        qos: Optional[QoSConfig] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        config = resolve_config(
            config,
            owner="AsyncCluster",
            termination=termination,
            discipline=discipline,
            result_mode=result_mode,
            fault_plan=fault_plan,
            reliable=reliable,
            batching=batching,
            caching=caching,
            replication=replication,
            qos=qos,
        )
        config.require_default("costs", "mark_granularity", "gc_contexts", transport="async")
        self.config = config
        names = [f"site{i}" for i in range(sites)] if isinstance(sites, int) else list(sites)
        strategy = make_strategy(config.termination)
        self.stores: Dict[str, MemStore] = {}
        self.nodes: Dict[str, ServerNode] = {}
        self._asites: Dict[str, _AsyncSite] = {}
        self._init_queries(config.qos)
        self._closed = False
        self._down: set = set()
        self._down_lock = threading.Lock()
        self.fault_plan: Optional[FaultPlan] = None
        self._endpoints: Optional[Dict[str, ReliableEndpoint]] = None
        self._reliable_config: Optional[ReliableConfig] = None
        self.messages_dropped = 0
        #: Envelopes whose delivery was abandoned (reliable give-up).
        self.undeliverable: List[Envelope] = []
        directory = (
            ReplicaDirectory()
            if config.replication is not None and config.replication.enabled
            else None
        )
        for name in names:
            store = MemStore(name)
            node = ServerNode(
                name,
                store,
                costs=FREE_COSTS,
                termination=strategy,
                discipline=config.discipline,
                result_mode=config.result_mode,
                on_query_complete=self._on_complete,
                is_site_up=self.is_up,
                batching=config.batching,
                caching=config.caching,
                replicas=directory,
                qos=config.qos,
            )
            node.now_fn = time.monotonic
            self.stores[name] = store
            self.nodes[name] = node
            self._asites[name] = _AsyncSite(node, self)
        self.replication: Optional[ReplicationManager] = None
        if directory is not None:
            self.replication = ReplicationManager(
                config.replication,
                self.stores,
                {name: node.forwarding for name, node in self.nodes.items()},
                directory,
            )
            for node in self.nodes.values():
                self.replication.add_epoch_listener(node.observe_epoch)

        self._init_membership(config)
        self._init_telemetry(config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="hf-async-loop", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self._bootstrap(), self._loop).result(timeout=10.0)

        if config.reliable:
            self.enable_reliable(
                config.reliable if isinstance(config.reliable, ReliableConfig) else None
            )
        if config.fault_plan is not None:
            self.use_faults(config.fault_plan)

    async def _bootstrap(self) -> None:
        loop = asyncio.get_running_loop()
        for site in self._asites.values():
            await site.bootstrap()
        for site in self._asites.values():
            site._drain_task = loop.create_task(site.drain())

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._closed = True
        self._stop_stats_stream()
        if self._endpoints is not None:
            for endpoint in self._endpoints.values():
                endpoint.close()
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop).result(timeout=5.0)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    async def _shutdown(self) -> None:
        for site in self._asites.values():
            site.shutdown()
        await asyncio.sleep(0)

    def __enter__(self) -> "AsyncCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data ------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.nodes)

    def store(self, site: str) -> MemStore:
        try:
            return self.stores[site]
        except KeyError:
            raise UnknownSite(site) from None

    def node(self, site: str) -> ServerNode:
        try:
            return self.nodes[site]
        except KeyError:
            raise UnknownSite(site) from None

    def port_of(self, site: str) -> int:
        try:
            return self._asites[site].port
        except KeyError:
            raise UnknownSite(site) from None

    def bytes_on_the_wire(self) -> int:
        return sum(site.bytes_sent for site in self._asites.values())

    # -- availability ----------------------------------------------------

    def is_up(self, site: str) -> bool:
        with self._down_lock:
            return site not in self._down

    def is_down(self, site: str) -> bool:
        return not self.is_up(site)

    def set_down(self, site: str) -> None:
        """Freeze a site's drain task; frames to it drop at the wire."""
        target = self._asites.get(site)
        if target is None:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.add(site)
        self._call_on_loop(target.up_event.clear)

    def set_up(self, site: str) -> None:
        target = self._asites.get(site)
        if target is None:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.discard(site)

        def wake() -> None:
            target.up_event.set()
            target.inbox.put_nowait(None)

        self._call_on_loop(wake)

    # -- fault injection -------------------------------------------------

    def use_faults(self, plan: FaultPlan) -> None:
        """Attach a chaos schedule; scheduled crashes start arming now."""
        for crash in plan.crashes:
            if crash.site not in self._asites:
                raise UnknownSite(crash.site)
        self.fault_plan = plan
        for crash in plan.crashes:
            self._schedule(crash.at, lambda s=crash.site: self.set_down(s))
            if crash.recover_at is not None:
                self._schedule(crash.recover_at, lambda s=crash.site: self.set_up(s))

    def enable_reliable(self, config: Optional[ReliableConfig] = None) -> None:
        """Interpose the reliable-delivery channel on every link."""
        self._reliable_config = config if config is not None else ReliableConfig()
        self._endpoints = {
            name: ReliableEndpoint(
                name,
                clock=time.monotonic,
                scheduler=self._schedule,
                send_raw=site._send_raw,
                # on_wire runs on the event loop, so deliver straight in;
                # the drain task steps the node right after.
                deliver_up=lambda env, n=site.node: n.on_message(env),
                node=site.node,
                config=self._reliable_config,
                on_give_up=self._give_up,
            )
            for name, site in self._asites.items()
        }

    @property
    def reliable_enabled(self) -> bool:
        return self._endpoints is not None

    def _endpoint_for(self, site: str) -> Optional[ReliableEndpoint]:
        if self._endpoints is None:
            return None
        return self._endpoints.get(site)

    def _reliable_ingest(self, env: Envelope) -> None:
        endpoint = self._endpoint_for(env.dst)
        if endpoint is not None:
            endpoint.on_wire(env)

    def _give_up(self, env: Envelope) -> None:
        """Retries exhausted: recover detector state like a bounce would."""
        self.undeliverable.append(env)
        if not isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
            return
        site = self._asites.get(env.src)
        if site is not None:
            site.inbox.put_nowait(Envelope(env.dst, env.src, Undeliverable(env), spans=env.spans))

    # -- event-loop plumbing ---------------------------------------------

    def _call_on_loop(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the event loop (fire and forget, thread-safe)."""
        try:
            self._loop.call_soon_threadsafe(fn)
        except RuntimeError:  # loop closed during shutdown
            pass

    def _run_on_loop(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the event loop and wait; exceptions propagate.

        A plain callback + Future rather than ``run_coroutine_threadsafe``:
        no Task allocation, no coroutine trampoline — this sits on the
        per-submit hot path.
        """
        done: "concurrent.futures.Future[None]" = concurrent.futures.Future()

        def call() -> None:
            try:
                fn()
            except BaseException as exc:
                done.set_exception(exc)
            else:
                done.set_result(None)

        self._loop.call_soon_threadsafe(call)
        done.result()

    def _schedule(self, delay: float, fn: Callable[[], None]) -> _TimerHandle:
        """Arm a timer on the loop from any thread; returns a handle whose
        ``cancel`` is also thread-safe (the reliable channel needs both)."""
        proxy = _TimerHandle(self._loop)

        def fire() -> None:
            if not proxy._cancelled:
                fn()

        def arm() -> None:
            if not proxy._cancelled:
                proxy._handle = self._loop.call_later(delay, fire)

        if threading.get_ident() == self._thread.ident:
            arm()
        else:
            self._call_on_loop(arm)
        return proxy

    # -- queries ---------------------------------------------------------
    # submit / wait / run_query / run_followup / total_stats come from
    # WallClockQueries; this transport only supplies the dispatch hooks,
    # each of which hops onto the event loop and blocks for the result so
    # submit-time errors surface in the caller, exactly like the
    # blocking transports.

    def _dispatch_submit(
        self,
        origin: str,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        site = self._asites[origin]
        self._run_on_loop(lambda: site.submit(qid, program, initial, priority, tenant))

    def _dispatch_submit_from_saved(
        self, origin: str, qid: QueryId, program: Program, source_qid: QueryId
    ) -> None:
        site = self._asites[origin]
        self._run_on_loop(lambda: site.submit_from_saved(qid, program, source_qid))

    def _dispatch_expire(self, origin: str, qid: QueryId) -> None:
        site = self._asites[origin]
        self._run_on_loop(lambda: site.expire(qid))
