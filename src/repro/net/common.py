"""Shared client-side machinery for the wall-clock transports.

The threaded and socket clusters expose the same blocking
``run_query`` contract; this module holds the completion-wait loop they
previously each duplicated, now extended with originator-side deadlines.
"""

from __future__ import annotations

import queue
import time
from typing import Callable, Optional

from ..engine.results import QueryResult
from ..errors import HyperFileError, QueryTimeout
from .messages import QueryId


def await_completion(
    completions: "queue.Queue",
    qid: QueryId,
    timeout_s: float,
    deadline_s: Optional[float],
    on_deadline: str,
    expire: Callable[[], None],
) -> QueryResult:
    """Block until ``qid`` completes, expiring it at its deadline.

    ``expire`` is invoked (once) when ``deadline_s`` elapses without a
    completion; it must force the originator to complete the query with
    partial results, which then flow back through ``completions`` like
    any other completion.  ``timeout_s`` stays a hard backstop: if even
    the expiry path produces nothing, raise rather than hang.
    """
    if on_deadline not in ("partial", "raise"):
        raise ValueError(f"on_deadline must be 'partial' or 'raise', got {on_deadline!r}")
    start = time.monotonic()
    end = start + timeout_s
    deadline = start + deadline_s if deadline_s is not None else None
    expired = False
    while True:
        now = time.monotonic()
        if deadline is not None and not expired and now >= deadline:
            expired = True
            expire()
        remaining = end - now
        if remaining <= 0:
            raise HyperFileError(f"query {qid} did not complete within {timeout_s}s")
        wait = min(remaining, 0.25)
        if deadline is not None and not expired:
            wait = min(wait, max(deadline - now, 0.001))
        try:
            done_qid, result = completions.get(timeout=wait)
        except queue.Empty:
            continue
        if done_qid == qid:
            if result.partial and on_deadline == "raise":
                raise QueryTimeout(qid, deadline_s, result)
            return result
        # A different query finished first (concurrent use): requeue.
        completions.put((done_qid, result))
