"""Shared client-side machinery for the wall-clock transports.

The threaded and socket clusters expose the same blocking query contract
as the simulator (see :class:`repro.api.ClusterAPI`); this module holds
the pieces they would otherwise duplicate — the completion-wait loop
with originator-side deadlines, and :class:`WallClockQueries`, the whole
submit/wait/run_query surface parameterised over how a transport reaches
its sites.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..api import QueryLike, QueryOutcome, compile_query_like, credit_deficit
from ..core.oid import Oid
from ..core.program import Program
from ..engine.results import QueryResult
from ..errors import (
    ConfigError,
    HyperFileError,
    Overloaded,
    QueryTimeout,
    SiteDeparted,
    TerminationLost,
    TransportClosed,
    UnknownSite,
)
from ..membership import UP, MembershipService, MembershipView, Rebalancer
from ..qos import PRIORITIES, ClientLimiter, QoSConfig
from ..server.stats import NodeStats
from .messages import QueryId

#: Default hard backstop for blocking waits on the real transports.
DEFAULT_TIMEOUT_S = 30.0


def await_completion(
    completions: "queue.Queue",
    qid: QueryId,
    timeout_s: float,
    deadline_s: Optional[float],
    expire: Callable[[], None],
    diagnose: Optional[Callable[[], Tuple[object, int]]] = None,
) -> QueryOutcome:
    """Block until ``qid`` completes, expiring it at its deadline.

    ``expire`` is invoked (once) when ``deadline_s`` elapses without a
    completion; it must force the originator to complete the query with
    partial results, which then flow back through ``completions`` like
    any other completion.  ``timeout_s`` stays a hard backstop: if even
    the expiry path produces nothing the detector genuinely never fired,
    so raise :class:`~repro.errors.TerminationLost` rather than hang —
    with whatever diagnostics ``diagnose`` can supply (credit deficit,
    undeliverable count).
    """
    start = time.monotonic()
    end = start + timeout_s
    deadline = start + deadline_s if deadline_s is not None else None
    expired = False
    while True:
        now = time.monotonic()
        if deadline is not None and not expired and now >= deadline:
            expired = True
            expire()
        remaining = end - now
        if remaining <= 0:
            deficit, undeliverable = diagnose() if diagnose is not None else (None, 0)
            raise TerminationLost(qid, deficit=deficit, undeliverable=undeliverable)
        wait = min(remaining, 0.25)
        if deadline is not None and not expired:
            wait = min(wait, max(deadline - now, 0.001))
        try:
            done_qid, outcome = completions.get(timeout=wait)
        except queue.Empty:
            continue
        if done_qid == qid:
            return outcome
        # A different query finished first (concurrent use): requeue.
        completions.put((done_qid, outcome))


@dataclass
class _Inflight:
    submitted_at: float
    deadline_s: Optional[float]


class WallClockQueries:
    """The :class:`~repro.api.ClusterAPI` query surface for transports
    whose clock is ``time.monotonic()``.

    A concrete transport provides site reachability (how to install a
    query at a site, how to fire its deadline expiry) through the
    ``_dispatch_*`` hooks plus ``nodes`` and an ``undeliverable`` list;
    everything client-visible — qid allocation, the in-flight registry
    that carries ``deadline_s`` across the submit/wait split, outcome
    construction, the uniform failure types — lives here, so the two
    real transports cannot drift apart.
    """

    # Provided by the concrete transport (listed for readability):
    #   nodes: Dict[str, ServerNode]
    #   undeliverable: List[Envelope]
    #   sites property, _closed flag
    #   _dispatch_submit / _dispatch_submit_from_saved / _dispatch_expire

    def _init_queries(self, qos: Optional[QoSConfig] = None) -> None:
        self._completions: "queue.Queue" = queue.Queue()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._inflight: Dict[QueryId, _Inflight] = {}
        self._outcomes: Dict[QueryId, QueryOutcome] = {}
        self.qos = qos
        self._qos_limiter: Optional[ClientLimiter] = (
            ClientLimiter(qos.rate_limit_qps, qos.rate_burst, time.monotonic)
            if qos is not None and qos.rate_limit_qps is not None
            else None
        )
        self.qos_bounces = 0
        # Telemetry plane defaults, so transports that never call
        # _init_telemetry (none today) still answer the API.
        self.flight_recorder = None
        self.stats_timeline = None
        self._flightrec_dumped: set = set()
        self._stats_stop = threading.Event()
        self._stats_thread: Optional[threading.Thread] = None
        # Membership defaults, so transports that never call
        # _init_membership still answer the API.
        self.membership: Optional[MembershipService] = None
        self.rebalancer: Optional[Rebalancer] = None

    # -- membership (administrative) --------------------------------------

    def _init_membership(self, config) -> None:
        """Arm administrative membership from a ClusterConfig.

        Call after ``nodes``, ``stores`` and ``replication`` exist.  The
        wall-clock transports take *administrative* membership only —
        ``join_site`` / ``leave_site`` / ``fail_site`` drive view changes
        and rebalancing, but the gossip failure detector needs the
        simulator's virtual clock, so ``heartbeat_s`` is rejected here.
        """
        membership = getattr(config, "membership", None) if config is not None else None
        if membership is None:
            return
        if membership.heartbeat_s is not None:
            raise ConfigError(
                "membership.heartbeat_s",
                "the gossip failure detector runs on the simulator's virtual "
                "clock; wall-clock transports take administrative membership "
                "only (join_site / leave_site / fail_site)",
            )
        self.membership = MembershipService(membership, list(self.sites))
        self.rebalancer = Rebalancer(
            self.replication, self.stores, self._membership_forwarding(), self.membership
        )
        if self.replication is not None:
            self.replication.active_sites = lambda: list(self.membership.view.active)
        self.membership.add_listener(self._on_membership_change)
        self._apply_membership_view()

    def _membership_forwarding(self) -> Dict[str, object]:
        """Forwarding tables for the rebalancer, however this transport
        stores them (an attribute, or hanging off each node)."""
        forwarding = getattr(self, "forwarding", None)
        if forwarding is not None:
            return forwarding
        return {site: node.forwarding for site, node in self.nodes.items()}

    def _apply_membership_view(self) -> None:
        """Push the current view into every node's routing guard."""
        assert self.membership is not None
        for node in self.nodes.values():
            node.membership_status = self.membership.status_of

    def _on_membership_change(self, old_view, new_view, reason: str) -> None:
        self._apply_membership_view()
        assert self.membership is not None
        if self.membership.config.auto_rebalance and reason in ("join", "leave", "fail"):
            assert self.rebalancer is not None
            self.rebalancer.rebalance(reason)

    @property
    def membership_view(self) -> MembershipView:
        self._require_membership()
        assert self.membership is not None
        return self.membership.view

    def _require_membership(self) -> None:
        if self.membership is None:
            raise ConfigError(
                "membership",
                "this cluster was built without ClusterConfig(membership=...)",
            )

    def join_site(self, site: str) -> MembershipView:
        """Re-admit a departed site (its endpoint stays provisioned).

        Wall-clock transports cannot conjure a new endpoint mid-run —
        threads, sockets and child processes are created at construction
        — so only sites the cluster was built with can (re)join here;
        brand-new sites join on the simulator.
        """
        self._require_membership()
        if site not in self.nodes:
            raise ConfigError(
                "membership",
                f"{site!r} has no provisioned endpoint; new sites can only "
                "join on the simulator transport",
            )
        self.set_up(site)
        assert self.membership is not None
        return self.membership.join(site)

    def leave_site(self, site: str) -> MembershipView:
        """Start a graceful leave; finalized once nothing needs the site."""
        self._require_membership()
        assert self.membership is not None
        view = self.membership.leave_begin(site)
        self._maybe_finalize_membership()
        return view

    def fail_site(self, site: str) -> MembershipView:
        """Declare ``site`` permanently crashed: stop routing to it,
        restore the replication target from the survivors, and write the
        dead machine's store off (a later rejoin starts empty — what was
        only there is lost, and stays lost)."""
        self._require_membership()
        if site in self.nodes:
            self.set_down(site)
        assert self.membership is not None
        view = self.membership.fail(site)
        self._wipe_store(site)
        self._maybe_finalize_membership()
        return view

    def finalize_membership(self) -> None:
        """Complete pending leaves and deferred copy removals (idle only)."""
        self._require_membership()
        self._maybe_finalize_membership()

    def _maybe_finalize_membership(self) -> None:
        if self.membership is None:
            return
        for site in list(self.membership.view.leaving):
            if any(qid.originator == site for qid in self._inflight):
                continue
            self.set_down(site)
            if self.rebalancer is not None:
                self.rebalancer.flush_removals(lambda s, target=site: s == target)
            self._wipe_store(site)
            self.membership.leave_finalize(site)
        if self.rebalancer is not None and not self._inflight:
            self.rebalancer.flush_removals(lambda _site: True)

    def _wipe_store(self, site: str) -> None:
        """Best-effort erase of a departed site's store (in process mode
        the child carrying it may already be gone)."""
        store = self.stores.get(site) if hasattr(self, "stores") else None
        if store is None:
            return
        try:
            for oid in list(store.oids()):
                store.remove(oid)
        except HyperFileError:
            pass

    def _check_membership_origin(self, origin: str) -> None:
        if self.membership is not None:
            status = self.membership.status_of(origin)
            if status != UP:
                raise SiteDeparted(origin, status)

    def _init_telemetry(self, config) -> None:
        """Arm the flight recorder and the streaming-stats sampler from a
        :class:`~repro.config.ClusterConfig`.  Call after ``nodes`` exist
        (the recorder wires itself in as every node's default tracer)."""
        if config is None:
            return
        if config.flight_recorder is not None:
            from ..tracing import FlightRecorder

            recorder = FlightRecorder(config.flight_recorder)
            recorder.now_fn = time.monotonic
            self.flight_recorder = recorder
            for node in self.nodes.values():
                node.tracer = recorder
        if config.stats_stream_s is not None:
            from ..metrics.collect import StatsTimeline

            self.stats_timeline = StatsTimeline()
            self._start_stats_stream(config.stats_stream_s)

    def _start_stats_stream(self, period_s: float) -> None:
        """Timer-driven sampler: one :class:`StatsTimeline` sample per
        period until the cluster closes (daemon thread; ``close`` calls
        :meth:`_stop_stats_stream` for a prompt exit)."""

        def loop() -> None:
            while not self._stats_stop.wait(period_s):
                if getattr(self, "_closed", False):
                    return
                try:
                    self._sample_stats()
                except RuntimeError:
                    # A site mutated its dicts mid-read; skip this tick.
                    continue

        self._stats_thread = threading.Thread(
            target=loop, name="repro-stats-stream", daemon=True
        )
        self._stats_thread.start()

    def _stop_stats_stream(self) -> None:
        self._stats_stop.set()
        if self._stats_thread is not None:
            self._stats_thread.join(timeout=1.0)
            self._stats_thread = None

    def _sample_stats(self) -> None:
        sites: Dict[str, Dict[str, object]] = {}
        for site, node in self.nodes.items():
            sample = node.stats.sample()
            try:
                sample["work_depth"] = node.work_depth
            except RuntimeError:  # contexts mutating under us; best effort
                sample["work_depth"] = None
            sites[site] = sample
        self.stats_timeline.append(time.monotonic(), sites)
        tracer = next(iter(self.nodes.values())).tracer
        if tracer is not None:
            tracer.emit("cluster", "stats_push", "", sites=len(sites))

    def _credit_deficit(self, qid: QueryId):
        """Cluster-wide missing termination credit for ``qid`` (the
        TerminationLost diagnostic).  The default reads the in-process
        node contexts; process mode overrides this to ask each child
        over the control channel."""
        return credit_deficit(self.nodes, qid)

    def _flightrec_dump(self, qid: QueryId, reason: str) -> None:
        """Dump the flight-recorder ring once per dying query.  Process
        mode overrides this to pull each child's ring first."""
        if self.flight_recorder is None or qid in self._flightrec_dumped:
            return
        self._flightrec_dumped.add(qid)
        self.flight_recorder.dump(qid, reason, site=qid.originator)

    def _admit(self, client: str) -> None:
        """Token-bucket admission control; bounces with :class:`Overloaded`."""
        if self._qos_limiter is None:
            return
        if not self._qos_limiter.try_acquire(client):
            self.qos_bounces += 1
            metrics = getattr(self, "metrics", None)
            if metrics is not None:
                metrics.counter("qos.overload_bounces_total", client=client).inc()
            raise Overloaded(client, retry_after_s=self._qos_limiter.retry_after_s(client))

    # -- ClusterAPI ------------------------------------------------------

    def compile(self, query: QueryLike) -> Program:
        return compile_query_like(query)

    def submit(
        self,
        query: QueryLike,
        initial: Iterable[Oid],
        originator: Optional[str] = None,
        deadline_s: Optional[float] = None,
        priority: Optional[str] = None,
        client: str = "default",
    ) -> QueryId:
        """Install a query at its originating site (non-blocking).

        ``deadline_s`` starts counting now; :meth:`wait` enforces it even
        if called later (the elapsed gap is charged against the budget).
        With a QoS config active, ``priority`` selects the service class
        and ``client`` is the admission-control identity; a drained token
        bucket bounces the submit with :class:`~repro.errors.Overloaded`.
        """
        if self._closed:
            raise TransportClosed("cluster is closed")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if priority is not None and priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}, got {priority!r}")
        program = compile_query_like(query)
        origin = originator if originator is not None else self.sites[0]
        if origin not in self.nodes:
            raise UnknownSite(origin)
        # A departing originator could never deliver its answer.
        self._check_membership_origin(origin)
        self._admit(client)
        qid = self._next_qid(origin)
        self._inflight[qid] = _Inflight(time.monotonic(), deadline_s)
        self._dispatch_submit(origin, qid, program, list(initial), priority, client)
        return qid

    def submit_followup(
        self,
        query: QueryLike,
        source_qid: QueryId,
        originator: Optional[str] = None,
    ) -> QueryId:
        """Start a query seeded from a distributed result set (paper §5)."""
        if self._closed:
            raise TransportClosed("cluster is closed")
        program = compile_query_like(query)
        origin = originator if originator is not None else source_qid.originator
        if origin not in self.nodes:
            raise UnknownSite(origin)
        self._check_membership_origin(origin)
        qid = self._next_qid(origin)
        self._inflight[qid] = _Inflight(time.monotonic(), None)
        self._dispatch_submit_from_saved(origin, qid, program, source_qid)
        return qid

    def wait(self, qid: QueryId, timeout_s: Optional[float] = None) -> QueryOutcome:
        """Block until ``qid`` completes (or its deadline forces it to).

        Raises :class:`~repro.errors.TerminationLost` if the hard
        ``timeout_s`` backstop passes with no completion at all.
        """
        info = self._inflight.get(qid)
        budget = timeout_s if timeout_s is not None else DEFAULT_TIMEOUT_S
        deadline_remaining: Optional[float] = None
        if info is not None and info.deadline_s is not None:
            elapsed = time.monotonic() - info.submitted_at
            deadline_remaining = max(info.deadline_s - elapsed, 0.0005)
        try:
            outcome = await_completion(
                self._completions,
                qid,
                budget,
                deadline_remaining,
                expire=lambda: self._dispatch_expire(qid.originator, qid),
                diagnose=lambda: (self._credit_deficit(qid), len(self.undeliverable)),
            )
        except TerminationLost:
            self._flightrec_dump(qid, "termination_lost")
            raise
        if outcome.result.partial and outcome.result.partial_reason in ("crash", "deadline"):
            self._flightrec_dump(qid, outcome.result.partial_reason)
        if self.membership is not None:
            # The client thread is the safe place to complete pending
            # leaves and deferred copy removals (never under a node lock).
            self._maybe_finalize_membership()
        return outcome

    def run_query(
        self,
        query: QueryLike,
        initial: Iterable[Oid],
        originator: Optional[str] = None,
        deadline_s: Optional[float] = None,
        on_deadline: str = "partial",
        timeout_s: Optional[float] = None,
        priority: Optional[str] = None,
        client: str = "default",
    ) -> QueryOutcome:
        """Submit and block until completion — the ClusterAPI contract.

        ``on_deadline`` selects the client-visible behaviour when
        ``deadline_s`` expires first: ``"partial"`` returns the outcome
        with ``result.partial`` set; ``"raise"`` raises
        :class:`~repro.errors.QueryTimeout` (partial result attached).
        """
        if on_deadline not in ("partial", "raise"):
            raise ValueError(f"on_deadline must be 'partial' or 'raise', got {on_deadline!r}")
        qid = self.submit(
            query, initial, originator, deadline_s=deadline_s, priority=priority, client=client
        )
        outcome = self.wait(qid, timeout_s=timeout_s)
        if outcome.result.partial and on_deadline == "raise":
            raise QueryTimeout(qid, deadline_s, outcome.result)
        return outcome

    def run_followup(
        self,
        query: QueryLike,
        source_qid: QueryId,
        originator: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> QueryOutcome:
        qid = self.submit_followup(query, source_qid, originator)
        return self.wait(qid, timeout_s=timeout_s)

    def outcome(self, qid: QueryId) -> Optional[QueryOutcome]:
        return self._outcomes.get(qid)

    # -- data management -------------------------------------------------

    def migrate(self, oid: Oid, to_site: str) -> Oid:
        """Move an object between sites, maintaining naming invariants.

        Administrative operation: call between queries, not while one is
        in flight (the simulator shares this caveat — migration is
        outside the paper's query cost model).  Replication-aware when a
        replication config is active.
        """
        replication = getattr(self, "replication", None)
        if replication is not None:
            return replication.migrate(oid, to_site)
        from ..naming.names import migrate_object

        forwarding = getattr(self, "forwarding", None)
        if forwarding is None:
            forwarding = {name: node.forwarding for name, node in self.nodes.items()}
        return migrate_object(oid, self.stores, forwarding, to_site)

    def replicate_all(self) -> int:
        """Install the configured k copies of every loaded object; no-op
        (returns 0) without a replication config."""
        replication = getattr(self, "replication", None)
        return replication.replicate_all() if replication is not None else 0

    def total_stats(self) -> NodeStats:
        """Cluster-wide node counters, merged.

        Unlike the simulator this reads live per-site state without
        stopping the site threads; counters are monotonically increasing
        ints, so the snapshot is sane but not a consistent cut.
        """
        merged = NodeStats()
        for node in self.nodes.values():
            merged.merge(node.stats)
        return merged

    # -- observability ---------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Record a :class:`~repro.tracing.QueryTracer` timeline of every
        node's work, timestamped with the wall clock.  Same contract as
        the simulator's; span ids stay valid across site threads (the
        tracer's allocation is thread-safe).  With the flight recorder
        armed the tracer is teed into its ring, so postmortem dumps stay
        current while a user tracer is attached."""
        tracer.now_fn = time.monotonic
        if self.flight_recorder is not None:
            from ..tracing import TeeTracer

            tracer = TeeTracer(tracer, self.flight_recorder)
        for node in self.nodes.values():
            node.tracer = tracer

    def detach_tracer(self) -> None:
        for node in self.nodes.values():
            node.tracer = self.flight_recorder

    def enable_metrics(self, registry=None):
        """Publish node/batching telemetry into a
        :class:`~repro.metrics.MetricsRegistry` (created if not given).
        Returns the registry; read it with :meth:`metrics_snapshot`."""
        if registry is None:
            from ..metrics.registry import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        for node in self.nodes.values():
            node.metrics = registry
        return registry

    def metrics_snapshot(self):
        """Current registry contents with per-node stats freshly mirrored
        in; None when :meth:`enable_metrics` was never called."""
        registry = getattr(self, "metrics", None)
        if registry is None:
            return None
        for site, node in self.nodes.items():
            registry.publish_node_stats(site, node.stats)
        return registry.snapshot()

    # -- transport-side plumbing ----------------------------------------

    def _next_qid(self, originator: str) -> QueryId:
        with self._seq_lock:
            self._seq += 1
            return QueryId(self._seq, originator)

    def _on_complete(self, qid: QueryId, result: QueryResult) -> None:
        """Runs at the originator, under its site's node lock."""
        info = self._inflight.pop(qid, None)
        node = self.nodes.get(qid.originator)
        ctx = node.contexts.get(qid) if node is not None else None
        outcome = QueryOutcome(
            qid=qid,
            result=result,
            submitted_at=info.submitted_at if info is not None else 0.0,
            completed_at=time.monotonic(),
            partition_counts=(
                dict(ctx.partition_counts) if ctx is not None and ctx.partition_counts else None
            ),
        )
        self._outcomes[qid] = outcome
        self._completions.put((qid, outcome))
