"""Transports: message types, simulated network, threaded in-process cluster."""

from .messages import (
    ControlMessage,
    DerefRequest,
    Envelope,
    FetchReply,
    FetchRequest,
    QueryId,
    ResultBatch,
    SeedFromSaved,
)
from .simnet import SimHost, SimNetwork

__all__ = [
    "ControlMessage",
    "DerefRequest",
    "Envelope",
    "FetchReply",
    "FetchRequest",
    "QueryId",
    "ResultBatch",
    "SeedFromSaved",
    "SimHost",
    "SimNetwork",
]
